"""Max–min fair flow-level network model.

Data movement across the disaggregated fabric is modeled at *flow* level:
a transfer is a flow over a route (a sequence of :class:`Link` objects),
and all concurrent flows share link bandwidth according to **max–min
fairness** (progressive water-filling).  Whenever a flow starts or
finishes, rates are re-solved and in-flight completion times updated.
This captures the contention effects that make data placement matter,
at a tiny fraction of the cost of packet-level simulation (a design
choice recorded in DESIGN.md §5).

Scaling (DESIGN.md §5, "simulator performance model"): the solver is
*incremental*.  Persistent link→flow and event→flow indexes make
``fail_link``/``cancel``/``link_load`` proportional to the flows
actually involved; each arrival/departure re-solves only the connected
component of the flow–link sharing graph it touches (max–min fair rates
decompose exactly across components); per-flow progress is settled
lazily — a flow's ``remaining`` is only updated when *its* rate changes
— and completions come from a heap with generation-based lazy
invalidation instead of a rearm-everything timer.  The retained
reference solver (:func:`waterfill` over the full flow set, enabled
with ``FlowNetwork(..., incremental=False)``) is differentially tested
against the incremental path in ``tests/sim/test_flows_differential.py``:
same scenario, byte-identical rates and traces.

Two further levers attack the dense-contention regime (DESIGN.md §5.2):

* **Vectorized waterfill** — mutable per-flow solver state (rate,
  settlement stamp, remaining bytes, generation, bottleneck) lives in
  slot-indexed ``array('d')``/``array('q')`` columns on the network,
  not in Python attributes, and each link keeps a sorted int64 array
  of its flows' slots.  Slots are assigned monotonically (compacted
  when mostly dead), so ascending slot order *is* ascending flow-id
  order and a component's canonical flow ordering falls out of a C
  merge of the per-link slot arrays.  Components of at least
  :data:`_VECTOR_MIN_FLOWS` flows then solve entirely inside numpy —
  zero-copy views over the state columns, the freeze loop as
  vectorized capacity/active-count updates — with no per-flow Python
  work at all.  Both solver cores perform the *identical* IEEE-754
  operations — shares are ``cap / count``; a freeze round subtracts
  ``share * k_frozen`` from each link once and clamps at zero; byte
  counters accumulate per link in ascending flow-id order — so scalar
  and vector paths are bit-identical by construction, not by accident.
  (Flows whose route repeats a link credit bytes per occurrence; while
  any such degenerate flow is live the network stays on the scalar
  core so the occurrence-order additions stay exact.)

* **Batched rebalances** — re-solve requests arriving at one simulated
  timestamp (a burst of same-tick arrivals or completion-freed
  capacity) coalesce into a single component re-solve per event-loop
  turn via a zero-delay flush event.  Rates are memoryless in the live
  flow set and zero simulated time passes between the deferred
  requests, so the flushed solve lands in exactly the state an eager
  per-event solve would have reached.  Every observable read
  (``cancel``/``fail_link``/``settle_all``/``link_load``/the
  completion timer) flushes first.  ``FlowNetwork(..., batch=False)``
  keeps the eager behaviour for differential testing.

Units: time in nanoseconds, bandwidth in bytes/ns (1 byte/ns = 1 GB/s
with GB = 1e9 bytes).
"""

from __future__ import annotations

import heapq
import math
import typing
from array import array as _stdarray
from itertools import count

from repro.sim.engine import Engine
from repro.sim.events import Event

try:  # numpy is an optional accelerator, not a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

#: Residual bytes below this are treated as completed (float safety).
_EPSILON_BYTES = 1e-6

#: Sharing degree (max flows on any one link of the component) at which
#: :meth:`FlowNetwork._resolve_now` switches from the scalar solver to
#: the vectorized one.  Below this the fixed cost of the numpy call
#: sequence outweighs the per-flow Python loop — the numpy freeze loop
#: pays a fixed overhead per bottleneck round, and only heavily shared
#: links freeze many flows per round.  Both paths produce bit-identical
#: results, so the cutover is purely a performance knob (the
#: differential tests pin it to 0 and to ∞ to drive each path through
#: the same scenarios).
_VECTOR_MIN_FLOWS = 24

#: The vector core runs full-column passes over every state slot, so a
#: component must cover a reasonable fraction of the columns to be worth
#: it: it runs when ``_VECTOR_SPARSITY * link-incidence >= slot count``.
#: Module-level so the differential tests can pin it (a huge value
#: admits every component; see :data:`_VECTOR_MIN_FLOWS`).
_VECTOR_SPARSITY = 4


class LinkDown(Exception):
    """A transfer failed because a link on its route went down."""

    def __init__(self, link: "Link"):
        super().__init__(f"link {link.name} is down")
        self.link = link


class TransferTimeout(Exception):
    """A transfer was cancelled because it exceeded its deadline."""

    def __init__(self, nbytes: float, timeout_ns: float):
        super().__init__(
            f"transfer of {nbytes:.0f}B timed out after {timeout_ns:.0f}ns"
        )
        self.nbytes = nbytes
        self.timeout_ns = timeout_ns


class Link:
    """A bidirectional network/bus link with capacity and propagation latency."""

    _ids = count()

    def __init__(self, name: str, bandwidth: float, latency: float):
        if bandwidth <= 0:
            raise ValueError(f"link bandwidth must be positive, got {bandwidth}")
        if latency < 0:
            raise ValueError(f"link latency must be non-negative, got {latency}")
        self.id = next(Link._ids)
        self.name = name
        self.bandwidth = float(bandwidth)  # bytes / ns
        self.latency = float(latency)  # ns
        self.up = True
        #: Gray-failure (fail-slow) multiplier on the *physical* capacity.
        #: ``bandwidth`` stays nominal — cost models and topology queries
        #: keep seeing the advertised speed, so the control plane can only
        #: learn about degradation from observed transfer timings.
        self.degrade_factor = 1.0
        #: Cumulative bytes that finished crossing this link.
        self.bytes_carried = 0.0

    @property
    def effective_bandwidth(self) -> float:
        """Physical capacity right now: nominal × degrade factor."""
        return self.bandwidth * self.degrade_factor

    def __repr__(self) -> str:
        state = "up" if self.up else "DOWN"
        if self.degrade_factor != 1.0:
            state += f" degraded×{self.degrade_factor:g}"
        return f"<Link {self.name} {self.bandwidth:.3f}B/ns {self.latency:.0f}ns {state}>"


class _Flow:
    """A live transfer.  Immutable shape lives here; mutable solver state
    (rate, remaining, settlement stamp, generation, bottleneck) lives in
    the owning :class:`FlowNetwork`'s slot-indexed state columns and is
    exposed through properties for observability and tests — the hot
    paths read the columns directly by ``slot``.
    """

    _ids = count()

    __slots__ = (
        "id", "route", "links", "total_bytes", "event", "started_at",
        "slot", "net",
    )

    def __init__(self, route: typing.Sequence[Link], nbytes: float, event: Event):
        self.id = next(_Flow._ids)
        self.route = tuple(route)
        #: Unique links of the route, in route order (a degenerate route
        #: listing a link twice still contends once in the solver but
        #: carries bytes per occurrence).
        self.links = tuple(dict.fromkeys(self.route))
        self.total_bytes = float(nbytes)
        self.event = event
        self.started_at: float = 0.0
        #: Index of this flow's row in the network's state columns;
        #: slots are handed out monotonically so ascending slot order is
        #: ascending flow-id order (compaction preserves it).
        self.slot = -1
        #: Owning network (None until registered).
        self.net: typing.Optional["FlowNetwork"] = None

    @property
    def rate(self) -> float:
        net = self.net
        return net._st_rate[self.slot] if net is not None else 0.0

    @rate.setter
    def rate(self, value: float) -> None:
        self.net._st_rate[self.slot] = value

    @property
    def remaining(self) -> float:
        net = self.net
        return net._st_rem[self.slot] if net is not None else self.total_bytes

    @remaining.setter
    def remaining(self, value: float) -> None:
        self.net._st_rem[self.slot] = value

    @property
    def last_settled(self) -> float:
        """Time up to which ``remaining``/``bytes_carried`` are settled."""
        net = self.net
        return net._st_last[self.slot] if net is not None else 0.0

    @last_settled.setter
    def last_settled(self, value: float) -> None:
        self.net._st_last[self.slot] = value

    @property
    def gen(self) -> int:
        """Bumped on every rate change; stale completion-heap entries
        (older generation) are discarded lazily."""
        net = self.net
        return net._st_gen[self.slot] if net is not None else 0

    @gen.setter
    def gen(self, value: int) -> None:
        self.net._st_gen[self.slot] = value

    @property
    def bottleneck(self) -> typing.Optional[int]:
        """Link id this flow last froze at in the waterfill (its max–min
        bottleneck); only recorded when causal tracing wants it."""
        net = self.net
        if net is None:
            return None
        value = net._st_bn[self.slot]
        return None if value < 0 else value

    @bottleneck.setter
    def bottleneck(self, value: typing.Optional[int]) -> None:
        self.net._st_bn[self.slot] = -1 if value is None else value

    def __repr__(self) -> str:
        return f"<Flow #{self.id} {self.remaining:.0f}/{self.total_bytes:.0f}B @{self.rate:.3f}B/ns>"


def waterfill(
    flows_by_id: typing.Mapping[int, _Flow],
    ordered_ids: typing.Optional[typing.List[int]] = None,
    bottlenecks: typing.Optional[typing.Dict[int, int]] = None,
) -> typing.Dict[int, float]:
    """Progressive water-filling over ``flows_by_id``; the reference solver.

    Returns ``{flow_id: max–min fair rate}``.  Deterministic and
    order-canonical: candidate bottleneck links are scanned in ascending
    link id and flows freeze in ascending flow id, so solving a connected
    component in isolation yields *bit-identical* rates to solving it as
    part of the full flow set (components never share links, hence never
    share a ``remaining capacity`` cell; the global freeze sequence is a
    pure interleaving of the per-component sequences).

    ``ordered_ids`` (the flow ids, ascending) may be passed by callers
    that already sorted them.  ``bottlenecks``, when given, is filled
    with ``{flow_id: link id the flow froze at}`` — the link that
    capped its max–min rate (causal attribution uses this to break the
    transfer bucket down by bottleneck link).

    Freeze-round arithmetic is defined at *round* granularity so the
    vectorized solver (:meth:`FlowNetwork._solve_vector`) can reproduce
    it operation-for-operation: a round picks the first (ascending link
    id) link with the strictly smallest ``cap / count`` share, freezes
    its unfrozen flows at that share, and then updates every affected
    link once with ``cap = max(cap - share * k, 0.0)`` where ``k`` is
    the number of flows frozen on that link this round.  A single
    multiply-subtract per link per round is exactly what the numpy path
    computes, so the two stay bit-identical by construction.
    """
    if ordered_ids is None:
        ordered_ids = sorted(flows_by_id)
    by_link: typing.Dict[int, list] = {}  # lid -> [remaining_cap, unfrozen fid set]
    for fid in ordered_ids:
        for link in flows_by_id[fid].links:
            entry = by_link.get(link.id)
            if entry is None:
                by_link[link.id] = entry = [link.effective_bandwidth, set()]
            entry[1].add(fid)

    rates: typing.Dict[int, float] = {}
    link_ids = sorted(by_link)
    while True:
        # Fair share offered by each link that still has unfrozen flows.
        bottleneck_id = None
        bottleneck_share = float("inf")
        for lid in link_ids:
            cap, unfrozen = by_link[lid]
            if not unfrozen:
                continue
            share = cap / len(unfrozen)
            if share < bottleneck_share:
                bottleneck_share = share
                bottleneck_id = lid
        if bottleneck_id is None:
            break
        # Freeze every unfrozen flow on the bottleneck at that share,
        # tallying how many froze per affected link.
        frozen_per_link: typing.Dict[int, int] = {}
        for fid in sorted(by_link[bottleneck_id][1]):
            rates[fid] = bottleneck_share
            if bottlenecks is not None:
                bottlenecks[fid] = bottleneck_id
            for link in flows_by_id[fid].links:
                by_link[link.id][1].discard(fid)
                frozen_per_link[link.id] = frozen_per_link.get(link.id, 0) + 1
        for lid, k in frozen_per_link.items():
            entry = by_link[lid]
            entry[0] -= bottleneck_share * k
            if entry[0] < 0:
                entry[0] = 0.0
    return rates


class FlowNetwork:
    """Shared-bandwidth transfer scheduler on top of an :class:`Engine`."""

    def __init__(
        self,
        engine: Engine,
        trace=None,
        incremental: bool = True,
        batch: bool = True,
    ):
        self.engine = engine
        self._flows: typing.Dict[int, _Flow] = {}
        #: link id -> {flow id -> flow} for every link with live flows.
        self._by_link: typing.Dict[int, typing.Dict[int, _Flow]] = {}
        #: link id -> Link for every link with live flows (the vector
        #: solver maps canonical link-id order back to Link objects).
        self._link_objs: typing.Dict[int, Link] = {}
        #: link id -> {neighbour link id -> count of flows spanning the
        #: pair}.  Component discovery BFSes this link-level graph (a
        #: handful of nodes) and then unions the per-link flow dicts,
        #: instead of walking every flow's link list in Python.
        self._link_adj: typing.Dict[int, typing.Dict[int, int]] = {}
        #: completion event -> flow (O(1) cancel).
        self._by_event: typing.Dict[Event, _Flow] = {}
        #: (completion time, flow id, flow gen) min-heap; entries whose
        #: gen no longer matches the flow's are stale and skipped.
        self._completions: list = []
        self._timer_gen = 0
        #: Deadline of the currently armed engine timer (None = no valid
        #: timer outstanding; superseded timers no-op via the gen check).
        self._timer_deadline: typing.Optional[float] = None
        # Slot-indexed per-flow solver state ("state columns").  Stdlib
        # arrays give attribute-speed scalar access without numpy; the
        # vector core takes zero-copy ``np.frombuffer`` views and does
        # gather/scatter at C speed.  Slots are monotone (ascending slot
        # == ascending flow id) and compacted when mostly dead.
        self._st_rate = _stdarray("d")
        self._st_last = _stdarray("d")
        self._st_rem = _stdarray("d")
        self._st_gen = _stdarray("q")
        self._st_bn = _stdarray("q")
        self._st_fid = _stdarray("q")
        #: link id -> [int64 slot buffer, live count, cached view|None]:
        #: each link's flows' slots, ascending, in a capacity-doubling
        #: buffer (maintained only when numpy is available; the vector
        #: solver concatenates these instead of walking flows in Python).
        self._link_rows: typing.Dict[int, list] = {}
        #: Cached ``np.frombuffer`` views over the state columns; must be
        #: dropped before any column append (a stdlib array refuses to
        #: resize while a buffer view is exported).
        self._col_views = None
        #: Live flows whose route repeats a link.  While any exist the
        #: scalar core handles every solve so per-occurrence byte
        #: crediting keeps its exact accumulation order.
        self._degenerate = 0
        #: Restrict each re-solve to the affected connected component
        #: (True) or re-solve the full flow set (False, reference mode).
        self.incremental = incremental
        #: Coalesce same-timestamp re-solve requests into one solve per
        #: event-loop turn (False = eager re-solve per request).
        self.batch = batch
        #: Seed links of deferred re-solve requests (lid -> Link),
        #: non-empty only at the current engine timestamp.
        self._pending_seeds: typing.Dict[int, Link] = {}
        #: True while a zero-delay flush event is queued.
        self._flush_scheduled = False
        self.completed_transfers = 0
        #: Total payload bytes of completed transfers.
        self.bytes_completed = 0.0
        #: High-water mark of concurrently active flows (contention).
        self.peak_active_flows = 0
        #: Rate re-solves performed / flows they touched (observability:
        #: flows_resolved / rebalances ≈ mean component size).
        self.rebalances = 0
        self.flows_resolved = 0
        #: Re-solve requests absorbed by an already-pending flush (each
        #: is one full component solve the batcher saved).
        self.resolves_coalesced = 0
        #: Flows skipped by :meth:`settle_all` because their settlement
        #: stamp already equalled ``now`` (metrics-collector saving).
        self.settle_skipped = 0
        #: Bumped whenever link state flips (fail/restore); topology- and
        #: offer-caches key their validity off this (see CostModel).
        self.topology_epoch = 0
        #: Optional bounded TraceLog for per-flow events ("flow" category).
        self.trace = trace
        #: Optional hooks called after each re-solve with the affected
        #: flows (tests use this to audit capacity invariants).
        self.on_rebalance: typing.List[typing.Callable[[typing.List[_Flow]], None]] = []

    # -- public API ------------------------------------------------------

    def transfer(
        self,
        route: typing.Sequence[Link],
        nbytes: float,
        extra_latency: float = 0.0,
    ) -> Event:
        """Start a transfer of ``nbytes`` over ``route``.

        Returns an event that succeeds (with the transfer duration) when
        the last byte arrives, or fails with :class:`LinkDown` if a link
        on the route fails mid-flight.  Propagation latency (sum of link
        latencies plus ``extra_latency``) is paid before streaming starts.
        """
        if nbytes < 0:
            raise ValueError(f"cannot transfer negative bytes: {nbytes}")
        done = Event(self.engine)
        for link in route:
            if not link.up:
                done.fail(LinkDown(link))
                done.defuse()  # waiters still see the failure when they yield
                return done
        latency = sum(link.latency for link in route) + extra_latency
        if nbytes == 0 or not route:
            done.succeed(latency, delay=latency)
            return done

        start_time = self.engine.now

        def _start(_event: Event) -> None:
            if done.triggered:
                return  # cancelled during the latency phase
            for link in route:
                if not link.up:
                    if not done.triggered:
                        done.fail(LinkDown(link))
                        done.defuse()
                    return
            flow = _Flow(route, nbytes, done)
            flow.started_at = start_time
            self._register_flow(flow, self.engine.now)
            self._flows[flow.id] = flow
            links = flow.links
            if len(flow.route) != len(links):
                self._degenerate += 1
            adj = self._link_adj
            use_rows = _np is not None
            for i, link in enumerate(links):
                self._by_link.setdefault(link.id, {})[flow.id] = flow
                self._link_objs[link.id] = link
                if use_rows:
                    self._rows_append(link.id, flow.slot)
                row = adj.setdefault(link.id, {})
                for other in links[i + 1:]:
                    row[other.id] = row.get(other.id, 0) + 1
                    back = adj.setdefault(other.id, {})
                    back[link.id] = back.get(link.id, 0) + 1
            self._by_event[done] = flow
            if len(self._flows) > self.peak_active_flows:
                self.peak_active_flows = len(self._flows)
            self._resolve(flow.links)

        if latency > 0:
            starter = Event(self.engine)
            starter._ok = True
            starter._value = None
            starter.add_callback(_start)
            self.engine.schedule(starter, delay=latency)
        else:
            _start(done)
        return done

    def fail_link(self, link: Link) -> list:
        """Mark ``link`` down, failing every in-flight flow crossing it.

        Returns the list of failed flow events (already failed).
        """
        link.up = False
        self.topology_epoch += 1
        doomed = list(self._by_link.get(link.id, {}).values())
        failed = []
        now = self.engine.now
        seeds: typing.Dict[int, Link] = {}
        for flow in doomed:
            self._settle(flow, now)
            self._remove(flow)
            for other in flow.links:
                seeds[other.id] = other
            if not flow.event.triggered:
                flow.event.fail(LinkDown(link))
            failed.append(flow.event)
        if doomed:
            self._resolve_now(self._merged_seeds(seeds.values()))
        elif self._pending_seeds:
            # No flow crossed the dead link, but deferred work from this
            # timestamp must still not observe the new topology late.
            self._resolve_now(self._merged_seeds(()))
        return failed

    def restore_link(self, link: Link) -> None:
        """Bring a failed link back up (new transfers may use it).

        Bumps :attr:`topology_epoch` so offer/satisfaction caches stop
        serving the NoRoute-era answers for paths over this link.
        """
        link.up = True
        self.topology_epoch += 1

    def degrade_link(self, link: Link, factor: float) -> None:
        """Fail-slow a link: scale its physical capacity by ``factor``.

        Unlike :meth:`fail_link` the link stays up and in-flight flows
        keep streaming — just slower.  The nominal ``link.bandwidth`` is
        untouched so cost models stay blind; only the solver's capacity
        (and hence observed durations) change.  Re-solves the affected
        component so every sharing flow's rate reflects the new capacity.
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"degrade factor must be in (0, 1], got {factor}")
        if link.degrade_factor == factor:
            return
        link.degrade_factor = factor
        self.topology_epoch += 1
        self._resolve_now(self._merged_seeds([link]))

    def restore_link_speed(self, link: Link) -> None:
        """Undo :meth:`degrade_link`: back to nominal capacity."""
        if link.degrade_factor == 1.0:
            return
        link.degrade_factor = 1.0
        self.topology_epoch += 1
        self._resolve_now(self._merged_seeds([link]))

    def cancel(self, event: Event, cause: typing.Optional[Exception] = None) -> bool:
        """Cancel the transfer identified by its completion ``event``.

        Works both for flows that are streaming and for transfers still
        in their latency phase (whose flow object does not exist yet).
        The event is failed with ``cause`` (default
        :class:`TransferTimeout`) and defused, so abandoning callers —
        e.g. an ``any_of`` race against a deadline — never leak an
        unhandled failure into the engine.  Returns ``False`` if the
        transfer already finished.
        """
        if event.triggered:
            return False
        flow = self._by_event.get(event)
        if flow is not None:
            self._settle(flow, self.engine.now)
            # Exact accounting for the abandoned attempt: bytes that made
            # it across before the cancel (hedging charges these as waste).
            event._progress = flow.total_bytes - flow.remaining
            self._remove(flow)
            self._resolve_now(self._merged_seeds(flow.links))
        else:
            event._progress = 0.0  # still in the latency phase: no bytes moved
        event.fail(cause or TransferTimeout(float("nan"), float("nan")))
        event.defuse()
        return True

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def link_load(self, link: Link) -> float:
        """Current aggregate rate (bytes/ns) crossing ``link``."""
        self._flush_pending()
        st_rate = self._st_rate
        return sum(
            st_rate[f.slot] for f in self._by_link.get(link.id, {}).values()
        )

    def settle_all(self) -> None:
        """Materialize every flow's progress up to now.

        Lazy settlement only updates ``remaining``/``bytes_carried`` when
        a flow's rate changes; call this before reading mid-flight byte
        counters (the cluster's metrics collector does).  Flows whose
        settlement stamp already equals ``now`` (just re-solved, or a
        second snapshot at the same instant) are skipped without the
        ``_settle`` call; :attr:`settle_skipped` counts the saving.
        """
        self._flush_pending()
        now = self.engine.now
        skipped = 0
        settle = self._settle
        st_last = self._st_last
        for flow in self._flows.values():
            if st_last[flow.slot] == now:
                skipped += 1
                continue
            settle(flow, now)
        self.settle_skipped += skipped

    # -- internals ---------------------------------------------------------

    def _register_flow(self, flow: _Flow, now: float) -> None:
        """Assign a state-column slot to a new flow.

        Slots are handed out monotonically so ascending slot order is
        ascending flow-id order; when the columns are mostly dead rows
        they are compacted first (preserving relative order, hence the
        invariant).
        """
        nslots = len(self._st_rate)
        if nslots >= 1024 and 2 * len(self._flows) < nslots:
            self._compact_slots()
            nslots = len(self._st_rate)
        flow.slot = nslots
        flow.net = self
        # Drop cached numpy views *before* appending: while a view is
        # exported the stdlib arrays refuse to resize (BufferError).
        self._col_views = None
        self._st_rate.append(0.0)
        self._st_last.append(now)
        self._st_rem.append(flow.total_bytes)
        self._st_gen.append(0)
        self._st_bn.append(-1)
        self._st_fid.append(flow.id)

    def _compact_slots(self) -> None:
        """Drop dead rows from the state columns, keeping live order."""
        self._col_views = None
        live = sorted(self._flows.values(), key=lambda f: f.slot)
        columns = (self._st_rate, self._st_last, self._st_rem,
                   self._st_gen, self._st_bn, self._st_fid)
        packed = [
            _stdarray(col.typecode, (col[f.slot] for f in live))
            for col in columns
        ]
        (self._st_rate, self._st_last, self._st_rem,
         self._st_gen, self._st_bn, self._st_fid) = packed
        for i, flow in enumerate(live):
            flow.slot = i
        if _np is not None:
            rows = {}
            for lid, flows_here in self._by_link.items():
                buf = _np.array(
                    sorted(f.slot for f in flows_here.values()), _np.int64
                )
                rows[lid] = [buf, len(flows_here), buf]
            self._link_rows = rows

    def _rows_append(self, lid: int, slot: int) -> None:
        """Add a (new, hence largest) slot to a link's sorted slot array."""
        entry = self._link_rows.get(lid)
        if entry is None:
            buf = _np.empty(4, _np.int64)
            buf[0] = slot
            self._link_rows[lid] = [buf, 1, None]
            return
        buf, n, _view = entry
        if n == buf.shape[0]:
            grown = _np.empty(n * 2, _np.int64)
            grown[:n] = buf
            entry[0] = buf = grown
        buf[n] = slot
        entry[1] = n + 1
        entry[2] = None

    def _rows_remove(self, lid: int, slot: int) -> None:
        entry = self._link_rows[lid]
        buf, n, _view = entry
        if n == 1:
            del self._link_rows[lid]
            return
        pos = int(_np.searchsorted(buf[:n], slot))
        buf[pos:n - 1] = buf[pos + 1:n]
        entry[1] = n - 1
        entry[2] = None

    def _advance(self, flow: _Flow, now: float) -> float:
        """Progress one flow's ``remaining`` to ``now``; returns the bytes
        moved (0.0 when no simulated time passed or the flow was idle).

        ``moved`` is clamped to ``remaining`` so ``link.bytes_carried``
        never over-credits the final tick of a flow.  Byte-counter
        crediting is the caller's job: re-solves batch one addition per
        link, the single-flow paths (:meth:`_settle`) credit per route
        occurrence.
        """
        slot = flow.slot
        st_last = self._st_last
        dt = now - st_last[slot]
        st_last[slot] = now
        if dt <= 0.0:
            return 0.0
        rate = self._st_rate[slot]
        if rate <= 0.0:
            return 0.0
        st_rem = self._st_rem
        rem = st_rem[slot]
        moved = rate * dt
        if moved > rem:
            moved = rem
        st_rem[slot] = rem - moved
        return moved

    def _settle(self, flow: _Flow, now: float) -> None:
        """Progress one flow to ``now``, crediting its route's links."""
        moved = self._advance(flow, now)
        if moved:
            for link in flow.route:
                link.bytes_carried += moved

    def _remove(self, flow: _Flow) -> None:
        """Drop a flow from every index (does not touch its event)."""
        del self._flows[flow.id]
        links = flow.links
        if len(flow.route) != len(links):
            self._degenerate -= 1
        adj = self._link_adj
        use_rows = _np is not None
        for i, link in enumerate(links):
            flows_here = self._by_link[link.id]
            del flows_here[flow.id]
            if not flows_here:
                del self._by_link[link.id]
                del self._link_objs[link.id]
            if use_rows:
                self._rows_remove(link.id, flow.slot)
            row = adj.get(link.id)
            if row is None:
                continue  # single-link flow: never formed a pair
            for other in links[i + 1:]:
                n = row[other.id] - 1
                if n:
                    row[other.id] = n
                else:
                    del row[other.id]
                back = adj[other.id]
                if back[link.id] == 1:
                    del back[link.id]
                else:
                    back[link.id] -= 1
            if not row:
                del adj[link.id]
        self._by_event.pop(flow.event, None)

    def _component_links(
        self, seed_links: typing.Iterable[Link]
    ) -> typing.Tuple[typing.List[int], int, int]:
        """Live link ids reachable from ``seed_links`` through the
        flow–link sharing graph (all live links in reference mode), plus
        the max flow count on any single one of them (the component's
        sharing degree) and the total flow–link incidence count (both
        gate the vector core).

        The BFS walks the *link*-level adjacency index (a handful of
        nodes); flows are never visited here — the vector core merges
        the per-link slot arrays directly, and the scalar path unions
        the per-link flow dicts via :meth:`_component_flows` only when
        it actually needs flow objects.
        """
        by_link = self._by_link
        if not self.incremental:
            sizes = list(map(len, by_link.values()))
            return list(by_link), max(sizes, default=0), sum(sizes)
        adj = self._link_adj
        pending = [link.id for link in seed_links]
        seen = set(pending)
        lids: typing.List[int] = []
        max_len = 0
        n_inc = 0
        while pending:
            lid = pending.pop()
            here = by_link.get(lid)
            if here is None:
                continue  # seed link with no live flows
            lids.append(lid)
            n = len(here)
            n_inc += n
            if n > max_len:
                max_len = n
            for other in adj.get(lid, ()):
                if other not in seen:
                    seen.add(other)
                    pending.append(other)
        return lids, max_len, n_inc

    def _component_flows(
        self, lids: typing.List[int]
    ) -> typing.Dict[int, _Flow]:
        """Union of the per-link flow dicts over ``lids`` (C-speed
        ``dict.update`` instead of a Python visit per flow)."""
        if not self.incremental:
            return dict(self._flows)
        by_link = self._by_link
        flows: typing.Dict[int, _Flow] = {}
        for lid in lids:
            flows.update(by_link[lid])
        return flows

    def _resolve(self, seed_links: typing.Iterable[Link]) -> None:
        """Request a re-solve for the component(s) touching ``seed_links``.

        In batch mode the request is deferred to a zero-delay flush event
        so every request landing at this timestamp costs one solve; eager
        mode solves immediately (the PR-3 behaviour, kept for
        differential testing).
        """
        if not self.batch:
            self._resolve_now(seed_links)
            return
        pending = self._pending_seeds
        if pending:
            self.resolves_coalesced += 1
        for link in seed_links:
            pending[link.id] = link
        if not self._flush_scheduled:
            self._flush_scheduled = True
            flush = Event(self.engine)
            flush._ok = True
            flush._value = None
            flush.add_callback(self._on_flush)
            self.engine.schedule(flush)

    def _on_flush(self, _event: Event) -> None:
        self._flush_scheduled = False
        if self._pending_seeds:
            seeds = list(self._pending_seeds.values())
            self._pending_seeds.clear()
            self._resolve_now(seeds)

    def _flush_pending(self) -> None:
        """Run any deferred re-solve before state becomes observable.

        The queued flush event later no-ops on the emptied seed set.
        """
        if self._pending_seeds:
            seeds = list(self._pending_seeds.values())
            self._pending_seeds.clear()
            self._resolve_now(seeds)

    def _merged_seeds(
        self, extra: typing.Iterable[Link]
    ) -> typing.List[Link]:
        """Deferred seeds plus ``extra``, consumed for one eager solve."""
        if not self._pending_seeds:
            return list(extra)
        merged = self._pending_seeds
        self._pending_seeds = {}
        for link in extra:
            merged[link.id] = link
        return list(merged.values())

    def _resolve_now(self, seed_links: typing.Iterable[Link]) -> None:
        """Re-solve rates for the component(s) touching ``seed_links``."""
        lids, max_len, n_inc = self._component_links(seed_links)
        self.rebalances += 1
        if lids:
            now = self.engine.now
            want_bottlenecks = (
                self.trace is not None and self.trace.wants("causal")
            )
            # Density cutover: the vector core amortizes per-freeze-round
            # numpy overhead only when many flows share a link (each
            # round then freezes many rows at once).  The max per-link
            # flow count — a lower bound on component size and the
            # direct measure of sharing — gates without materializing
            # the component's flow set.  The incidence-vs-slot-range
            # guard keeps small components in big networks off the
            # slot-space core (its full-column passes would dwarf the
            # component).  Degenerate routes (repeated links) stay
            # scalar so their per-occurrence byte crediting keeps its
            # exact order.
            use_vector = (
                _np is not None
                and max_len >= _VECTOR_MIN_FLOWS
                and _VECTOR_SPARSITY * n_inc >= len(self._st_rate)
                and not self._degenerate
            )
            if use_vector:
                self.flows_resolved += self._solve_vector(
                    lids, now, want_bottlenecks
                )
            else:
                component = self._component_flows(lids)
                self.flows_resolved += len(component)
                self._solve_scalar(
                    component, now, want_bottlenecks,
                    len(component) == len(self._flows),
                )
            if self.on_rebalance:
                if use_vector:
                    component = self._component_flows(lids)
                for hook in self.on_rebalance:
                    hook(list(component.values()))
        self._arm_timer()

    def _solve_scalar(
        self,
        component: typing.Dict[int, _Flow],
        now: float,
        want_bottlenecks: bool,
        full: bool,
    ) -> None:
        """Reference solver core: per-flow Python loops over the component.

        Settlement credits bytes at *batch* granularity — each link gets
        one ``bytes_carried`` addition of the flow-major sum over the
        flows settled by this solve — mirroring the vector core so both
        produce bit-identical link counters.
        """
        ordered = sorted(component)
        bottlenecks: typing.Optional[typing.Dict[int, int]] = (
            {} if want_bottlenecks else None
        )
        rates = waterfill(component, ordered, bottlenecks)
        st_rate = self._st_rate
        st_rem = self._st_rem
        st_gen = self._st_gen
        st_bn = self._st_bn
        byte_sums: typing.Dict[Link, float] = {}
        entries: typing.List[tuple] = []
        for fid in ordered:
            flow = component[fid]
            slot = flow.slot
            if want_bottlenecks:
                b = bottlenecks.get(fid)
                st_bn[slot] = -1 if b is None else b
            new_rate = rates.get(fid, 0.0)
            if new_rate == st_rate[slot]:
                continue  # untouched: its completion entry stays valid
            moved = self._advance(flow, now)
            if moved:
                for link in flow.route:
                    byte_sums[link] = byte_sums.get(link, 0.0) + moved
            st_rate[slot] = new_rate
            st_gen[slot] += 1
            if new_rate > 0.0:
                entries.append(
                    (now + st_rem[slot] / new_rate, fid, st_gen[slot])
                )
        for link, total in byte_sums.items():
            link.bytes_carried += total
        self._heap_insert(entries, full)

    def _heap_insert(self, entries: typing.List[tuple], full: bool) -> None:
        """Adaptively merge fresh completion entries into the heap.

        Pop order is identical however entries land (keys are unique and
        stale entries are skipped lazily), so the policy is purely a
        performance knob: push one-by-one when few, extend+heapify when
        comparable to the heap, and — on a full-component solve where
        most rates changed (every old entry is garbage anyway) — rebuild
        the heap wholesale from the live flow set, leaving no garbage.
        ``last_settled + remaining/rate`` is exact for changed (settled
        just now) and unchanged flows alike, because a flow's rate is
        constant since its last settlement.
        """
        heap = self._completions
        if full and 4 * len(entries) >= len(self._flows):
            st_rate = self._st_rate
            st_rem = self._st_rem
            st_gen = self._st_gen
            st_last = self._st_last
            self._completions = heap = [
                (st_last[f.slot] + st_rem[f.slot] / st_rate[f.slot],
                 fid, st_gen[f.slot])
                for fid, f in self._flows.items()
                if st_rate[f.slot] > 0.0
            ]
            heapq.heapify(heap)
        elif entries:
            if 4 * len(entries) >= len(heap):
                heap.extend(entries)
                heapq.heapify(heap)
            else:
                for entry in entries:
                    heapq.heappush(heap, entry)

    def _solve_vector(
        self,
        lids: typing.List[int],
        now: float,
        want_bottlenecks: bool,
    ) -> int:
        """Vectorized solver core: numpy over the state columns, same IEEE
        operations as the scalar core.  Returns the component's flow count.

        The component's flow set is the C-speed merge of the per-link
        slot arrays (sort + adjacent-dedup of their concatenation);
        ascending slot order is ascending flow-id order, so row ``r`` is
        the ``r``-th flow of the canonical ordering and column ``c`` the
        ``c``-th smallest live link id.  The freeze loop runs as
        vectorized capacity/active-count updates (one
        ``cap -= share * k`` fused round per bottleneck, exactly the
        reference solver's round arithmetic); settlement, byte
        crediting, state writeback, and completion-heap entries are
        gather/scatter on zero-copy views of the state columns — no
        per-flow Python work anywhere.
        """
        np = _np
        lids.sort()
        nl = len(lids)
        link_rows = self._link_rows
        row_views = []
        ptr = [0]
        n_inc = 0
        for lid in lids:
            entry = link_rows[lid]
            view = entry[2]
            if view is None:
                view = entry[2] = entry[0][:entry[1]]
            row_views.append(view)
            n_inc += entry[1]
            ptr.append(n_inc)
        l_slots = np.concatenate(row_views) if nl > 1 else row_views[0]
        l_ptr = np.array(ptr, np.int64)
        lens = np.diff(l_ptr)
        link_objs = self._link_objs
        links = [link_objs[lid] for lid in lids]
        cap = np.fromiter(
            # Inlined Link.effective_bandwidth (same expression).
            (link.bandwidth * link.degrade_factor for link in links),
            np.float64, nl,
        )
        cnt = lens.copy()

        # All solver vectors are indexed by *slot* (the state-column row),
        # not by component rank: per-link rows already hold sorted slots,
        # so no global sort / rank compression is ever needed.  Dead and
        # out-of-component slots are masked by ``member`` (the columns
        # are compacted, so the slot range stays within 2x the live flow
        # count and full-column arithmetic beats rank gathers).
        nslots = len(self._st_rate)
        member = np.zeros(nslots, np.bool_)
        member[l_slots] = True
        nf = int(np.count_nonzero(member))
        frozen = np.zeros(nslots, np.bool_)
        new = np.zeros(nslots, np.float64)
        bn = np.full(nslots, -1, np.int64) if want_bottlenecks else None
        shares = np.empty(nl, np.float64)
        tot_prev = np.zeros(nl, np.int64)
        seg = l_ptr[:-1]
        inf = float("inf")
        left = nf
        while True:
            shares.fill(inf)
            np.divide(cap, cnt, out=shares, where=cnt > 0)
            b = int(shares.argmin())  # first minimum = lowest link id
            share = float(shares[b])
            if share == inf:
                break  # no link has unfrozen flows left
            rows = l_slots[ptr[b]:ptr[b + 1]]
            rows = rows[~frozen[rows]]  # ascending flow order preserved
            new[rows] = share
            frozen[rows] = True
            if bn is not None:
                bn[rows] = lids[b]
            left -= int(rows.shape[0])
            if not left:
                break  # final round: the cap/cnt update below is unread
            # k = flows frozen per link THIS round, as the delta of the
            # cumulative per-link frozen counts (one segmented reduction
            # over the link-major element list), then one
            # multiply-subtract per link — the reference solver's round
            # update.
            tot = np.add.reduceat(frozen[l_slots], seg)
            k = tot - tot_prev
            tot_prev = tot
            cap -= share * k
            np.maximum(cap, 0.0, out=cap)
            cnt -= k

        # Batched settlement over zero-copy views of the state columns:
        # moved = rate * dt clamped to remaining, element-for-element
        # the scalar _advance arithmetic.  ``frozen`` now equals the
        # component membership mask (every component flow froze exactly
        # once), confining every full-column update to component flows
        # whose rate actually changed, like the scalar core.
        views = self._col_views
        if views is None:
            views = self._col_views = (
                np.frombuffer(self._st_rate, np.float64),
                np.frombuffer(self._st_last, np.float64),
                np.frombuffer(self._st_rem, np.float64),
                np.frombuffer(self._st_gen, np.int64),
                np.frombuffer(self._st_bn, np.int64),
                np.frombuffer(self._st_fid, np.int64),
            )
        rate_v, last_v, rem_v, gen_v, bn_v, fid_v = views
        changed = frozen & (new != rate_v)
        # ``old * dt`` is +0.0 whenever dt == 0 (just-settled flow) or
        # old == 0 (idle flow) — dt is never negative under a monotone
        # clock — so the scalar core's dt/rate guards need no masks here;
        # the product is bitwise the same 0.0 they return.
        moved = np.where(changed, rate_v * (now - last_v), 0.0)
        np.minimum(moved, rem_v, out=moved)
        rem_new = rem_v - moved

        if moved.any():
            # One bytes_carried addition per link of the per-link sum.
            # np.add.at applies sequentially in element order — link-major
            # with ascending flow order inside each link — which is the
            # same per-link accumulation order as the scalar byte_sums
            # dict (interleaved zero terms are bitwise no-ops), keeping
            # the counters bit-identical across cores.
            accum = np.zeros(nl, np.float64)
            np.add.at(
                accum, np.repeat(np.arange(nl, dtype=np.int64), lens),
                moved[l_slots],
            )
            accum_list = accum.tolist()
            for c in np.nonzero(accum)[0].tolist():
                links[c].bytes_carried += accum_list[c]

        full = nf == len(self._flows)
        npush = int(np.count_nonzero(changed & (new > 0.0)))
        if full and 4 * npush >= nf:
            # Wholesale heap rebuild (see _heap_insert): changed flows are
            # stamped to ``now``, unchanged flows keep their old
            # stamp/rate, so ``stamp + rem/rate`` is exact.  Deadlines
            # are computed *before* the masked writeback below so the
            # unchanged flows' old stamps are still in the columns.
            rate_eff = np.where(changed, new, rate_v)
            live = frozen & (rate_eff > 0.0)
            quot = np.empty(nslots, np.float64)
            np.divide(
                np.where(changed, rem_new, rem_v), rate_eff,
                out=quot, where=live,
            )
            deadline = np.where(changed, now, last_v) + quot
            entries = list(zip(
                deadline[live].tolist(), fid_v[live].tolist(),
                (gen_v[live] + changed[live]).tolist(),
            ))
            heapq.heapify(entries)
            self._completions = entries
        elif npush:
            push = changed & (new > 0.0)
            pidx = np.nonzero(push)[0]
            deadline = now + rem_new[pidx] / new[pidx]
            entries = list(zip(
                deadline.tolist(), fid_v[pidx].tolist(),
                (gen_v[pidx] + 1).tolist(),
            ))
            heap = self._completions
            if len(entries) * 4 >= len(heap):
                # Rebuilding the whole heap is cheaper than pushing a
                # comparable number of entries one by one; pop order
                # is identical either way (keys are unique).
                heap.extend(entries)
                heapq.heapify(heap)
            else:
                for entry in entries:
                    heapq.heappush(heap, entry)

        # Masked in-place writeback touches only flows whose rate
        # changed, like the scalar core (unchanged flows keep their
        # settlement stamp).
        np.copyto(rate_v, new, where=changed)
        np.copyto(last_v, now, where=changed)
        np.copyto(rem_v, rem_new, where=changed)
        gen_v += changed
        if bn is not None:
            np.copyto(bn_v, bn, where=frozen)
        return nf

    def _arm_timer(self) -> None:
        """Point the single engine timer at the earliest live completion."""
        heap = self._completions
        if len(heap) > 64 and len(heap) > 4 * len(self._flows):
            # Lazy invalidation lets stale entries pile up when rates
            # churn (every flow sharing one bottleneck); compact before
            # the heap outgrows the live flow set by too much.
            flows = self._flows
            st_gen = self._st_gen
            heap = self._completions = [
                entry for entry in heap
                if (flow := flows.get(entry[1])) is not None
                and st_gen[flow.slot] == entry[2]
            ]
            heapq.heapify(heap)
        flows = self._flows
        st_gen = self._st_gen
        while heap:
            _, fid, gen = heap[0]
            flow = flows.get(fid)
            if flow is None or st_gen[flow.slot] != gen:
                heapq.heappop(heap)  # stale: flow gone or rate changed
                continue
            break
        if not heap:
            if self._timer_deadline is not None:
                self._timer_gen += 1  # orphan any outstanding timer
                self._timer_deadline = None
            return
        deadline = heap[0][0]
        if self._timer_deadline == deadline:
            return  # an armed timer already covers this instant
        self._timer_gen += 1
        self._timer_deadline = deadline
        generation = self._timer_gen
        # A delay below one ULP of the current clock would re-fire at the
        # *same* float timestamp forever (zero elapsed time -> zero
        # progress).  Clamp up so the clock always advances; the extra
        # sub-ulp wait is physically meaningless.
        now = self.engine.now
        ulp = math.ulp(now) if now > 0 else 0.0
        timer = Event(self.engine)
        timer._ok = True
        timer._value = None
        timer.add_callback(lambda _e: self._on_timer(generation))
        self.engine.schedule(timer, delay=max(deadline - now, ulp, 0.0))

    def _on_timer(self, generation: int) -> None:
        # Deferred re-solves from earlier same-timestamp events (their
        # flush event is queued *behind* this timer) must land before the
        # completion sweep reads rates/deadlines.  Flushing may re-arm
        # the timer; the generation check below then defers the sweep to
        # the superseding timer exactly as an eager re-solve would have.
        self._flush_pending()
        if generation != self._timer_gen or self._timer_deadline is None:
            return  # superseded by a later rebalance
        self._timer_deadline = None
        now = self.engine.now
        heap = self._completions
        st_rate = self._st_rate
        st_rem = self._st_rem
        st_gen = self._st_gen
        finished: typing.List[_Flow] = []
        while heap and heap[0][0] <= now:
            _, fid, gen = heapq.heappop(heap)
            flow = self._flows.get(fid)
            if flow is None or st_gen[flow.slot] != gen:
                continue  # stale entry
            self._settle(flow, now)
            slot = flow.slot
            deadline = now + st_rem[slot] / st_rate[slot]
            if st_rem[slot] <= _EPSILON_BYTES or deadline <= now:
                # Done, or the residual streams out in under one ulp of
                # the clock: no representable future instant exists, so
                # finish now (_finish credits the residual exactly).
                finished.append(flow)
            else:
                # Float undershoot on the final tick: re-aim at the
                # (sub-ulp) residual instead of finishing early.
                gen = st_gen[slot] + 1
                st_gen[slot] = gen
                heapq.heappush(heap, (deadline, fid, gen))
        seeds: typing.Dict[int, Link] = {}
        for flow in finished:
            self._finish(flow, now)
            for link in flow.links:
                seeds[link.id] = link
        if seeds:
            self._resolve(seeds.values())
        else:
            self._arm_timer()

    def _finish(self, flow: _Flow, now: float) -> None:
        """Complete a flow: credit the residual, deliver its event."""
        if flow.remaining > 0.0:
            # Exactness: the sub-epsilon residual still counts as carried,
            # so per-link totals equal the payloads routed over them.
            for link in flow.route:
                link.bytes_carried += flow.remaining
            flow.remaining = 0.0
        self._remove(flow)
        self.completed_transfers += 1
        self.bytes_completed += flow.total_bytes
        bottleneck_name = None
        if flow.bottleneck is not None:
            for link in flow.links:
                if link.id == flow.bottleneck:
                    bottleneck_name = link.name
                    break
        if self.trace is not None and self.trace.wants("flow"):
            self.trace.emit(
                now, "flow", "done",
                nbytes=flow.total_bytes, duration=now - flow.started_at,
                links=len(flow.route), rate=flow.rate,
                bottleneck=bottleneck_name,
            )
        if bottleneck_name is not None:
            # Completion events have no __slots__; riding the bottleneck
            # along lets reliable_transfer report it without new plumbing
            # through every yield layer.
            flow.event._bottleneck = bottleneck_name
        if not flow.event.triggered:
            flow.event.succeed(now - flow.started_at)
