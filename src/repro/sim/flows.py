"""Max–min fair flow-level network model.

Data movement across the disaggregated fabric is modeled at *flow* level:
a transfer is a flow over a route (a sequence of :class:`Link` objects),
and all concurrent flows share link bandwidth according to **max–min
fairness** (progressive water-filling).  Whenever a flow starts or
finishes, rates are re-solved and in-flight completion times updated.
This captures the contention effects that make data placement matter,
at a tiny fraction of the cost of packet-level simulation (a design
choice recorded in DESIGN.md §5).

Scaling (DESIGN.md §5, "simulator performance model"): the solver is
*incremental*.  Persistent link→flow and event→flow indexes make
``fail_link``/``cancel``/``link_load`` proportional to the flows
actually involved; each arrival/departure re-solves only the connected
component of the flow–link sharing graph it touches (max–min fair rates
decompose exactly across components); per-flow progress is settled
lazily — a flow's ``remaining`` is only updated when *its* rate changes
— and completions come from a heap with generation-based lazy
invalidation instead of a rearm-everything timer.  The retained
reference solver (:func:`waterfill` over the full flow set, enabled
with ``FlowNetwork(..., incremental=False)``) is differentially tested
against the incremental path in ``tests/sim/test_flows_differential.py``:
same scenario, byte-identical rates and traces.

Units: time in nanoseconds, bandwidth in bytes/ns (1 byte/ns = 1 GB/s
with GB = 1e9 bytes).
"""

from __future__ import annotations

import heapq
import math
import typing
from itertools import count

from repro.sim.engine import Engine
from repro.sim.events import Event

#: Residual bytes below this are treated as completed (float safety).
_EPSILON_BYTES = 1e-6


class LinkDown(Exception):
    """A transfer failed because a link on its route went down."""

    def __init__(self, link: "Link"):
        super().__init__(f"link {link.name} is down")
        self.link = link


class TransferTimeout(Exception):
    """A transfer was cancelled because it exceeded its deadline."""

    def __init__(self, nbytes: float, timeout_ns: float):
        super().__init__(
            f"transfer of {nbytes:.0f}B timed out after {timeout_ns:.0f}ns"
        )
        self.nbytes = nbytes
        self.timeout_ns = timeout_ns


class Link:
    """A bidirectional network/bus link with capacity and propagation latency."""

    _ids = count()

    def __init__(self, name: str, bandwidth: float, latency: float):
        if bandwidth <= 0:
            raise ValueError(f"link bandwidth must be positive, got {bandwidth}")
        if latency < 0:
            raise ValueError(f"link latency must be non-negative, got {latency}")
        self.id = next(Link._ids)
        self.name = name
        self.bandwidth = float(bandwidth)  # bytes / ns
        self.latency = float(latency)  # ns
        self.up = True
        #: Gray-failure (fail-slow) multiplier on the *physical* capacity.
        #: ``bandwidth`` stays nominal — cost models and topology queries
        #: keep seeing the advertised speed, so the control plane can only
        #: learn about degradation from observed transfer timings.
        self.degrade_factor = 1.0
        #: Cumulative bytes that finished crossing this link.
        self.bytes_carried = 0.0

    @property
    def effective_bandwidth(self) -> float:
        """Physical capacity right now: nominal × degrade factor."""
        return self.bandwidth * self.degrade_factor

    def __repr__(self) -> str:
        state = "up" if self.up else "DOWN"
        if self.degrade_factor != 1.0:
            state += f" degraded×{self.degrade_factor:g}"
        return f"<Link {self.name} {self.bandwidth:.3f}B/ns {self.latency:.0f}ns {state}>"


class _Flow:
    _ids = count()

    __slots__ = (
        "id", "route", "links", "total_bytes", "remaining", "rate",
        "event", "started_at", "last_settled", "gen", "bottleneck",
    )

    def __init__(self, route: typing.Sequence[Link], nbytes: float, event: Event):
        self.id = next(_Flow._ids)
        self.route = tuple(route)
        #: Unique links of the route, in route order (a degenerate route
        #: listing a link twice still contends once in the solver but
        #: carries bytes per occurrence).
        self.links = tuple(dict.fromkeys(self.route))
        self.total_bytes = float(nbytes)
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.event = event
        self.started_at: float = 0.0
        #: Time up to which ``remaining``/``bytes_carried`` are settled.
        self.last_settled: float = 0.0
        #: Bumped on every rate change; stale completion-heap entries
        #: (older generation) are discarded lazily.
        self.gen = 0
        #: Link id this flow last froze at in the waterfill (its max–min
        #: bottleneck); only recorded when causal tracing wants it.
        self.bottleneck: typing.Optional[int] = None

    def __repr__(self) -> str:
        return f"<Flow #{self.id} {self.remaining:.0f}/{self.total_bytes:.0f}B @{self.rate:.3f}B/ns>"


def waterfill(
    flows_by_id: typing.Mapping[int, _Flow],
    ordered_ids: typing.Optional[typing.List[int]] = None,
    bottlenecks: typing.Optional[typing.Dict[int, int]] = None,
) -> typing.Dict[int, float]:
    """Progressive water-filling over ``flows_by_id``; the reference solver.

    Returns ``{flow_id: max–min fair rate}``.  Deterministic and
    order-canonical: candidate bottleneck links are scanned in ascending
    link id and flows freeze in ascending flow id, so solving a connected
    component in isolation yields *bit-identical* rates to solving it as
    part of the full flow set (components never share links, hence never
    share a ``remaining capacity`` cell; the global freeze sequence is a
    pure interleaving of the per-component sequences).

    ``ordered_ids`` (the flow ids, ascending) may be passed by callers
    that already sorted them.  ``bottlenecks``, when given, is filled
    with ``{flow_id: link id the flow froze at}`` — the link that
    capped its max–min rate (causal attribution uses this to break the
    transfer bucket down by bottleneck link).
    """
    if ordered_ids is None:
        ordered_ids = sorted(flows_by_id)
    by_link: typing.Dict[int, list] = {}  # lid -> [remaining_cap, unfrozen fid set]
    for fid in ordered_ids:
        for link in flows_by_id[fid].links:
            entry = by_link.get(link.id)
            if entry is None:
                by_link[link.id] = entry = [link.effective_bandwidth, set()]
            entry[1].add(fid)

    rates: typing.Dict[int, float] = {}
    link_ids = sorted(by_link)
    while True:
        # Fair share offered by each link that still has unfrozen flows.
        bottleneck_id = None
        bottleneck_share = float("inf")
        for lid in link_ids:
            cap, unfrozen = by_link[lid]
            if not unfrozen:
                continue
            share = cap / len(unfrozen)
            if share < bottleneck_share:
                bottleneck_share = share
                bottleneck_id = lid
        if bottleneck_id is None:
            break
        # Freeze every unfrozen flow on the bottleneck at that share.
        for fid in sorted(by_link[bottleneck_id][1]):
            rates[fid] = bottleneck_share
            if bottlenecks is not None:
                bottlenecks[fid] = bottleneck_id
            for link in flows_by_id[fid].links:
                entry = by_link[link.id]
                entry[1].discard(fid)
                entry[0] -= bottleneck_share
                if entry[0] < 0:
                    entry[0] = 0.0
    return rates


class FlowNetwork:
    """Shared-bandwidth transfer scheduler on top of an :class:`Engine`."""

    def __init__(self, engine: Engine, trace=None, incremental: bool = True):
        self.engine = engine
        self._flows: typing.Dict[int, _Flow] = {}
        #: link id -> {flow id -> flow} for every link with live flows.
        self._by_link: typing.Dict[int, typing.Dict[int, _Flow]] = {}
        #: completion event -> flow (O(1) cancel).
        self._by_event: typing.Dict[Event, _Flow] = {}
        #: (completion time, flow id, flow gen) min-heap; entries whose
        #: gen no longer matches the flow's are stale and skipped.
        self._completions: list = []
        self._timer_gen = 0
        #: Deadline of the currently armed engine timer (None = no valid
        #: timer outstanding; superseded timers no-op via the gen check).
        self._timer_deadline: typing.Optional[float] = None
        #: Restrict each re-solve to the affected connected component
        #: (True) or re-solve the full flow set (False, reference mode).
        self.incremental = incremental
        self.completed_transfers = 0
        #: Total payload bytes of completed transfers.
        self.bytes_completed = 0.0
        #: High-water mark of concurrently active flows (contention).
        self.peak_active_flows = 0
        #: Rate re-solves performed / flows they touched (observability:
        #: flows_resolved / rebalances ≈ mean component size).
        self.rebalances = 0
        self.flows_resolved = 0
        #: Bumped whenever link state flips (fail/restore); topology- and
        #: offer-caches key their validity off this (see CostModel).
        self.topology_epoch = 0
        #: Optional bounded TraceLog for per-flow events ("flow" category).
        self.trace = trace
        #: Optional hooks called after each re-solve with the affected
        #: flows (tests use this to audit capacity invariants).
        self.on_rebalance: typing.List[typing.Callable[[typing.List[_Flow]], None]] = []

    # -- public API ------------------------------------------------------

    def transfer(
        self,
        route: typing.Sequence[Link],
        nbytes: float,
        extra_latency: float = 0.0,
    ) -> Event:
        """Start a transfer of ``nbytes`` over ``route``.

        Returns an event that succeeds (with the transfer duration) when
        the last byte arrives, or fails with :class:`LinkDown` if a link
        on the route fails mid-flight.  Propagation latency (sum of link
        latencies plus ``extra_latency``) is paid before streaming starts.
        """
        if nbytes < 0:
            raise ValueError(f"cannot transfer negative bytes: {nbytes}")
        done = Event(self.engine)
        for link in route:
            if not link.up:
                done.fail(LinkDown(link))
                done.defuse()  # waiters still see the failure when they yield
                return done
        latency = sum(link.latency for link in route) + extra_latency
        if nbytes == 0 or not route:
            done.succeed(latency, delay=latency)
            return done

        start_time = self.engine.now

        def _start(_event: Event) -> None:
            if done.triggered:
                return  # cancelled during the latency phase
            for link in route:
                if not link.up:
                    if not done.triggered:
                        done.fail(LinkDown(link))
                        done.defuse()
                    return
            flow = _Flow(route, nbytes, done)
            flow.started_at = start_time
            flow.last_settled = self.engine.now
            self._flows[flow.id] = flow
            for link in flow.links:
                self._by_link.setdefault(link.id, {})[flow.id] = flow
            self._by_event[done] = flow
            if len(self._flows) > self.peak_active_flows:
                self.peak_active_flows = len(self._flows)
            self._resolve(flow.links)

        if latency > 0:
            starter = Event(self.engine)
            starter._ok = True
            starter._value = None
            starter.add_callback(_start)
            self.engine.schedule(starter, delay=latency)
        else:
            _start(done)
        return done

    def fail_link(self, link: Link) -> list:
        """Mark ``link`` down, failing every in-flight flow crossing it.

        Returns the list of failed flow events (already failed).
        """
        link.up = False
        self.topology_epoch += 1
        doomed = list(self._by_link.get(link.id, {}).values())
        failed = []
        now = self.engine.now
        seeds: typing.Dict[int, Link] = {}
        for flow in doomed:
            self._settle(flow, now)
            self._remove(flow)
            for other in flow.links:
                seeds[other.id] = other
            if not flow.event.triggered:
                flow.event.fail(LinkDown(link))
            failed.append(flow.event)
        if doomed:
            self._resolve(seeds.values())
        return failed

    def restore_link(self, link: Link) -> None:
        """Bring a failed link back up (new transfers may use it).

        Bumps :attr:`topology_epoch` so offer/satisfaction caches stop
        serving the NoRoute-era answers for paths over this link.
        """
        link.up = True
        self.topology_epoch += 1

    def degrade_link(self, link: Link, factor: float) -> None:
        """Fail-slow a link: scale its physical capacity by ``factor``.

        Unlike :meth:`fail_link` the link stays up and in-flight flows
        keep streaming — just slower.  The nominal ``link.bandwidth`` is
        untouched so cost models stay blind; only the solver's capacity
        (and hence observed durations) change.  Re-solves the affected
        component so every sharing flow's rate reflects the new capacity.
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"degrade factor must be in (0, 1], got {factor}")
        if link.degrade_factor == factor:
            return
        link.degrade_factor = factor
        self.topology_epoch += 1
        self._resolve([link])

    def restore_link_speed(self, link: Link) -> None:
        """Undo :meth:`degrade_link`: back to nominal capacity."""
        if link.degrade_factor == 1.0:
            return
        link.degrade_factor = 1.0
        self.topology_epoch += 1
        self._resolve([link])

    def cancel(self, event: Event, cause: typing.Optional[Exception] = None) -> bool:
        """Cancel the transfer identified by its completion ``event``.

        Works both for flows that are streaming and for transfers still
        in their latency phase (whose flow object does not exist yet).
        The event is failed with ``cause`` (default
        :class:`TransferTimeout`) and defused, so abandoning callers —
        e.g. an ``any_of`` race against a deadline — never leak an
        unhandled failure into the engine.  Returns ``False`` if the
        transfer already finished.
        """
        if event.triggered:
            return False
        flow = self._by_event.get(event)
        if flow is not None:
            self._settle(flow, self.engine.now)
            # Exact accounting for the abandoned attempt: bytes that made
            # it across before the cancel (hedging charges these as waste).
            event._progress = flow.total_bytes - flow.remaining
            self._remove(flow)
            self._resolve(flow.links)
        else:
            event._progress = 0.0  # still in the latency phase: no bytes moved
        event.fail(cause or TransferTimeout(float("nan"), float("nan")))
        event.defuse()
        return True

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def link_load(self, link: Link) -> float:
        """Current aggregate rate (bytes/ns) crossing ``link``."""
        return sum(f.rate for f in self._by_link.get(link.id, {}).values())

    def settle_all(self) -> None:
        """Materialize every flow's progress up to now.

        Lazy settlement only updates ``remaining``/``bytes_carried`` when
        a flow's rate changes; call this before reading mid-flight byte
        counters (the cluster's metrics collector does).
        """
        now = self.engine.now
        for flow in self._flows.values():
            self._settle(flow, now)

    # -- internals ---------------------------------------------------------

    def _settle(self, flow: _Flow, now: float) -> None:
        """Progress one flow to ``now`` at its current rate.

        ``moved`` is clamped to ``remaining`` so ``link.bytes_carried``
        never over-credits the final tick of a flow.
        """
        dt = now - flow.last_settled
        flow.last_settled = now
        if dt <= 0.0 or flow.rate <= 0.0:
            return
        moved = flow.rate * dt
        if moved > flow.remaining:
            moved = flow.remaining
        flow.remaining -= moved
        for link in flow.route:
            link.bytes_carried += moved

    def _remove(self, flow: _Flow) -> None:
        """Drop a flow from every index (does not touch its event)."""
        del self._flows[flow.id]
        for link in flow.links:
            flows_here = self._by_link[link.id]
            del flows_here[flow.id]
            if not flows_here:
                del self._by_link[link.id]
        self._by_event.pop(flow.event, None)

    def _component(
        self, seed_links: typing.Iterable[Link]
    ) -> typing.Dict[int, _Flow]:
        """Flows in the connected component(s) reachable from ``seed_links``
        through the flow–link sharing graph (all flows in reference mode)."""
        if not self.incremental:
            return dict(self._flows)
        total = len(self._flows)
        flows: typing.Dict[int, _Flow] = {}
        pending = [link.id for link in seed_links]
        seen = set(pending)
        while pending:
            lid = pending.pop()
            for fid, flow in self._by_link.get(lid, {}).items():
                if fid in flows:
                    continue
                flows[fid] = flow
                for link in flow.links:
                    if link.id not in seen:
                        seen.add(link.id)
                        pending.append(link.id)
            if len(flows) == total:
                break  # the component spans every live flow
        return flows

    def _resolve(self, seed_links: typing.Iterable[Link]) -> None:
        """Re-solve rates for the component(s) touching ``seed_links``."""
        component = self._component(seed_links)
        self.rebalances += 1
        self.flows_resolved += len(component)
        if component:
            ordered = sorted(component)
            want_bottlenecks = (
                self.trace is not None and self.trace.wants("causal")
            )
            bottlenecks: typing.Optional[typing.Dict[int, int]] = (
                {} if want_bottlenecks else None
            )
            rates = waterfill(component, ordered, bottlenecks)
            now = self.engine.now
            full = len(component) == len(self._flows)
            for fid in ordered:
                flow = component[fid]
                if want_bottlenecks:
                    flow.bottleneck = bottlenecks.get(fid)
                new_rate = rates.get(fid, 0.0)
                if new_rate == flow.rate:
                    continue  # untouched: its completion entry stays valid
                self._settle(flow, now)
                flow.rate = new_rate
                flow.gen += 1
                if not full and new_rate > 0.0:
                    heapq.heappush(
                        self._completions,
                        (now + flow.remaining / new_rate, flow.id, flow.gen),
                    )
            if full:
                # Every stale heap entry just got invalidated anyway, so a
                # wholesale rebuild (O(n) heapify, no garbage left behind)
                # beats pushing n fresh entries onto a pile of dead ones.
                # ``last_settled + remaining/rate`` is exact for changed
                # (settled just now) and unchanged flows alike, because a
                # flow's rate is constant since its last settlement.
                self._completions = [
                    (f.last_settled + f.remaining / f.rate, f.id, f.gen)
                    for f in self._flows.values()
                    if f.rate > 0.0
                ]
                heapq.heapify(self._completions)
            for hook in self.on_rebalance:
                hook(list(component.values()))
        self._arm_timer()

    def _arm_timer(self) -> None:
        """Point the single engine timer at the earliest live completion."""
        heap = self._completions
        if len(heap) > 64 and len(heap) > 4 * len(self._flows):
            # Lazy invalidation lets stale entries pile up when rates
            # churn (every flow sharing one bottleneck); compact before
            # the heap outgrows the live flow set by too much.
            flows = self._flows
            heap = self._completions = [
                entry for entry in heap
                if (flow := flows.get(entry[1])) is not None
                and flow.gen == entry[2]
            ]
            heapq.heapify(heap)
        while heap:
            _, fid, gen = heap[0]
            flow = self._flows.get(fid)
            if flow is None or flow.gen != gen:
                heapq.heappop(heap)  # stale: flow gone or rate changed
                continue
            break
        if not heap:
            if self._timer_deadline is not None:
                self._timer_gen += 1  # orphan any outstanding timer
                self._timer_deadline = None
            return
        deadline = heap[0][0]
        if self._timer_deadline == deadline:
            return  # an armed timer already covers this instant
        self._timer_gen += 1
        self._timer_deadline = deadline
        generation = self._timer_gen
        # A delay below one ULP of the current clock would re-fire at the
        # *same* float timestamp forever (zero elapsed time -> zero
        # progress).  Clamp up so the clock always advances; the extra
        # sub-ulp wait is physically meaningless.
        now = self.engine.now
        ulp = math.ulp(now) if now > 0 else 0.0
        timer = Event(self.engine)
        timer._ok = True
        timer._value = None
        timer.add_callback(lambda _e: self._on_timer(generation))
        self.engine.schedule(timer, delay=max(deadline - now, ulp, 0.0))

    def _on_timer(self, generation: int) -> None:
        if generation != self._timer_gen or self._timer_deadline is None:
            return  # superseded by a later rebalance
        self._timer_deadline = None
        now = self.engine.now
        heap = self._completions
        finished: typing.List[_Flow] = []
        while heap and heap[0][0] <= now:
            _, fid, gen = heapq.heappop(heap)
            flow = self._flows.get(fid)
            if flow is None or flow.gen != gen:
                continue  # stale entry
            self._settle(flow, now)
            deadline = now + flow.remaining / flow.rate
            if flow.remaining <= _EPSILON_BYTES or deadline <= now:
                # Done, or the residual streams out in under one ulp of
                # the clock: no representable future instant exists, so
                # finish now (_finish credits the residual exactly).
                finished.append(flow)
            else:
                # Float undershoot on the final tick: re-aim at the
                # (sub-ulp) residual instead of finishing early.
                flow.gen += 1
                heapq.heappush(heap, (deadline, flow.id, flow.gen))
        seeds: typing.Dict[int, Link] = {}
        for flow in finished:
            self._finish(flow, now)
            for link in flow.links:
                seeds[link.id] = link
        if seeds:
            self._resolve(seeds.values())
        else:
            self._arm_timer()

    def _finish(self, flow: _Flow, now: float) -> None:
        """Complete a flow: credit the residual, deliver its event."""
        if flow.remaining > 0.0:
            # Exactness: the sub-epsilon residual still counts as carried,
            # so per-link totals equal the payloads routed over them.
            for link in flow.route:
                link.bytes_carried += flow.remaining
            flow.remaining = 0.0
        self._remove(flow)
        self.completed_transfers += 1
        self.bytes_completed += flow.total_bytes
        bottleneck_name = None
        if flow.bottleneck is not None:
            for link in flow.links:
                if link.id == flow.bottleneck:
                    bottleneck_name = link.name
                    break
        if self.trace is not None and self.trace.wants("flow"):
            self.trace.emit(
                now, "flow", "done",
                nbytes=flow.total_bytes, duration=now - flow.started_at,
                links=len(flow.route), rate=flow.rate,
                bottleneck=bottleneck_name,
            )
        if bottleneck_name is not None:
            # Completion events have no __slots__; riding the bottleneck
            # along lets reliable_transfer report it without new plumbing
            # through every yield layer.
            flow.event._bottleneck = bottleneck_name
        if not flow.event.triggered:
            flow.event.succeed(now - flow.started_at)
