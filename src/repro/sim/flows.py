"""Max–min fair flow-level network model.

Data movement across the disaggregated fabric is modeled at *flow* level:
a transfer is a flow over a route (a sequence of :class:`Link` objects),
and all concurrent flows share link bandwidth according to **max–min
fairness** (progressive water-filling).  Whenever a flow starts or
finishes, rates are re-solved and in-flight completion times updated.
This captures the contention effects that make data placement matter,
at a tiny fraction of the cost of packet-level simulation (a design
choice recorded in DESIGN.md §5).

Units: time in nanoseconds, bandwidth in bytes/ns (1 byte/ns = 1 GB/s
with GB = 1e9 bytes).
"""

from __future__ import annotations

import math
import typing
from itertools import count

from repro.sim.engine import Engine
from repro.sim.events import Event

#: Residual bytes below this are treated as completed (float safety).
_EPSILON_BYTES = 1e-6


class LinkDown(Exception):
    """A transfer failed because a link on its route went down."""

    def __init__(self, link: "Link"):
        super().__init__(f"link {link.name} is down")
        self.link = link


class TransferTimeout(Exception):
    """A transfer was cancelled because it exceeded its deadline."""

    def __init__(self, nbytes: float, timeout_ns: float):
        super().__init__(
            f"transfer of {nbytes:.0f}B timed out after {timeout_ns:.0f}ns"
        )
        self.nbytes = nbytes
        self.timeout_ns = timeout_ns


class Link:
    """A bidirectional network/bus link with capacity and propagation latency."""

    _ids = count()

    def __init__(self, name: str, bandwidth: float, latency: float):
        if bandwidth <= 0:
            raise ValueError(f"link bandwidth must be positive, got {bandwidth}")
        if latency < 0:
            raise ValueError(f"link latency must be non-negative, got {latency}")
        self.id = next(Link._ids)
        self.name = name
        self.bandwidth = float(bandwidth)  # bytes / ns
        self.latency = float(latency)  # ns
        self.up = True
        #: Cumulative bytes that finished crossing this link.
        self.bytes_carried = 0.0

    def __repr__(self) -> str:
        state = "up" if self.up else "DOWN"
        return f"<Link {self.name} {self.bandwidth:.3f}B/ns {self.latency:.0f}ns {state}>"


class _Flow:
    _ids = count()

    def __init__(self, route: typing.Sequence[Link], nbytes: float, event: Event):
        self.id = next(_Flow._ids)
        self.route = tuple(route)
        self.total_bytes = float(nbytes)
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.event = event
        self.started_at: float = 0.0

    def __repr__(self) -> str:
        return f"<Flow #{self.id} {self.remaining:.0f}/{self.total_bytes:.0f}B @{self.rate:.3f}B/ns>"


class FlowNetwork:
    """Shared-bandwidth transfer scheduler on top of an :class:`Engine`."""

    def __init__(self, engine: Engine, trace=None):
        self.engine = engine
        self._flows: dict = {}  # id -> _Flow
        self._last_update = engine.now
        self._timer_gen = 0
        self.completed_transfers = 0
        #: Total payload bytes of completed transfers.
        self.bytes_completed = 0.0
        #: High-water mark of concurrently active flows (contention).
        self.peak_active_flows = 0
        #: Optional bounded TraceLog for per-flow events ("flow" category).
        self.trace = trace

    # -- public API ------------------------------------------------------

    def transfer(
        self,
        route: typing.Sequence[Link],
        nbytes: float,
        extra_latency: float = 0.0,
    ) -> Event:
        """Start a transfer of ``nbytes`` over ``route``.

        Returns an event that succeeds (with the transfer duration) when
        the last byte arrives, or fails with :class:`LinkDown` if a link
        on the route fails mid-flight.  Propagation latency (sum of link
        latencies plus ``extra_latency``) is paid before streaming starts.
        """
        if nbytes < 0:
            raise ValueError(f"cannot transfer negative bytes: {nbytes}")
        done = Event(self.engine)
        for link in route:
            if not link.up:
                done.fail(LinkDown(link))
                done.defuse()  # waiters still see the failure when they yield
                return done
        latency = sum(link.latency for link in route) + extra_latency
        if nbytes == 0 or not route:
            done.succeed(latency, delay=latency)
            return done

        start_time = self.engine.now

        def _start(_event: Event) -> None:
            if done.triggered:
                return  # cancelled during the latency phase
            flow = _Flow(route, nbytes, done)
            flow.started_at = start_time
            for link in route:
                if not link.up:
                    if not done.triggered:
                        done.fail(LinkDown(link))
                        done.defuse()
                    return
            self._advance()
            self._flows[flow.id] = flow
            self._rebalance()

        if latency > 0:
            starter = Event(self.engine)
            starter._ok = True
            starter._value = None
            starter.add_callback(_start)
            self.engine.schedule(starter, delay=latency)
        else:
            _start(done)
        return done

    def fail_link(self, link: Link) -> list:
        """Mark ``link`` down, failing every in-flight flow crossing it.

        Returns the list of failed flow events (already failed).
        """
        link.up = False
        self._advance()
        failed = []
        for flow in list(self._flows.values()):
            if link in flow.route:
                del self._flows[flow.id]
                if not flow.event.triggered:
                    flow.event.fail(LinkDown(link))
                failed.append(flow.event)
        self._rebalance()
        return failed

    def restore_link(self, link: Link) -> None:
        """Bring a failed link back up (new transfers may use it)."""
        link.up = True

    def cancel(self, event: Event, cause: typing.Optional[Exception] = None) -> bool:
        """Cancel the transfer identified by its completion ``event``.

        Works both for flows that are streaming and for transfers still
        in their latency phase (whose flow object does not exist yet).
        The event is failed with ``cause`` (default
        :class:`TransferTimeout`) and defused, so abandoning callers —
        e.g. an ``any_of`` race against a deadline — never leak an
        unhandled failure into the engine.  Returns ``False`` if the
        transfer already finished.
        """
        if event.triggered:
            return False
        for flow in list(self._flows.values()):
            if flow.event is event:
                self._advance()
                del self._flows[flow.id]
                self._rebalance()
                break
        event.fail(cause or TransferTimeout(float("nan"), float("nan")))
        event.defuse()
        return True

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def link_load(self, link: Link) -> float:
        """Current aggregate rate (bytes/ns) crossing ``link``."""
        return sum(f.rate for f in self._flows.values() if link in f.route)

    # -- internals ---------------------------------------------------------

    def _advance(self) -> None:
        """Progress all in-flight flows to the current time at their rates."""
        now = self.engine.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0:
            return
        finished = []
        for flow in self._flows.values():
            moved = flow.rate * dt
            flow.remaining -= moved
            for link in flow.route:
                link.bytes_carried += moved
            if flow.remaining <= _EPSILON_BYTES:
                finished.append(flow)
        for flow in finished:
            del self._flows[flow.id]
            self.completed_transfers += 1
            self.bytes_completed += flow.total_bytes
            if self.trace is not None and self.trace.wants("flow"):
                self.trace.emit(
                    now, "flow", "done",
                    nbytes=flow.total_bytes, duration=now - flow.started_at,
                    links=len(flow.route), rate=flow.rate,
                )
            if not flow.event.triggered:
                flow.event.succeed(now - flow.started_at)

    def _rebalance(self) -> None:
        """Re-solve max–min fair rates and arm the next completion timer."""
        self._timer_gen += 1
        if not self._flows:
            return
        if len(self._flows) > self.peak_active_flows:
            self.peak_active_flows = len(self._flows)
        self._solve_rates()
        self._arm_timer()

    def _solve_rates(self) -> None:
        """Progressive water-filling over the current flow set."""
        flows = list(self._flows.values())
        links: dict = {}
        for flow in flows:
            for link in flow.route:
                links.setdefault(link.id, (link, []))[1].append(flow)

        remaining_cap = {lid: pair[0].bandwidth for lid, pair in links.items()}
        unfrozen: dict = {lid: set(f.id for f in pair[1]) for lid, pair in links.items()}
        frozen_rate: dict = {}

        flow_by_id = {f.id: f for f in flows}
        while any(unfrozen.values()):
            # Fair share offered by each link that still has unfrozen flows.
            bottleneck_id = None
            bottleneck_share = float("inf")
            for lid, flow_ids in unfrozen.items():
                if not flow_ids:
                    continue
                share = remaining_cap[lid] / len(flow_ids)
                if share < bottleneck_share:
                    bottleneck_share = share
                    bottleneck_id = lid
            if bottleneck_id is None:
                break
            # Freeze every unfrozen flow on the bottleneck at that share.
            for fid in list(unfrozen[bottleneck_id]):
                frozen_rate[fid] = bottleneck_share
                flow = flow_by_id[fid]
                for link in flow.route:
                    lid = link.id
                    unfrozen[lid].discard(fid)
                    remaining_cap[lid] -= bottleneck_share
                    if remaining_cap[lid] < 0:
                        remaining_cap[lid] = 0.0

        for flow in flows:
            flow.rate = frozen_rate.get(flow.id, 0.0)

    def _arm_timer(self) -> None:
        next_dt = float("inf")
        for flow in self._flows.values():
            if flow.rate > 0:
                next_dt = min(next_dt, flow.remaining / flow.rate)
        if next_dt == float("inf"):
            return
        # A delay below one ULP of the current clock would re-fire at the
        # *same* float timestamp forever (zero elapsed time -> zero
        # progress).  Clamp up so the clock always advances; the extra
        # sub-ulp wait is physically meaningless.
        ulp = math.ulp(self.engine.now) if self.engine.now > 0 else 0.0
        generation = self._timer_gen
        timer = Event(self.engine)
        timer._ok = True
        timer._value = None
        timer.add_callback(lambda _e: self._on_timer(generation))
        self.engine.schedule(timer, delay=max(next_dt, ulp, 0.0))

    def _on_timer(self, generation: int) -> None:
        if generation != self._timer_gen:
            return  # superseded by a later rebalance
        self._advance()
        self._rebalance()
