"""Seeded, named random streams.

Every stochastic component pulls from its own named stream so that adding
randomness to one subsystem never perturbs another — a standard trick for
reproducible systems simulation.  Streams are derived from a single root
seed with stable hashing, so ``RandomStreams(42).stream("faults")`` is
identical across runs and platforms.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RandomStreams:
    """Factory of independent :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]

    def reset(self) -> None:
        """Forget all derived streams (they are re-derived deterministically)."""
        self._streams.clear()
