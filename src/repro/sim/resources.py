"""Shared-resource primitives: counted resources and item stores.

These model things that simulation processes contend for, e.g. execution
slots on a compute device or bounded staging buffers.  Requests are served
strictly FIFO, which keeps runs deterministic.
"""

from __future__ import annotations

import typing
from collections import deque

from repro.sim.engine import Engine
from repro.sim.events import Event


class Request(Event):
    """A pending acquisition of one unit of a :class:`Resource`.

    Use as a context manager::

        with resource.request() as req:
            yield req
            ...  # holding one slot
    """

    def __init__(self, resource: "Resource"):
        super().__init__(resource.engine)
        self.resource = resource
        resource._enqueue(self)

    def release(self) -> None:
        self.resource.release(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


class Resource:
    """A resource with ``capacity`` identical slots and a FIFO wait queue."""

    def __init__(self, engine: Engine, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self._holders: set = set()
        self._waiting: deque = deque()

    @property
    def in_use(self) -> int:
        return len(self._holders)

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self) -> Request:
        """Request one slot; yield the returned event to acquire it."""
        return Request(self)

    def _enqueue(self, request: Request) -> None:
        if len(self._holders) < self.capacity and not self._waiting:
            self._holders.add(request)
            request.succeed(request)
        else:
            self._waiting.append(request)

    def release(self, request: Request) -> None:
        """Release a held or queued request (idempotent)."""
        if request in self._holders:
            self._holders.remove(request)
            self._grant_next()
        elif request in self._waiting:
            self._waiting.remove(request)

    def _grant_next(self) -> None:
        while self._waiting and len(self._holders) < self.capacity:
            nxt = self._waiting.popleft()
            self._holders.add(nxt)
            nxt.succeed(nxt)


class Store:
    """An unbounded-or-bounded FIFO store of items.

    ``put`` blocks when the store is full (bounded case); ``get`` blocks
    when it is empty.  This is the building block for message queues
    between dataflow tasks.
    """

    def __init__(self, engine: Engine, capacity: typing.Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.items: deque = deque()
        self._getters: deque = deque()
        self._putters: deque = deque()  # (event, item)

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self.items) >= self.capacity

    def put(self, item) -> Event:
        """Insert ``item``; the returned event fires once it is stored."""
        event = Event(self.engine)
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed(None)
        elif not self.is_full:
            self.items.append(item)
            event.succeed(None)
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Take the oldest item; the returned event carries it."""
        event = Event(self.engine)
        if self.items:
            event.succeed(self.items.popleft())
            self._admit_putter()
        else:
            self._getters.append(event)
        return event

    def _admit_putter(self) -> None:
        if self._putters and not self.is_full:
            putter, item = self._putters.popleft()
            self.items.append(item)
            putter.succeed(None)
