"""Discrete-event simulation substrate.

Everything in :mod:`repro` that needs a notion of time — memory transfers,
task execution, link contention, faults — runs on this small simulation
kernel.  It follows the well-known *processes as generators* design
(cf. SimPy): a process is a Python generator that yields
:class:`~repro.sim.events.Event` objects and is resumed when they trigger.

The kernel is deliberately self-contained so the rest of the library never
has to know how time advances.  Simulated time is measured in
**nanoseconds** throughout the code base.
"""

from repro.sim.engine import Engine
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    ProcessKilled,
    Timeout,
)
from repro.sim.flows import FlowNetwork, Link
from repro.sim.resources import Resource, Store
from repro.sim.rand import RandomStreams
from repro.sim.trace import MetricRecorder, TraceLog, TraceEvent
from repro.sim.faults import FaultInjector, FaultKind, FaultEvent

__all__ = [
    "AllOf",
    "AnyOf",
    "Engine",
    "Event",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FlowNetwork",
    "Interrupt",
    "Link",
    "MetricRecorder",
    "Process",
    "ProcessKilled",
    "RandomStreams",
    "Resource",
    "Store",
    "Timeout",
    "TraceEvent",
    "TraceLog",
]
