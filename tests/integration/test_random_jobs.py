"""Whole-runtime property tests: random jobs, global invariants.

Hypothesis generates arbitrary well-formed jobs (random DAG shapes,
work specifications, and property cards); every one must execute on the
pooled rack with the paper's guarantees intact:

* the job completes and every task ran exactly once,
* dataflow order is respected on every edge,
* no region leaks, every device drains to zero bytes,
* every allocator's internal invariants hold afterwards,
* handovers are exclusively zero-copy or accounted copies.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow import Job, RegionUsage, Task, TaskProperties, WorkSpec
from repro.hardware import Cluster
from repro.hardware.spec import ComputeKind, OpClass
from repro.memory.interfaces import AccessPattern
from repro.memory.properties import LatencyClass
from repro.runtime import RuntimeSystem

KiB = 1024
MiB = 1024 * KiB


@st.composite
def random_workspec(draw, has_upstream: bool):
    op_class = draw(st.sampled_from([OpClass.SCALAR, OpClass.VECTOR,
                                     OpClass.MATMUL]))
    pattern = draw(st.sampled_from(list(AccessPattern)))
    spec = WorkSpec(
        op_class=op_class,
        ops=draw(st.floats(0.0, 1e6)),
        input_usage=(
            RegionUsage(0, touches=draw(st.floats(0.1, 2.0)), pattern=pattern)
            if has_upstream and draw(st.booleans()) else None
        ),
        output=(
            RegionUsage(draw(st.integers(1 * KiB, 4 * MiB)), pattern=pattern)
            if draw(st.booleans()) else None
        ),
        scratch=(
            RegionUsage(draw(st.integers(1 * KiB, 2 * MiB)),
                        touches=draw(st.floats(0.1, 3.0)), pattern=pattern)
            if draw(st.booleans()) else None
        ),
        state_usage=(
            RegionUsage(draw(st.integers(64, 4 * KiB)),
                        pattern=AccessPattern.RANDOM)
            if draw(st.booleans()) else None
        ),
    )
    return spec


@st.composite
def random_job(draw):
    n_tasks = draw(st.integers(1, 8))
    edges = []
    for j in range(1, n_tasks):
        for i in range(j):
            if draw(st.booleans()):
                edges.append((i, j))
    has_upstream = {j for _i, j in edges}

    job = Job("random-job", global_state_size=64 * KiB)
    for index in range(n_tasks):
        properties = TaskProperties(
            compute=draw(st.sampled_from(
                [None, ComputeKind.CPU, ComputeKind.GPU])),
            confidential=draw(st.booleans()),
            mem_latency=draw(st.sampled_from(
                [None, LatencyClass.LOW, LatencyClass.MEDIUM])),
        )
        work = draw(random_workspec(index in has_upstream))
        if properties.compute is ComputeKind.GPU and work.op_class is OpClass.SCALAR:
            # GPUs are terrible but capable at scalar; keep it feasible.
            pass
        job.add_task(Task(f"t{index}", work=work, properties=properties))
    for i, j in edges:
        job.connect(f"t{i}", f"t{j}")
    job.validate()
    return job


class TestRandomJobs:
    @settings(max_examples=60, deadline=None)
    @given(job=random_job(), seed=st.integers(0, 100))
    def test_runtime_invariants_hold(self, job, seed):
        cluster = Cluster.preset("pooled-rack", seed=seed)
        rts = RuntimeSystem(cluster)
        stats = rts.run_job(job)

        # 1. Completion: every task ran exactly once, successfully.
        assert stats.ok
        assert set(stats.tasks) == set(job.tasks)
        for task_stats in stats.tasks.values():
            assert task_stats.finished_at >= task_stats.started_at >= 0

        # 2. Dataflow order respected on every edge.
        for up, down in job.edges():
            assert (stats.tasks[up.name].finished_at
                    <= stats.tasks[down.name].started_at + 1e-6)

        # 3. No leaks anywhere.
        assert rts.memory.live_regions() == []
        for device in cluster.memory.values():
            assert device.used == 0, device.name
        for allocator in rts.memory.allocators.values():
            allocator.check_invariants()
            assert allocator.allocated_bytes == 0

        # 4. Handover accounting is consistent.
        edges_with_data = sum(
            len(t.downstream()) for t in job.tasks.values()
            if t.work.output is not None
        )
        assert (stats.zero_copy_handover + stats.copy_handover
                <= edges_with_data)

        # 5. Compute-kind property cards were honored.
        for name, task in job.tasks.items():
            if task.properties.compute is not None:
                device = cluster.compute[stats.assignment[name]]
                assert device.kind is task.properties.compute

    @settings(max_examples=20, deadline=None)
    @given(job=random_job(), seed=st.integers(0, 20))
    def test_execution_is_deterministic(self, job, seed):
        """Same job, same seed -> identical simulated schedule."""

        def run_once():
            import copy

            cluster = Cluster.preset("pooled-rack", seed=seed)
            rts = RuntimeSystem(cluster)
            job_copy = Job(job.name, global_state_size=job.global_state_size)
            for t in job.topological_order():
                job_copy.add_task(Task(t.name, work=t.work,
                                       properties=t.properties))
            for u, v in job.graph.edges:
                job_copy.connect(u, v)
            stats = rts.run_job(job_copy)
            return [
                (name, s.device, s.started_at, s.finished_at)
                for name, s in sorted(stats.tasks.items())
            ]

        assert run_once() == run_once()
