"""Chaos property tests: random fault schedules against the runtime.

Hypothesis draws crash/restart schedules and job shapes; the resilient
runtime must always terminate in one of two sanctioned ways — success
or an explicit ``JobAbandoned`` — and in both cases the cluster must
drain completely (no leaked regions, no phantom device bytes, intact
allocator invariants).  Silent hangs, silent corruption, and silent
partial states are all failures.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow import Job, RegionUsage, Task, WorkSpec
from repro.ft import OutputBackupStore
from repro.hardware import Cluster
from repro.runtime import (
    HealthMonitor,
    JobAbandoned,
    RecoveryPolicy,
    ResilientRuntime,
    RuntimeSystem,
)
from repro.sim.faults import FaultKind

KiB = 1024
MiB = 1024 * KiB

#: Failure domains of the pooled rack worth crashing in tests (crashing
#: compute blades kills the schedulers' candidates; memory domains are
#: the interesting chaos).
CRASHABLE = ["mem-shelf", "memnode0", "stornode0"]


@st.composite
def chaos_schedule(draw):
    n_events = draw(st.integers(1, 4))
    events = []
    for _ in range(n_events):
        crash_at = draw(st.floats(1_000.0, 2_000_000.0))
        restart_after = draw(st.floats(50_000.0, 1_000_000.0))
        node = draw(st.sampled_from(CRASHABLE))
        events.append((crash_at, restart_after, node))
    return events


@st.composite
def chaos_job_shape(draw):
    n_stages = draw(st.integers(2, 4))
    payload = draw(st.sampled_from([1 * MiB, 8 * MiB, 64 * MiB]))
    touches = draw(st.floats(0.5, 2.0))
    return n_stages, payload, touches


def build_job(shape, attempt_tag):
    n_stages, payload, touches = shape
    job = Job(f"chaos-{attempt_tag}")
    previous = None
    for i in range(n_stages):
        task = job.add_task(Task(f"s{i}", work=WorkSpec(
            ops=1e5,
            input_usage=RegionUsage(0, touches=touches) if previous else None,
            output=RegionUsage(payload) if i < n_stages - 1 else None,
            scratch=RegionUsage(2 * MiB) if i % 2 else None,
        )))
        if previous is not None:
            job.connect(previous, task)
        previous = task
    return job


class TestChaos:
    @settings(max_examples=40, deadline=None)
    @given(schedule=chaos_schedule(), shape=chaos_job_shape(),
           seed=st.integers(0, 50))
    def test_crashes_never_leave_partial_state(self, schedule, shape, seed):
        cluster = Cluster.preset("pooled-rack", seed=seed)
        rts = RuntimeSystem(cluster)
        resilient = ResilientRuntime(rts, max_attempts=4)

        for crash_at, restart_after, node in schedule:
            cluster.faults.inject_at(crash_at, FaultKind.NODE_CRASH, node)
            cluster.faults.inject_at(
                crash_at + restart_after, FaultKind.NODE_RESTART, node)

        counter = [0]

        def factory():
            counter[0] += 1
            rts.costmodel.invalidate()  # device liveness may have changed
            return build_job(shape, counter[0])

        outcome = None
        try:
            stats = resilient.run_job(factory)
            outcome = "ok"
            assert stats.ok
        except JobAbandoned:
            outcome = "abandoned"
        assert outcome in ("ok", "abandoned")

        # Drain everything that is still scheduled (restarts, repairs).
        cluster.engine.run()
        # Regardless of outcome: nothing leaked.
        assert rts.memory.live_regions() == []
        for allocator in rts.memory.allocators.values():
            allocator.check_invariants()
        for device in cluster.memory.values():
            if not device.failed:
                assert device.used == 0, device.name

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_crash_free_chaos_schedule_is_control(self, seed):
        """Without faults the same machinery always succeeds first try."""
        cluster = Cluster.preset("pooled-rack", seed=seed)
        rts = RuntimeSystem(cluster)
        resilient = ResilientRuntime(rts, max_attempts=2)
        stats = resilient.run_job(lambda: build_job((3, 8 * MiB, 1.0), "c"))
        assert stats.ok
        assert resilient.stats.failures == 0


class TestChaosWithRecovery:
    """The same sanctioned outcomes and no-leak invariants, but against
    the FULL recovery stack — health monitor, task-level retries with
    re-placement, output backups — and a nastier fault mix that adds
    fabric link flaps and cluster-wide power outages."""

    @settings(max_examples=25, deadline=None)
    @given(schedule=chaos_schedule(), shape=chaos_job_shape(),
           seed=st.integers(0, 50),
           link_flap=st.one_of(st.none(), st.floats(1_000.0, 1_000_000.0)),
           outage_at=st.one_of(st.none(), st.floats(10_000.0, 2_000_000.0)))
    def test_recovery_stack_never_leaves_partial_state(
        self, schedule, shape, seed, link_flap, outage_at
    ):
        cluster = Cluster.preset("pooled-rack", seed=seed)
        HealthMonitor(cluster, detection_delay_ns=5_000.0)
        rts = RuntimeSystem(cluster, recovery=RecoveryPolicy(
            backoff_base_ns=1_000.0, max_task_attempts=3,
        ))
        rts.backups = OutputBackupStore(cluster, rts.memory)
        resilient = ResilientRuntime(rts, max_attempts=4)

        for crash_at, restart_after, node in schedule:
            cluster.faults.inject_at(crash_at, FaultKind.NODE_CRASH, node)
            cluster.faults.inject_at(
                crash_at + restart_after, FaultKind.NODE_RESTART, node)
        if link_flap is not None:
            cluster.faults.inject_at(
                link_flap, FaultKind.LINK_DOWN, "far0--tor")
            cluster.faults.inject_at(
                link_flap + 300_000.0, FaultKind.LINK_UP, "far0--tor")
        if outage_at is not None:
            cluster.faults.inject_at(
                outage_at, FaultKind.POWER_OUTAGE, "rack")

        counter = [0]

        def factory():
            counter[0] += 1
            return build_job(shape, counter[0])

        outcome = None
        try:
            stats = resilient.run_job(factory)
            outcome = "ok"
            assert stats.ok
        except JobAbandoned:
            outcome = "abandoned"
        assert outcome in ("ok", "abandoned")

        cluster.engine.run()
        assert rts.memory.live_regions() == []
        for allocator in rts.memory.allocators.values():
            allocator.check_invariants()
        for device in cluster.memory.values():
            if not device.failed:
                assert device.used == 0, device.name
        # Quiescent means *fully* quiescent: every task attempt ended,
        # so the monitor's watch table must not retain dead entries
        # (empty per-device sets used to leak here forever).
        assert cluster.health_monitor._watched == {}

    def test_power_outage_wipes_volatile_state_but_job_recovers(self):
        """A cluster-wide POWER_OUTAGE mid-run loses every volatile
        region; the resilient layer re-executes and still succeeds."""
        shape = (3, 8 * MiB, 2.0)  # touches=2.0: reads span two passes
        cluster = Cluster.preset("pooled-rack", seed=3)
        engine = cluster.engine
        rts = RuntimeSystem(cluster)
        resilient = ResilientRuntime(rts, max_attempts=3)

        fired = []

        def saboteur():
            # Cut power exactly once, while s1 is mid-read of its input:
            # the second read pass then finds the region LOST.
            while not (rts.executions
                       and rts.executions[0]._inboxes["s1"]):
                yield engine.timeout(1_000.0)
            yield engine.timeout(1_000.0)
            cluster.faults.inject_now(FaultKind.POWER_OUTAGE, "rack")
            fired.append(engine.now)

        engine.process(saboteur(), name="saboteur")
        counter = [0]

        def factory():
            counter[0] += 1
            return build_job(shape, counter[0])

        stats = resilient.run_job(factory)
        assert stats.ok
        assert fired  # the outage really happened mid-run
        assert rts.memory.lost_regions > 0
        assert resilient.stats.failures >= 1
        cluster.engine.run()
        assert rts.memory.live_regions() == []
        for device in cluster.memory.values():
            assert device.used == 0, device.name
