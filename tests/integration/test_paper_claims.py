"""The paper as an executable specification.

Each test quotes one sentence of Anneser et al. (HotOS '23) and checks
that this implementation makes it true.  The goal is traceability: a
reviewer can read the paper and this file side by side.
"""

import pytest

from repro.dataflow import Job, RegionUsage, Task, TaskProperties, WorkSpec
from repro.hardware import Cluster
from repro.hardware.spec import ComputeKind, MemoryKind, OpClass
from repro.memory.interfaces import AccessMode, Accessor, InterfaceError
from repro.memory.manager import MemoryManager
from repro.memory.ownership import UseAfterTransferError
from repro.memory.properties import LatencyClass, MemoryProperties
from repro.memory.regions import RegionType, region_properties
from repro.runtime import (
    CostModel,
    DeclarativePlacement,
    PlacementRequest,
    RuntimeSystem,
)

KiB = 1024
MiB = 1024 * KiB


def run(cluster, gen):
    def driver():
        result = yield from gen
        return result

    return cluster.engine.run(until=cluster.engine.process(driver()))


class TestSection21:
    def test_jobs_consist_of_tasks_forming_a_dag(self):
        """'applications launch jobs that consist of tasks ... Connected
        tasks form a directed acyclic graph.' (§2.1)"""
        from repro.dataflow import ValidationError

        job = Job("dag")
        for n in ("a", "b", "c"):
            job.add_task(Task(n))
        job.connect("a", "b")
        job.connect("b", "c")
        job.validate()  # a DAG: fine
        job.connect("c", "a")
        with pytest.raises(ValidationError):
            job.validate()  # a cycle: rejected

    def test_properties_attached_to_tasks(self):
        """'a programming model should enable developers to attach common
        properties to their dataflow applications' (§2.1)"""
        card = TaskProperties(compute=ComputeKind.GPU, confidential=True,
                              persistent=False, mem_latency=LatencyClass.LOW)
        assert card.describe() == (
            "compute=gpu confidential=true persistent=false mem_latency=low"
        )

    def test_memory_requested_by_properties_not_devices(self):
        """'the physical memory devices should be made transparent to
        applications that instead request memory based on the required
        properties' (§2.1)"""
        cluster = Cluster.preset("pooled-rack")
        policy = DeclarativePlacement(
            cluster, MemoryManager(cluster), CostModel(cluster))
        request = PlacementRequest(
            size=1 * MiB,
            properties=MemoryProperties(latency=LatencyClass.LOW, sync=True),
            owner="t", observers=("cpu1",),
        )
        region = policy.place(request)  # no device name anywhere above
        assert region.device.name  # ...but a concrete one was chosen


class TestSection22:
    def test_regions_identified_by_properties_not_location(self):
        """'Memory Regions are thus declared and identified by their
        properties, not by their location' (§2.2(1)) — the identical
        declaration lands on different devices for different tasks."""
        cluster = Cluster.preset("pooled-rack")
        policy = DeclarativePlacement(
            cluster, MemoryManager(cluster), CostModel(cluster))
        spec = region_properties(RegionType.PRIVATE_SCRATCH)

        def place_for(observer):
            return policy.place(PlacementRequest(
                size=1 * MiB, properties=spec, owner=observer,
                observers=(observer,),
                region_type=RegionType.PRIVATE_SCRATCH,
            ))

        assert place_for("cpu1").device.kind is MemoryKind.DRAM
        assert place_for("gpu1").device.kind is MemoryKind.GDDR

    def test_exclusive_or_shared_ownership(self):
        """'Each chunk of allocated memory is either exclusively owned by
        a task ... or it shares the ownership with other tasks' (§2.2(2))"""
        from repro.memory.ownership import OwnershipMode, OwnershipRecord

        record = OwnershipRecord("t1")
        assert record.mode is OwnershipMode.EXCLUSIVE
        record.share("t1", ["t2"])
        assert record.mode is OwnershipMode.SHARED

    def test_ownership_transfer_like_move_semantics(self):
        """'a reference to the memory chunk can be passed to the next
        task ... similar to C++'s move semantics' (§2.2(2)) — the old
        handle is dead after the move."""
        cluster = Cluster.preset("table1-host")
        manager = MemoryManager(cluster)
        region = manager.allocate_on("dram0", KiB, MemoryProperties(), owner="t1")
        old_handle = region.handle("t1")
        manager.transfer_ownership(region, "t1", "t2")
        with pytest.raises(UseAfterTransferError):
            old_handle.validate()
        region.handle("t2").validate()  # the new owner's handle works

    def test_far_memory_requires_async_interface(self):
        """'If memory is far away, we should switch to an asynchronous
        interface that fetches memory in the background.' (§2.2(3))"""
        cluster = Cluster.preset("table1-host")
        manager = MemoryManager(cluster)
        far = manager.allocate_on("far0", 4 * KiB, MemoryProperties(), owner="t")
        accessor = Accessor(cluster, far.handle("t"), "cpu0")
        assert accessor.default_mode() is AccessMode.ASYNC
        with pytest.raises(InterfaceError):
            run(cluster, accessor.read(mode=AccessMode.SYNC))


class TestSection23:
    def test_rts_four_duties(self):
        """The RTS '(1) determin[es] ... which physical memory device best
        fits each task's declared requirements, (2) allocat[es] the
        Memory Regions ..., (3) de-allocat[es] ... after the last owning
        task finishes, (4) and resource-aware task scheduling.' (§2.3)"""
        cluster = Cluster.preset("pooled-rack", trace_categories={"memory"})
        rts = RuntimeSystem(cluster)
        job = Job("duties", global_state_size=64 * KiB)
        a = job.add_task(Task("a", work=WorkSpec(
            ops=1e5, output=RegionUsage(4 * MiB),
            scratch=RegionUsage(1 * MiB))))
        b = job.add_task(Task("b", work=WorkSpec(
            op_class=OpClass.MATMUL, ops=1e6, input_usage=RegionUsage(0))))
        job.connect(a, b)
        stats = rts.run_job(job)
        # (1)+(2): regions were matched and allocated.
        assert stats.regions_allocated >= 3
        # (3): all freed after the last owner finished.
        assert rts.memory.live_regions() == []
        # (4): the matmul-heavy task went to an accelerator.
        assert cluster.compute[stats.assignment["b"]].kind in (
            ComputeKind.GPU, ComputeKind.TPU)

    def test_handover_is_ownership_transfer_when_addressable(self):
        """'the output memory of the preceding task can directly become
        the input memory of the next task if it is addressable by the
        compute devices of both tasks' (§2.3)"""
        rts = RuntimeSystem(Cluster.preset("pooled-rack"))
        job = Job("move")
        a = job.add_task(Task("a", work=WorkSpec(
            ops=1e4, output=RegionUsage(8 * MiB))))
        b = job.add_task(Task("b", work=WorkSpec(
            ops=1e4, input_usage=RegionUsage(0))))
        job.connect(a, b)
        stats = rts.run_job(job)
        assert stats.zero_copy_handover == 1
        assert stats.bytes_copied == 0

    def test_global_scratch_passes_data_between_unconnected_tasks(self):
        """'Global Scratch can pass data between tasks that are not
        connected ... (such as a bloom filter)' (§2.3)"""
        rts = RuntimeSystem(Cluster.preset("pooled-rack"))
        job = Job("bloom")
        job.add_task(Task("builder", work=WorkSpec(
            ops=1e4, scratch_puts={"bloom": RegionUsage(64 * KiB)})))
        job.add_task(Task("prober", work=WorkSpec(
            ops=1e4, scratch_gets=("bloom",))))
        assert rts.run_job(job).ok  # no edge between the two tasks


class TestSection3:
    def test_failures_would_lose_data_without_ft(self):
        """'If not handled properly, failures may lead to data loss'
        (§3 ch. 8) — and the FT layer prevents exactly that."""
        import numpy as np

        from repro.ft import ErasureCodedStore
        from repro.memory.region import RegionState

        cluster = Cluster.preset("far-memory-rack", n_nodes=8)
        manager = MemoryManager(cluster)
        unprotected = manager.allocate_on(
            "far0", 64 * KiB, MemoryProperties(), owner="raw")
        store = ErasureCodedStore(
            cluster, manager, [f"far{i}" for i in range(8)],
            home="dram0", k=4, m=2, shard_size=16 * KiB)
        data = np.arange(64 * KiB, dtype=np.uint64).astype(np.uint8)
        run(cluster, store.put("protected", data))

        cluster.crash_node("memnode0")
        store.note_device_failures()
        assert unprotected.state is RegionState.LOST  # the paper's fear
        recovered = run(cluster, store.get("protected"))
        assert np.array_equal(recovered, data)  # the paper's remedy
