"""Tests for GF(256) arithmetic and the Reed–Solomon codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ft.gf256 import GF256
from repro.ft.erasure import DecodeError, ReedSolomon


class TestGF256:
    def test_add_is_xor(self):
        assert GF256.add(0x53, 0xCA) == 0x53 ^ 0xCA

    def test_multiply_known_values(self):
        # 0x53 * 0xCA = 0x01 under poly 0x11b is the AES example; our
        # field uses 0x11d, so verify against a slow reference instead.
        def slow_mul(a, b):
            result = 0
            while b:
                if b & 1:
                    result ^= a
                a <<= 1
                if a & 0x100:
                    a ^= 0x11D
                b >>= 1
            return result

        for a in (1, 2, 3, 0x53, 0xFF):
            for b in (1, 2, 0x47, 0x80, 0xFF):
                assert GF256.multiply(a, b) == slow_mul(a, b)

    def test_multiply_by_zero_and_one(self):
        vec = np.arange(256, dtype=np.uint8)
        assert np.all(GF256.multiply(0, vec) == 0)
        assert np.all(GF256.multiply(1, vec) == vec)

    def test_inverse_roundtrip(self):
        for a in range(1, 256):
            assert GF256.multiply(a, GF256.inverse(a)) == 1

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            GF256.inverse(0)

    def test_power(self):
        assert GF256.power(2, 0) == 1
        assert GF256.power(2, 1) == 2
        assert GF256.power(2, 8) == 0x1D  # x^8 = x^4+x^3+x^2+1 mod poly
        assert GF256.power(0, 5) == 0

    def test_matrix_inverse_roundtrip(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            n = int(rng.integers(1, 6))
            while True:
                m = rng.integers(0, 256, size=(n, n)).astype(np.uint8)
                try:
                    inv = GF256.mat_invert(m)
                    break
                except np.linalg.LinAlgError:
                    continue
            identity = GF256.mat_mul(m, inv)
            assert np.array_equal(identity, np.eye(n, dtype=np.uint8))

    def test_singular_matrix_raises(self):
        singular = np.array([[1, 2], [1, 2]], dtype=np.uint8)
        with pytest.raises(np.linalg.LinAlgError):
            GF256.mat_invert(singular)


class TestReedSolomon:
    def test_systematic_matrix_top_is_identity(self):
        rs = ReedSolomon(4, 2)
        assert np.array_equal(rs.matrix[:4, :], np.eye(4, dtype=np.uint8))

    def test_encode_shapes(self):
        rs = ReedSolomon(4, 2)
        data = np.zeros((4, 128), dtype=np.uint8)
        assert rs.encode(data).shape == (2, 128)

    def test_decode_with_no_erasures_is_identity(self):
        rs = ReedSolomon(3, 2)
        data = np.random.default_rng(1).integers(0, 256, (3, 64)).astype(np.uint8)
        shards = {i: data[i] for i in range(3)}
        assert np.array_equal(rs.decode(shards, 64), data)

    def test_decode_after_data_shard_loss(self):
        rs = ReedSolomon(4, 2)
        rng = np.random.default_rng(2)
        data = rng.integers(0, 256, (4, 256)).astype(np.uint8)
        parity = rs.encode(data)
        shards = {i: data[i] for i in range(4)}
        shards.update({4 + j: parity[j] for j in range(2)})
        # Lose two data shards (the maximum).
        del shards[0], shards[2]
        assert np.array_equal(rs.decode(shards, 256), data)

    def test_too_many_erasures_raises(self):
        rs = ReedSolomon(4, 2)
        data = np.zeros((4, 16), dtype=np.uint8)
        shards = {0: data[0], 1: data[1], 2: data[2]}  # only 3 of 4 needed
        with pytest.raises(DecodeError):
            rs.decode(shards, 16)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ReedSolomon(0, 2)
        with pytest.raises(ValueError):
            ReedSolomon(200, 100)

    def test_storage_overhead(self):
        assert ReedSolomon(4, 2).storage_overhead == pytest.approx(1.5)
        assert ReedSolomon(8, 2).storage_overhead == pytest.approx(1.25)

    @settings(max_examples=50, deadline=None)
    @given(
        k=st.integers(2, 8),
        m=st.integers(1, 4),
        shard_len=st.integers(1, 128),
        seed=st.integers(0, 2**31),
        data=st.data(),
    )
    def test_roundtrip_under_arbitrary_erasures(self, k, m, shard_len, seed, data):
        """Property: any <= m erasures are recoverable byte-exactly."""
        rs = ReedSolomon(k, m)
        rng = np.random.default_rng(seed)
        payload = rng.integers(0, 256, (k, shard_len)).astype(np.uint8)
        parity = rs.encode(payload)
        shards = {i: payload[i] for i in range(k)}
        shards.update({k + j: parity[j] for j in range(m)})

        n_erase = data.draw(st.integers(0, m))
        erased = data.draw(
            st.lists(st.integers(0, k + m - 1), min_size=n_erase,
                     max_size=n_erase, unique=True)
        )
        for index in erased:
            del shards[index]
        recovered = rs.decode(shards, shard_len)
        assert np.array_equal(recovered, payload)

    def test_parity_actually_depends_on_all_data(self):
        rs = ReedSolomon(4, 2)
        data = np.zeros((4, 8), dtype=np.uint8)
        base = rs.encode(data)
        for i in range(4):
            mutated = data.copy()
            mutated[i, 3] = 0xAB
            assert not np.array_equal(rs.encode(mutated), base)
