"""Tests for incremental region checkpointing."""

import pytest

from repro.ft.checkpoint import CheckpointError, CheckpointService
from repro.hardware import Cluster
from repro.memory.interfaces import Accessor
from repro.memory.manager import MemoryManager
from repro.memory.properties import MemoryProperties

KiB = 1024
MiB = 1024 * KiB


@pytest.fixture
def env():
    cluster = Cluster.preset("table1-host")
    mm = MemoryManager(cluster)
    service = CheckpointService(cluster, mm, store_device="pmem0",
                                interval_ns=100_000.0)
    return cluster, mm, service


def run(cluster, gen):
    def driver():
        result = yield from gen
        return result

    return cluster.engine.run(until=cluster.engine.process(driver()))


def dirty(cluster, region, nbytes):
    owner = next(iter(region.ownership.owners))
    accessor = Accessor(cluster, region.handle(owner), "cpu0")
    run(cluster, accessor.write(nbytes))


class TestCheckpointService:
    def test_store_must_be_persistent(self):
        cluster = Cluster.preset("table1-host")
        mm = MemoryManager(cluster)
        with pytest.raises(CheckpointError):
            CheckpointService(cluster, mm, store_device="dram0")
        with pytest.raises(CheckpointError):
            CheckpointService(cluster, mm, store_device="ghost")
        with pytest.raises(ValueError):
            CheckpointService(cluster, mm, store_device="pmem0",
                              interval_ns=0.0)

    def test_register_reserves_durable_space(self, env):
        cluster, mm, service = env
        region = mm.allocate_on("dram0", 1 * MiB, MemoryProperties(), owner="t")
        service.register(region)
        assert cluster.memory["pmem0"].used >= 1 * MiB

    def test_first_snapshot_ships_whole_region(self, env):
        cluster, mm, service = env
        region = mm.allocate_on("dram0", 1 * MiB, MemoryProperties(), owner="t")
        service.register(region)
        shipped = run(cluster, service.snapshot_once(region))
        assert shipped == 1 * MiB
        assert service.snapshots_taken == 1

    def test_clean_region_skipped(self, env):
        cluster, mm, service = env
        region = mm.allocate_on("dram0", 1 * MiB, MemoryProperties(), owner="t")
        service.register(region)
        run(cluster, service.snapshot_once(region))
        shipped = run(cluster, service.snapshot_once(region))
        assert shipped == 0.0
        assert service.snapshots_skipped_clean == 1

    def test_incremental_snapshot_ships_only_delta(self, env):
        cluster, mm, service = env
        region = mm.allocate_on("dram0", 1 * MiB, MemoryProperties(), owner="t")
        service.register(region)
        run(cluster, service.snapshot_once(region))
        dirty(cluster, region, 64 * KiB)
        shipped = run(cluster, service.snapshot_once(region))
        assert shipped == pytest.approx(64 * KiB)

    def test_delta_capped_at_region_size(self, env):
        cluster, mm, service = env
        region = mm.allocate_on("dram0", 64 * KiB, MemoryProperties(), owner="t")
        service.register(region)
        run(cluster, service.snapshot_once(region))
        for _pass in range(4):
            dirty(cluster, region, 64 * KiB)  # 4x overwrite
        shipped = run(cluster, service.snapshot_once(region))
        assert shipped == pytest.approx(64 * KiB)

    def test_background_loop_tracks_dirtiness(self, env):
        cluster, mm, service = env
        region = mm.allocate_on("dram0", 256 * KiB, MemoryProperties(), owner="t")
        service.register(region)
        cluster.engine.process(service.run())

        def workload():
            for _round in range(4):
                owner = next(iter(region.ownership.owners))
                accessor = Accessor(cluster, region.handle(owner), "cpu0")
                yield from accessor.write(32 * KiB)
                yield cluster.engine.timeout(150_000.0)

        cluster.engine.run(until=cluster.engine.process(workload()))
        cluster.engine.run(until=cluster.engine.now + 200_000.0)
        service.stop()
        cluster.engine.run()
        assert service.snapshots_taken >= 3
        assert service.bytes_persisted >= 256 * KiB  # full + deltas

    def test_restore_after_loss(self, env):
        cluster, mm, service = env
        region = mm.allocate_on("dram0", 512 * KiB, MemoryProperties(), owner="t")
        service.register(region)
        run(cluster, service.snapshot_once(region))

        from repro.sim.faults import FaultKind

        cluster.faults.inject_now(FaultKind.MEMORY_CORRUPTION, region.name)
        assert not region.alive

        restored = run(cluster, service.restore(region.id, "dram0", "t2"))
        assert restored.alive
        assert restored.size == 512 * KiB
        assert restored.ownership.is_owner("t2")
        # The replacement is protected under the same snapshot slot.
        assert service.has_snapshot(restored.id)

    def test_restore_without_snapshot_fails(self, env):
        cluster, mm, service = env
        region = mm.allocate_on("dram0", KiB, MemoryProperties(), owner="t")
        service.register(region)  # registered but never snapshotted
        with pytest.raises(CheckpointError):
            run(cluster, service.restore(region.id, "dram0", "t2"))

    def test_unregister_frees_store_space(self, env):
        cluster, mm, service = env
        region = mm.allocate_on("dram0", 1 * MiB, MemoryProperties(), owner="t")
        service.register(region)
        before = cluster.memory["pmem0"].used
        service.unregister(region)
        assert cluster.memory["pmem0"].used < before
