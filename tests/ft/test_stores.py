"""Integration tests for the fault-tolerant stores + recovery orchestration."""

import numpy as np
import pytest

from repro.ft.erasure import DataLoss as ECDataLoss
from repro.ft.erasure import ErasureCodedStore
from repro.ft.recovery import RecoveryOrchestrator
from repro.ft.replication import DataLoss as ReplDataLoss
from repro.ft.replication import ReplicatedStore
from repro.ft.striping import StripedStore
from repro.hardware import Cluster
from repro.memory.manager import MemoryManager

KiB = 1024


@pytest.fixture
def env():
    cluster = Cluster.preset("far-memory-rack", n_nodes=8)
    return cluster, MemoryManager(cluster)


def run(cluster, gen):
    def driver():
        result = yield from gen
        return result

    return cluster.engine.run(until=cluster.engine.process(driver()))


def payload(n, seed=0):
    return np.random.default_rng(seed).integers(0, 256, n).astype(np.uint8)


FARS = [f"far{i}" for i in range(8)]


class TestErasureCodedStore:
    def make(self, cluster, mm, **kw):
        kw.setdefault("k", 4)
        kw.setdefault("m", 2)
        kw.setdefault("shard_size", 4 * KiB)
        return ErasureCodedStore(cluster, mm, FARS, home="dram0", **kw)

    def test_put_get_roundtrip(self, env):
        cluster, mm = env
        store = self.make(cluster, mm)
        data = payload(10 * KiB)
        run(cluster, store.put("obj", data))
        got = run(cluster, store.get("obj"))
        assert np.array_equal(got, data)
        assert cluster.engine.now > 0

    def test_shards_on_distinct_failure_domains(self, env):
        cluster, mm = env
        store = self.make(cluster, mm)
        span = run(cluster, store.put("obj", payload(KiB)))
        domains = {cluster.node_of(d) for d in span.devices}
        assert len(domains) == 6  # k + m

    def test_degraded_read_after_crash(self, env):
        cluster, mm = env
        store = self.make(cluster, mm)
        data = payload(12 * KiB, seed=3)
        span = run(cluster, store.put("obj", data))
        cluster.crash_node(cluster.node_of(span.devices[0]))
        store.note_device_failures()
        assert span.lost_shards == [0]
        got = run(cluster, store.get("obj"))
        assert np.array_equal(got, data)

    def test_recover_rebuilds_on_new_domains(self, env):
        cluster, mm = env
        store = self.make(cluster, mm)
        data = payload(8 * KiB, seed=4)
        span = run(cluster, store.put("obj", data))
        victim = cluster.node_of(span.devices[1])
        cluster.crash_node(victim)
        store.note_device_failures()
        rebuilt = run(cluster, store.recover())
        assert rebuilt == 1
        assert span.lost_shards == []
        assert victim not in {cluster.node_of(d) for d in span.devices}
        assert np.array_equal(run(cluster, store.get("obj")), data)
        assert store.repair_bytes > 0

    def test_two_crashes_still_recoverable_with_m2(self, env):
        cluster, mm = env
        store = self.make(cluster, mm)
        data = payload(8 * KiB, seed=5)
        span = run(cluster, store.put("obj", data))
        for d in span.devices[:2]:
            cluster.crash_node(cluster.node_of(d))
        store.note_device_failures()
        run(cluster, store.recover())
        assert np.array_equal(run(cluster, store.get("obj")), data)

    def test_three_crashes_exceed_m_and_lose_data(self, env):
        cluster, mm = env
        store = self.make(cluster, mm)
        span = run(cluster, store.put("obj", payload(8 * KiB)))
        for d in span.devices[:3]:
            cluster.crash_node(cluster.node_of(d))
        store.note_device_failures()
        with pytest.raises(ECDataLoss):
            run(cluster, store.get("obj"))

    def test_memory_overhead_near_codec_rate(self, env):
        cluster, mm = env
        store = self.make(cluster, mm)
        # Fill one span exactly: k * shard_size bytes of live data.
        run(cluster, store.put("obj", payload(16 * KiB, seed=6)))
        assert store.memory_overhead() == pytest.approx(1.5)

    def test_delete_and_compaction_reclaim_space(self, env):
        """Carbink-style compaction: live remnants of two mostly-dead
        spans get repacked into one fresh span."""
        cluster, mm = env
        store = self.make(cluster, mm)
        for i in range(8):  # two full spans (4 x 4 KiB each)
            run(cluster, store.put(f"o{i}", payload(4 * KiB, seed=i)))
        assert len(store.spans) == 2
        physical_before = store.physical_bytes()
        for i in (1, 2, 3, 5, 6, 7):  # keep one live object per span
            store.delete(f"o{i}")
        moved = run(cluster, store.compact(dead_threshold=0.5))
        assert moved == 2
        assert store.compactions == 2
        assert len(store.spans) == 1
        assert store.physical_bytes() < physical_before
        for i in (0, 4):
            data = run(cluster, store.get(f"o{i}"))
            assert np.array_equal(data, payload(4 * KiB, seed=i))

    def test_multiple_objects_pack_into_one_span(self, env):
        cluster, mm = env
        store = self.make(cluster, mm)
        for i in range(4):
            run(cluster, store.put(f"o{i}", payload(2 * KiB, seed=i)))
        assert len(store.spans) == 1
        for i in range(4):
            assert np.array_equal(
                run(cluster, store.get(f"o{i}")), payload(2 * KiB, seed=i)
            )

    def test_oversized_object_rejected(self, env):
        cluster, mm = env
        store = self.make(cluster, mm)
        with pytest.raises(ValueError):
            run(cluster, store.put("big", payload(64 * KiB)))

    def test_duplicate_name_rejected(self, env):
        cluster, mm = env
        store = self.make(cluster, mm)
        run(cluster, store.put("x", payload(KiB)))
        with pytest.raises(KeyError):
            run(cluster, store.put("x", payload(KiB)))

    def test_too_few_failure_domains_rejected(self, env):
        cluster, mm = env
        with pytest.raises(ValueError):
            ErasureCodedStore(cluster, mm, FARS[:3], home="dram0", k=4, m=2)


class TestReplicatedStore:
    def make(self, cluster, mm, copies=2):
        return ReplicatedStore(cluster, mm, FARS, home="dram0", copies=copies)

    def test_put_get_roundtrip(self, env):
        cluster, mm = env
        store = self.make(cluster, mm)
        data = payload(8 * KiB, seed=9)
        run(cluster, store.put("obj", data))
        assert np.array_equal(run(cluster, store.get("obj")), data)

    def test_replicas_on_distinct_domains(self, env):
        cluster, mm = env
        store = self.make(cluster, mm, copies=3)
        rs = run(cluster, store.put("obj", payload(KiB)))
        assert len({cluster.node_of(d) for d in rs.replicas}) == 3

    def test_overhead_equals_copies(self, env):
        cluster, mm = env
        store = self.make(cluster, mm, copies=3)
        run(cluster, store.put("obj", payload(8 * KiB)))
        assert store.memory_overhead() == pytest.approx(3.0)

    def test_crash_then_recover_restores_replication(self, env):
        cluster, mm = env
        store = self.make(cluster, mm)
        data = payload(8 * KiB, seed=11)
        rs = run(cluster, store.put("obj", data))
        victim = list(rs.replicas)[0]
        cluster.crash_node(cluster.node_of(victim))
        assert store.note_device_failures() == 1
        rebuilt = run(cluster, store.recover())
        assert rebuilt == 1
        assert len(rs.healthy_devices) == 2
        assert np.array_equal(run(cluster, store.get("obj")), data)

    def test_all_replicas_lost_is_data_loss(self, env):
        cluster, mm = env
        store = self.make(cluster, mm)
        rs = run(cluster, store.put("obj", payload(KiB)))
        for device in list(rs.replicas):
            cluster.crash_node(cluster.node_of(device))
        store.note_device_failures()
        with pytest.raises(ReplDataLoss):
            run(cluster, store.get("obj"))

    def test_delete_frees_regions(self, env):
        cluster, mm = env
        store = self.make(cluster, mm)
        run(cluster, store.put("obj", payload(KiB)))
        store.delete("obj")
        assert mm.live_regions() == []

    def test_invalid_copies_rejected(self, env):
        cluster, mm = env
        with pytest.raises(ValueError):
            self.make(cluster, mm, copies=0)


class TestStripedStore:
    def make(self, cluster, mm, parity=True):
        return StripedStore(
            cluster, mm, FARS[:5], home="dram0",
            page_size=4 * KiB, parity=parity,
        )

    def test_put_get_roundtrip(self, env):
        cluster, mm = env
        store = self.make(cluster, mm)
        data = payload(30 * KiB, seed=20)
        run(cluster, store.put("obj", data))
        assert np.array_equal(run(cluster, store.get("obj")), data)

    def test_striped_read_faster_than_single_device(self, env):
        """The point of striping: aggregate bandwidth across nodes."""
        cluster, mm = env
        store = self.make(cluster, mm, parity=False)
        data = payload(256 * KiB, seed=21)
        run(cluster, store.put("obj", data))
        t0 = cluster.engine.now
        run(cluster, store.get("obj"))
        striped_time = cluster.engine.now - t0

        t0 = cluster.engine.now
        run(cluster, _null_gen(cluster.transfer("far0", "dram0", 256 * KiB)))
        single_time = cluster.engine.now - t0
        assert striped_time < single_time

    def test_parity_recovers_single_device_loss(self, env):
        cluster, mm = env
        store = self.make(cluster, mm, parity=True)
        data = payload(16 * KiB, seed=22)
        stripe = run(cluster, store.put("obj", data))
        victim_device = stripe.pages[0][0]
        cluster.crash_node(cluster.node_of(victim_device))
        store.note_device_failures()
        rebuilt = run(cluster, store.recover())
        assert rebuilt >= 1
        assert not stripe.lost
        assert np.array_equal(run(cluster, store.get("obj")), data)

    def test_no_parity_loss_is_fatal(self, env):
        from repro.ft.striping import DataLoss as StripeDataLoss

        cluster, mm = env
        store = self.make(cluster, mm, parity=False)
        stripe = run(cluster, store.put("obj", payload(16 * KiB)))
        cluster.crash_node(cluster.node_of(stripe.pages[0][0]))
        store.note_device_failures()
        with pytest.raises(StripeDataLoss):
            run(cluster, store.get("obj"))

    def test_validation(self, env):
        cluster, mm = env
        with pytest.raises(ValueError):
            StripedStore(cluster, mm, FARS[:1], home="dram0")
        with pytest.raises(ValueError):
            StripedStore(cluster, mm, FARS[:2], home="dram0", parity=True)


class TestRecoveryOrchestrator:
    def test_crash_triggers_automatic_repair(self, env):
        cluster, mm = env
        store = ErasureCodedStore(
            cluster, mm, FARS, home="dram0", k=4, m=2, shard_size=4 * KiB
        )
        orchestrator = RecoveryOrchestrator(cluster, [store], detection_delay_ns=5000.0)
        data = payload(12 * KiB, seed=30)
        span = run(cluster, store.put("obj", data))

        def crash_later():
            yield cluster.engine.timeout(1000.0)
            cluster.crash_node(cluster.node_of(span.devices[0]))

        cluster.engine.process(crash_later())
        cluster.engine.run()
        assert orchestrator.stats.crashes_seen == 1
        assert orchestrator.stats.repairs_completed == 1
        assert orchestrator.stats.shards_rebuilt == 1
        assert orchestrator.stats.mean_repair_time_ns > 0
        assert span.lost_shards == []

    def test_detection_delay_validated(self, env):
        cluster, mm = env
        with pytest.raises(ValueError):
            RecoveryOrchestrator(cluster, [], detection_delay_ns=-1.0)


def _null_gen(event):
    result = yield event
    return result
