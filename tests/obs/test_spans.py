"""Span tracing: nesting, explicit parents, and the no-op disabled path."""

import pytest

from repro.obs import NOOP_SPAN, Observability
from repro.sim.engine import Engine
from repro.sim.trace import TraceLog


@pytest.fixture
def obs():
    return Observability(engine=Engine())


class TestSpanLifecycle:
    def test_context_manager_emits_span_complete_event(self, obs):
        with obs.span("cat", "work", items=3) as sp:
            obs.engine._now = 50.0
            sp.set(more=True)
        [event] = obs.trace.events
        assert event.is_span
        assert event.begin == 0.0
        assert event.time == 50.0
        assert event.duration == 50.0
        assert event.fields == {"items": 3, "more": True}

    def test_close_is_idempotent(self, obs):
        span = obs.begin_span("cat", "work")
        span.close()
        span.close()
        assert len(obs.trace.events) == 1

    def test_explicit_close_time(self, obs):
        span = obs.begin_span("cat", "work")
        span.close(time=123.0)
        assert obs.trace.events[0].time == 123.0

    def test_close_time_before_begin_clamps_to_zero_duration(self, obs):
        obs.engine._now = 100.0
        span = obs.begin_span("cat", "work")
        span.close(time=40.0)  # bogus earlier-than-begin close
        [event] = obs.trace.events
        assert event.begin == 100.0
        assert event.time == 100.0  # clamped, not a negative duration
        assert event.duration == 0.0

    def test_double_close_keeps_first_end_time(self, obs):
        obs.engine._now = 10.0
        span = obs.begin_span("cat", "work")
        obs.engine._now = 30.0
        span.close()
        span.close(time=5.0)  # late duplicate with a bogus time
        [event] = obs.trace.events
        assert event.time == 30.0
        assert event.duration == 20.0

    def test_exception_recorded_and_propagated(self, obs):
        with pytest.raises(RuntimeError):
            with obs.span("cat", "work"):
                raise RuntimeError("boom")
        [event] = obs.trace.events
        assert "RuntimeError" in event.fields["error"]


class TestParenting:
    def test_with_nesting_links_parent(self, obs):
        with obs.span("cat", "outer") as outer:
            with obs.span("cat", "inner"):
                pass
        inner_ev, outer_ev = obs.trace.events
        assert inner_ev.name == "inner"
        assert inner_ev.parent_id == outer.id
        assert outer_ev.parent_id == 0

    def test_explicit_parent_span(self, obs):
        root = obs.begin_span("cat", "root")
        child = obs.begin_span("cat", "child", parent=root)
        child.close()
        root.close()
        child_ev = obs.trace.events[0]
        assert child_ev.parent_id == root.id

    def test_explicit_parent_id(self, obs):
        child = obs.begin_span("cat", "child", parent=77)
        child.close()
        assert obs.trace.events[0].parent_id == 77

    def test_interleaved_exit_removes_self_not_top(self, obs):
        # Two interleaved scopes (as simulation processes produce): A
        # enters, B enters, A exits first.  A must remove itself, not B.
        a = obs.span("cat", "a")
        b = obs.span("cat", "b")
        a.__enter__()
        b.__enter__()
        a.__exit__(None, None, None)
        assert obs._stack == [b]
        with obs.span("cat", "c"):
            pass
        b.__exit__(None, None, None)
        c_ev = [e for e in obs.trace.events if e.name == "c"][0]
        assert c_ev.parent_id == b.id


class TestDisabledPath:
    def test_disabled_category_returns_shared_noop(self):
        obs = Observability(trace=TraceLog(enabled={"on"}))
        assert obs.span("off", "work") is NOOP_SPAN
        assert obs.begin_span("off", "work") is NOOP_SPAN
        assert obs.span("on", "work") is not NOOP_SPAN

    def test_noop_span_is_falsy_and_inert(self):
        assert not NOOP_SPAN
        assert NOOP_SPAN.id == 0
        NOOP_SPAN.set(anything=1)
        NOOP_SPAN.close()
        with NOOP_SPAN as sp:
            assert sp is NOOP_SPAN

    def test_real_span_is_truthy(self, obs):
        assert obs.span("cat", "work")

    def test_disabled_event_records_nothing(self):
        obs = Observability(trace=TraceLog(enabled=set()))
        obs.event("cat", "thing", n=1)
        with obs.span("cat", "work"):
            pass
        assert len(obs.trace) == 0

    def test_enable_disable_roundtrip(self, obs):
        obs.disable()
        assert not obs.on("cat")
        obs.enable("cat")
        assert obs.on("cat") and not obs.on("other")
        obs.enable()
        assert obs.on("anything")


class TestObservabilityFacade:
    def test_now_follows_engine(self):
        engine = Engine()
        obs = Observability(engine=engine)
        engine._now = 42.0
        assert obs.now() == 42.0
        assert Observability().now() == 0.0

    def test_event_stamps_current_time(self, obs):
        obs.engine._now = 9.0
        obs.event("cat", "tick", n=1)
        [event] = obs.trace.events
        assert event.time == 9.0
        assert not event.is_span

    def test_span_ids_are_unique_and_increasing(self, obs):
        ids = [obs.begin_span("cat", f"s{i}").id for i in range(5)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5
