"""SLO tracking: policies, budgets, and retroactive miss classification."""

import pytest

from repro.obs import Observability
from repro.obs.slo import SloPolicy, SloTracker


class TestSloPolicy:
    def test_budget_is_one_minus_objective(self):
        assert SloPolicy(1e6, objective=0.99).budget == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            SloPolicy(0.0)
        with pytest.raises(ValueError):
            SloPolicy(1e6, objective=1.0)
        with pytest.raises(ValueError):
            SloPolicy(1e6, objective=0.0)


class TestLiveClassification:
    def test_misses_counted_exactly_at_record_time(self):
        tracker = SloTracker()
        tracker.set_policy("web", target_ns=1e6)
        for _ in range(9):
            tracker.record("web", 1e5)
        tracker.record("web", 5e6)
        state = tracker["web"]
        assert state.missed == 1
        assert state.miss_fraction == pytest.approx(0.1)

    def test_failures_always_miss(self):
        tracker = SloTracker()
        tracker.set_policy("web", target_ns=1e6)
        tracker.record("web", 1e3, ok=False)  # fast but failed
        assert tracker["web"].missed == 1


class TestRetroClassification:
    def test_pre_policy_observations_are_reclassified(self):
        tracker = SloTracker()
        # Observations land BEFORE the policy.  Use bucket-aligned
        # latencies (powers of two) so the interpolated estimate is
        # exact: 1024 sits at a bucket boundary, so everything above
        # the 1024 target counts in full and nothing below leaks in.
        for _ in range(90):
            tracker.record("late", 512.0)
        for _ in range(10):
            tracker.record("late", 1_000_000.0)
        assert tracker["late"].missed == 0  # no policy yet
        state = tracker.set_policy("late", target_ns=1024.0)
        assert state.missed == 10
        assert state.burn_rate == pytest.approx(10.0)  # 0.1 / 0.01

    def test_interpolated_share_within_straddling_bucket(self):
        tracker = SloTracker()
        # All 100 observations in one bucket [1024, 2048); a target at
        # the bucket midpoint should classify about half as misses.
        for _ in range(100):
            tracker.record("mid", 1_500.0)
        state = tracker.set_policy("mid", target_ns=1_536.0)
        assert 40 <= state.missed <= 60

    def test_estimate_clamped_to_total(self):
        tracker = SloTracker()
        for _ in range(5):
            tracker.record("all", 1e9, ok=False)
        state = tracker.set_policy("all", target_ns=1.0)
        assert state.missed == 5  # never exceeds total

    def test_failures_floor_the_estimate(self):
        tracker = SloTracker()
        # Fast latencies (below any future target) but all failed:
        # the histogram share is ~0, failures must still count.
        for _ in range(4):
            tracker.record("fail", 100.0, ok=False)
        state = tracker.set_policy("fail", target_ns=1e9)
        assert state.missed == 4

    def test_snapshot_flags_retro_classified_workloads(self):
        tracker = SloTracker()
        tracker.record("late", 5e6)
        tracker.set_policy("late", target_ns=1e6)
        tracker.set_policy("fresh", target_ns=1e6)
        tracker.record("fresh", 5e6)
        snap = tracker.snapshot()
        assert snap["late"]["retro_classified"] == 1
        assert "retro_classified" not in snap["fresh"]

    def test_policy_before_any_observation_is_not_flagged(self):
        tracker = SloTracker()
        tracker.set_policy("web", target_ns=1e6)
        assert tracker.retro_classified == {}

    def test_retro_classification_counted_in_telemetry(self):
        obs = Observability()
        obs.slo.record("late", 5e6)
        obs.slo.set_policy("late", target_ns=1e6)
        snap = obs.registry.snapshot()
        assert snap["telemetry.slo_retro_classified"]["value"] == 1.0

    def test_retro_classify_without_policy_is_noop(self):
        tracker = SloTracker()
        tracker.record("free", 5e6)
        assert tracker["free"].retro_classify() == 0


class TestTelemetryFeed:
    def test_every_record_feeds_the_hub(self):
        obs = Observability()
        obs.slo.set_policy("web", target_ns=1e6)
        obs.slo.record("web", 5e5)
        obs.slo.record("web", 5e6)
        totals = obs.telemetry.get_series("slo.total/web")
        misses = obs.telemetry.get_series("slo.missed/web")
        assert totals.sum_over(0.0, 0.0)[0] == 2.0
        assert misses.sum_over(0.0, 0.0)[0] == 1.0

    def test_standalone_tracker_tolerates_no_hub(self):
        tracker = SloTracker()
        tracker.set_policy("web", target_ns=1e6)
        tracker.record("web", 5e5)  # telemetry is None; must not raise
        assert tracker["web"].total == 1
