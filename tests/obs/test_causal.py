"""Causal DAG construction, critical-path attribution, stragglers, SLOs.

Unit tests build synthetic :class:`JobGraph` instances by hand so every
identity (edges point forward, buckets sum to makespan, paths validate)
is checked against known-good numbers; the integration tests run real
jobs through the RTS and assert the same identities hold on graphs the
runtime recorded.
"""

import json

import pytest

from repro.dataflow import Job, RegionUsage, Task, WorkSpec
from repro.hardware import Cluster
from repro.obs import Observability
from repro.obs.causal import (
    BUCKETS,
    CausalTracer,
    JobGraph,
    attribute_job,
    critical_path,
    detect_stragglers,
    quantile,
    validate_path,
)
from repro.obs.export import causal_flow_events, load_jsonl
from repro.obs.slo import SloPolicy
from repro.runtime import RuntimeSystem
from repro.sim.engine import Engine
from repro.sim.trace import TraceLog

KiB = 1024
MiB = 1024 * KiB


def simple_graph():
    """root -> compute [0,10] -> transfer [10,30] -> sink @30."""
    graph = JobGraph("j#1", "j", submitted_at=0.0)
    a = graph.add_node("compute_phase", "compute", 0.0, 10.0, task="t0")
    b = graph.add_node("handover", "transfer", 10.0, 30.0, task="t0",
                       parents=(a,))
    graph.finish(30.0, ok=True, parents=(b,))
    return graph, a, b


class TestJobGraph:
    def test_root_is_node_zero(self):
        graph = JobGraph("k", "job", submitted_at=5.0)
        assert graph.root == 0
        root = graph.nodes[0]
        assert root.kind == "submit"
        assert root.begin == root.end == 5.0

    def test_bare_parent_ids_get_seq_edges(self):
        graph = JobGraph("k", "j", 0.0)
        a = graph.add_node("x", "compute", 0.0, 1.0)
        b = graph.add_node("y", "compute", 1.0, 2.0, parents=(a,))
        assert graph.in_edges[b] == [(a, "seq")]

    def test_parentless_node_is_chained_to_root(self):
        graph = JobGraph("k", "j", 0.0)
        a = graph.add_node("x", "compute", 0.0, 1.0)
        assert graph.in_edges[a] == [(graph.root, "spawn")]

    def test_detached_node_gets_no_root_link(self):
        graph = JobGraph("k", "j", 0.0)
        a = graph.add_node("adm", "admission_backoff", 0.0, 1.0,
                           detached=True)
        assert a not in graph.in_edges

    def test_add_edge_rejects_backward_and_dangling(self):
        graph = JobGraph("k", "j", 0.0)
        a = graph.add_node("x", "compute", 0.0, 1.0)
        b = graph.add_node("y", "compute", 1.0, 2.0, parents=(a,))
        assert not graph.add_edge(b, a, "seq")      # backward
        assert not graph.add_edge(a, a, "seq")      # self
        assert not graph.add_edge(999, b, "seq")    # dangling src
        assert not graph.add_edge(None, b, "seq")   # dropped parent
        assert graph.in_edges[b] == [(a, "seq")]    # DAG untouched

    def test_dropped_parent_falls_back_to_root_spawn(self):
        # A parent dropped at the node cap comes back as None; the child
        # must still be reachable from the root.
        graph = JobGraph("k", "j", 0.0)
        child = graph.add_node("y", "compute", 1.0, 2.0, parents=(None,))
        assert graph.in_edges[child] == [(graph.root, "spawn")]

    def test_node_cap_drops_and_counts(self):
        graph = JobGraph("k", "j", 0.0, max_nodes=3)
        a = graph.add_node("x", "compute", 0.0, 1.0)
        b = graph.add_node("y", "compute", 1.0, 2.0, parents=(a,))
        assert graph.add_node("z", "compute", 2.0, 3.0, parents=(b,)) is None
        assert graph.dropped_nodes == 1
        # finish still lands (steals headroom) and the sum identity holds.
        graph.finish(5.0, ok=True, parents=(b,))
        att = attribute_job(graph)
        assert sum(att["buckets"].values()) == pytest.approx(att["makespan"])
        assert att["buckets"]["unattributed"] == pytest.approx(3.0)
        assert att["dropped_nodes"] == 1

    def test_finish_is_idempotent(self):
        graph, _a, b = simple_graph()
        first = graph.sink
        assert graph.finish(99.0, ok=False) == first
        assert graph.finished_at == 30.0
        assert graph.ok is True

    def test_makespan_requires_finish(self):
        graph = JobGraph("k", "j", 10.0)
        assert graph.makespan is None
        graph.finish(25.0, ok=True)
        assert graph.makespan == 15.0

    def test_dict_roundtrip_through_json(self):
        graph, _a, _b = simple_graph()
        graph.admission_wait_ns = 7.0
        graph.fields["est_makespan"] = 12.5
        data = json.loads(json.dumps(graph.to_dict()))
        clone = JobGraph.from_dict(data)
        assert clone.key == graph.key
        assert clone.job == graph.job
        assert clone.sink == graph.sink
        assert clone.admission_wait_ns == 7.0
        assert clone.fields["est_makespan"] == 12.5
        assert clone.edge_list() == graph.edge_list()
        assert attribute_job(clone)["buckets"] == attribute_job(graph)["buckets"]


class TestCriticalPath:
    def test_walks_root_to_sink(self):
        graph, a, b = simple_graph()
        path = critical_path(graph)
        assert path == [graph.root, a, b, graph.sink]
        assert validate_path(graph, path)

    def test_unfinished_graph_has_no_path(self):
        graph = JobGraph("k", "j", 0.0)
        graph.add_node("x", "compute", 0.0, 1.0)
        assert critical_path(graph) == []
        assert attribute_job(graph) is None

    def test_follows_the_latest_finishing_predecessor(self):
        # Fan-in: fast [0,5] and slow [0,20] both feed the sink; the
        # binding chain goes through the slow branch.
        graph = JobGraph("k", "j", 0.0)
        fast = graph.add_node("x", "compute", 0.0, 5.0, task="fast")
        slow = graph.add_node("x", "compute", 0.0, 20.0, task="slow")
        graph.finish(20.0, ok=True, parents=(fast, slow))
        path = critical_path(graph)
        assert slow in path and fast not in path

    def test_validate_rejects_fabricated_paths(self):
        graph, a, b = simple_graph()
        assert not validate_path(graph, [])
        assert not validate_path(graph, [graph.root, b, graph.sink])  # no edge
        assert not validate_path(graph, [a, b, graph.sink])  # wrong start


class TestAttribution:
    def test_buckets_sum_to_makespan(self):
        graph, _a, _b = simple_graph()
        att = attribute_job(graph)
        assert att["makespan"] == 30.0
        assert att["buckets"]["compute"] == 10.0
        assert att["buckets"]["transfer"] == 20.0
        assert sum(att["buckets"].values()) == pytest.approx(30.0)

    def test_gaps_become_unattributed(self):
        graph = JobGraph("k", "j", 0.0)
        a = graph.add_node("x", "compute", 5.0, 10.0)  # 5ns gap after root
        graph.finish(10.0, ok=True, parents=(a,))
        att = attribute_job(graph)
        assert att["buckets"]["unattributed"] == pytest.approx(5.0)
        assert att["buckets"]["compute"] == pytest.approx(5.0)

    def test_tail_gap_is_unattributed(self):
        graph = JobGraph("k", "j", 0.0)
        a = graph.add_node("x", "compute", 0.0, 4.0)
        graph.finish(10.0, ok=True, parents=(a,))  # 6ns unexplained tail
        att = attribute_job(graph)
        assert att["buckets"]["unattributed"] == pytest.approx(6.0)
        assert sum(att["buckets"].values()) == pytest.approx(10.0)

    def test_overlapped_step_contributes_nothing(self):
        # B is entirely inside A's interval: only the uncovered part of
        # the timeline may be charged, so B adds zero.
        graph = JobGraph("k", "j", 0.0)
        a = graph.add_node("x", "compute", 0.0, 10.0)
        b = graph.add_node("y", "transfer", 2.0, 8.0, parents=(a,))
        graph.finish(10.0, ok=True, parents=(b,))
        att = attribute_job(graph)
        assert att["buckets"]["transfer"] == 0.0
        assert att["buckets"]["compute"] == pytest.approx(10.0)

    def test_partial_overlap_charges_only_the_uncovered_part(self):
        graph = JobGraph("k", "j", 0.0)
        a = graph.add_node("x", "compute", 0.0, 10.0)
        b = graph.add_node("y", "transfer", 6.0, 18.0, parents=(a,))
        graph.finish(18.0, ok=True, parents=(b,))
        att = attribute_job(graph)
        assert att["buckets"]["compute"] == pytest.approx(10.0)
        assert att["buckets"]["transfer"] == pytest.approx(8.0)

    def test_unknown_bucket_degrades_to_unattributed(self):
        graph = JobGraph("k", "j", 0.0)
        a = graph.add_node("x", "not_a_bucket", 0.0, 10.0)
        graph.finish(10.0, ok=True, parents=(a,))
        att = attribute_job(graph)
        assert att["buckets"]["unattributed"] == pytest.approx(10.0)

    def test_per_task_contributions(self):
        graph, _a, _b = simple_graph()
        att = attribute_job(graph)
        assert att["per_task"]["t0"]["total"] == pytest.approx(30.0)
        assert att["per_task"]["t0"]["buckets"] == {
            "compute": 10.0, "transfer": 20.0,
        }

    def test_transfer_splits_across_bottleneck_links(self):
        graph = JobGraph("k", "j", 0.0)
        a = graph.add_node(
            "handover", "transfer", 0.0, 10.0, task="t0",
            copies=[
                {"src": "a", "dst": "b", "duration": 3.0, "link": "tor"},
                {"src": "a", "dst": "c", "duration": 1.0, "link": "pcie0"},
            ],
        )
        graph.finish(10.0, ok=True, parents=(a,))
        att = attribute_job(graph)
        assert att["link_share"]["tor"] == pytest.approx(7.5)
        assert att["link_share"]["pcie0"] == pytest.approx(2.5)

    def test_transfer_without_copies_uses_link_field(self):
        graph = JobGraph("k", "j", 0.0)
        a = graph.add_node("memory_phase", "transfer", 0.0, 4.0,
                           link="gddr1")
        graph.finish(4.0, ok=True, parents=(a,))
        att = attribute_job(graph)
        assert att["link_share"] == {"gddr1": 4.0}


class TestQuantileHelper:
    def test_empty_and_extremes(self):
        assert quantile([], 0.5) == 0.0
        assert quantile([3.0], 0.5) == 3.0
        assert quantile([1.0, 9.0], 0.0) == 1.0
        assert quantile([1.0, 9.0], 1.0) == 9.0

    def test_linear_interpolation(self):
        assert quantile([0.0, 10.0], 0.5) == pytest.approx(5.0)
        assert quantile([0.0, 10.0, 20.0, 30.0], 0.5) == pytest.approx(15.0)


def synthetic_attribution(key, task_ns, makespan):
    """An attribute_job-shaped dict with one compute bucket per task."""
    return {
        "job": "j", "key": key, "ok": True, "makespan": makespan,
        "buckets": {}, "path": [], "steps": [], "link_share": {},
        "per_task": {
            task: {"total": ns, "device": f"dev-{task}",
                   "buckets": {"compute": ns}}
            for task, ns in task_ns.items()
        },
    }


class TestStragglerDetection:
    def test_flags_the_robust_outlier(self):
        atts = [
            synthetic_attribution(f"j#{i}", {"map": 100.0 + i}, 1000.0)
            for i in range(5)
        ]
        atts.append(synthetic_attribution("j#5", {"map": 900.0}, 1000.0))
        flagged = detect_stragglers(atts)
        tasks = {(f["scope"], f["key"]) for f in flagged}
        assert ("task", "j#5") in tasks
        assert all(f["key"] == "j#5" for f in flagged)
        worst = flagged[0]
        assert worst["ns"] == 900.0
        assert worst["cohort_size"] == 6
        assert worst["cohort_median"] < 200.0

    def test_small_cohorts_are_skipped(self):
        atts = [
            synthetic_attribution(f"j#{i}", {"map": v}, 1000.0)
            for i, v in enumerate((100.0, 100.0, 900.0))
        ]
        assert detect_stragglers(atts, min_cohort=4) == []

    def test_low_share_outliers_are_not_flagged(self):
        # 9x the cohort median but only 0.9% of the makespan: noise.
        atts = [
            synthetic_attribution(f"j#{i}", {"map": 1.0}, 1000.0)
            for i in range(5)
        ]
        atts.append(synthetic_attribution("j#5", {"map": 9.0}, 1000.0))
        assert detect_stragglers(atts, min_share=0.05) == []


class TestCausalTracer:
    def make_obs(self, enabled=("causal",)):
        return Observability(trace=TraceLog(enabled=set(enabled)),
                             engine=Engine())

    def test_disabled_category_records_nothing(self):
        obs = self.make_obs(enabled=())
        assert obs.causal.job_begin("k", "j") is None
        obs.causal.note_fault("device_down", "gpu0", 5.0)
        assert obs.causal.last_fault("gpu0") is None

    def test_job_begin_uses_engine_clock_by_default(self):
        obs = self.make_obs()
        obs.engine._now = 42.0
        graph = obs.causal.job_begin("k", "j")
        assert graph.submitted_at == 42.0
        assert obs.causal.jobs["k"] is graph

    def test_oldest_jobs_evicted_at_cap(self):
        obs = self.make_obs()
        tracer = CausalTracer(obs, max_jobs=2)
        for i in range(4):
            tracer.job_begin(f"k{i}", "j")
        assert list(tracer.jobs) == ["k2", "k3"]
        assert tracer.dropped_jobs == 2

    def test_slot_release_context(self):
        obs = self.make_obs()
        tracer = obs.causal
        assert tracer.last_slot_release("gpu0") is None
        tracer.note_slot_release("gpu0", "k", 7, "j/t0")
        assert tracer.last_slot_release("gpu0") == ("k", 7, "j/t0")

    def test_last_fault_returns_most_recent_for_target(self):
        obs = self.make_obs()
        tracer = obs.causal
        tracer.note_fault("device_down", "gpu0", 1.0)
        tracer.note_fault("drain", "gpu1", 2.0)
        tracer.note_fault("repair_started", "gpu0", 3.0)
        assert tracer.last_fault("gpu0")["kind"] == "repair_started"
        assert tracer.last_fault("gpu1")["kind"] == "drain"
        assert tracer.last_fault("nope") is None

    def test_rejections_counted_even_when_disabled(self):
        obs = self.make_obs(enabled=())
        obs.causal.note_rejection("owner", "region", "capacity", 1.0)
        assert obs.causal.rejections == 1
        assert len(obs.causal.rejection_log) == 0
        on = self.make_obs()
        on.causal.note_rejection("owner", "region", "capacity", 1.0)
        assert len(on.causal.rejection_log) == 1

    def test_link_retry_annotates_both_graphs(self):
        obs = self.make_obs()
        first = obs.causal.job_begin("j#1", "j")
        second = obs.causal.job_begin("j#2", "j")
        obs.causal.link_retry("j#1", "j#2")
        assert second.fields["retry_of"] == "j#1"
        assert first.fields["retried_as"] == "j#2"


@pytest.fixture
def traced_run():
    """A real two-job run with causal tracing and an SLO policy on."""
    cluster = Cluster.preset("pooled-rack")
    cluster.obs.slo.set_policy("pipe", target_ns=1e9, objective=0.9)
    rts = RuntimeSystem(cluster)
    for _ in range(2):
        job = Job("pipe")
        a = job.add_task(Task("produce", work=WorkSpec(
            ops=1e5, output=RegionUsage(2 * MiB))))
        b = job.add_task(Task("mid", work=WorkSpec(
            ops=5e4, input_usage=RegionUsage(0),
            output=RegionUsage(1 * MiB))))
        c = job.add_task(Task("sink", work=WorkSpec(
            ops=1e4, input_usage=RegionUsage(0))))
        job.connect(a, b)
        job.connect(b, c)
        stats = rts.run_job(job)
        assert stats.ok
    return cluster


class TestRuntimeIntegration:
    def test_rts_records_a_valid_attributable_graph(self, traced_run):
        graphs = list(traced_run.obs.causal.jobs.values())
        assert len(graphs) == 2
        for graph in graphs:
            att = attribute_job(graph)
            assert att["ok"] is True
            assert validate_path(graph, att["path"])
            assert sum(att["buckets"].values()) == pytest.approx(
                att["makespan"], rel=1e-6
            )
            # A pipeline spends real time in at least compute + transfer.
            assert att["buckets"]["compute"] > 0.0
            assert att["buckets"]["transfer"] > 0.0
            assert set(att["per_task"]) <= {
                "pipe/produce", "pipe/mid", "pipe/sink",
            }

    def test_edges_point_forward_in_emission_order(self, traced_run):
        for graph in traced_run.obs.causal.jobs.values():
            for src, dst, _kind in graph.edge_list():
                assert src < dst

    def test_dashboard_renders_attribution_and_slo_sections(self, traced_run):
        text = traced_run.obs.dashboard()
        assert "Critical-path attribution" in text
        assert "SLO" in text
        assert "pipe" in text
        # The job filter keeps only matching attribution rows.
        filtered = traced_run.obs.dashboard(job="other")
        assert "pipe" not in filtered

    def test_slo_recorded_per_job_name(self, traced_run):
        snap = traced_run.obs.slo.snapshot()
        assert snap["pipe"]["total"] == 2
        assert snap["pipe"]["missed"] == 0
        assert snap["pipe"]["p50"] > 0.0

    def test_disabled_causal_run_records_no_graphs(self):
        cluster = Cluster.preset("pooled-rack")
        cluster.obs.enable("job", "task")  # causal off
        rts = RuntimeSystem(cluster)
        job = Job("quiet")
        job.add_task(Task("t", work=WorkSpec(ops=1e4)))
        assert rts.run_job(job).ok
        assert cluster.obs.causal.jobs == {}

    def test_jsonl_roundtrip_reattributes_identically(
        self, traced_run, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        traced_run.obs.export_jsonl(str(path))
        loaded = load_jsonl(str(path))
        assert len(loaded["causal"]["jobs"]) == 2
        assert loaded["slo"]["pipe"]["total"] == 2
        for key, live in traced_run.obs.causal.jobs.items():
            clone = JobGraph.from_dict(loaded["causal"]["jobs"][key])
            assert attribute_job(clone)["buckets"] == pytest.approx(
                attribute_job(live)["buckets"]
            )

    def test_perfetto_flow_events_pair_up(self, traced_run):
        events = causal_flow_events(traced_run.obs.causal.data())
        starts = {e["id"]: e for e in events if e["ph"] == "s"}
        finishes = {e["id"]: e for e in events if e["ph"] == "f"}
        assert starts and set(starts) == set(finishes)
        n_edges = sum(
            len(g.edge_list())
            for g in traced_run.obs.causal.jobs.values()
        )
        assert len(starts) == n_edges
        for fid, start in starts.items():
            assert finishes[fid]["ts"] >= start["ts"]  # arrows go forward
            assert finishes[fid]["bp"] == "e"

    def test_write_chrome_trace_includes_causal_rows(
        self, traced_run, tmp_path
    ):
        path = tmp_path / "trace.json"
        traced_run.obs.write_chrome_trace(str(path))
        doc = json.loads(path.read_text())
        rows = [e["args"]["name"] for e in doc["traceEvents"]
                if e["ph"] == "M"]
        assert any(r.startswith("causal:pipe/") for r in rows)
        phs = {e["ph"] for e in doc["traceEvents"]}
        assert {"s", "f"} <= phs


class TestSloPolicy:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SloPolicy(target_ns=0.0)
        with pytest.raises(ValueError):
            SloPolicy(target_ns=1.0, objective=1.0)

    def test_budget_and_burn_accounting(self):
        obs = Observability()
        obs.slo.set_policy("train", target_ns=100.0, objective=0.9)
        for latency in (50.0, 80.0, 150.0, 60.0, 90.0, 70.0, 40.0, 30.0,
                        20.0, 10.0):
            obs.slo.record("train", latency)
        snap = obs.slo.snapshot()["train"]
        assert snap["total"] == 10
        assert snap["missed"] == 1  # only the 150ns job blew the target
        assert snap["miss_fraction"] == pytest.approx(0.1)
        # budget is 10%; misses arrive exactly at budget speed.
        assert snap["burn_rate"] == pytest.approx(1.0)
        assert snap["budget_remaining"] == pytest.approx(0.0)

    def test_failures_always_miss(self):
        obs = Observability()
        obs.slo.set_policy("train", target_ns=1e9, objective=0.5)
        obs.slo.record("train", 10.0, ok=False)
        snap = obs.slo.snapshot()["train"]
        assert snap["failures"] == 1
        assert snap["missed"] == 1

    def test_workloads_without_policy_only_track_percentiles(self):
        obs = Observability()
        obs.slo.record("adhoc", 10.0)
        snap = obs.slo.snapshot()["adhoc"]
        assert snap["p50"] == 10.0
        assert "burn_rate" not in snap
