"""Unit tests for the observability metric instruments."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    TimeWeightedHistogram,
    Timeline,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0
        assert counter.snapshot() == {"type": "counter", "value": 5.0}


class TestGauge:
    def test_set_value(self):
        gauge = Gauge("g")
        gauge.set(7.5)
        assert gauge.value == 7.5

    def test_callback_wins_over_set(self):
        backing = {"n": 3}
        gauge = Gauge("g", fn=lambda: backing["n"])
        gauge.set(99)
        assert gauge.value == 3.0
        backing["n"] = 11
        assert gauge.value == 11.0


class TestTimeWeightedHistogram:
    def test_accumulates_time_per_level_bucket(self):
        hist = TimeWeightedHistogram("depth", bounds=(1, 2, 4))
        hist.observe(0.0, 1)   # level 0 dwelt [init..0] = 0ns
        hist.observe(10.0, 3)  # level 1 dwelt 10ns  -> bucket "<=1"
        hist.observe(15.0, 0)  # level 3 dwelt 5ns   -> bucket "<=4"
        hist.observe(25.0, 9)  # level 0 dwelt 10ns  -> bucket "<=1"
        buckets = hist.time_in_buckets()
        assert buckets["<=1"] == 20.0
        assert buckets["<=4"] == 5.0
        assert buckets[">4"] == 0.0

    def test_overflow_bucket(self):
        hist = TimeWeightedHistogram("depth", bounds=(1, 2))
        hist.observe(0.0, 100)
        hist.observe(8.0, 0)
        assert hist.time_in_buckets()[">2"] == 8.0

    def test_adjust_is_relative(self):
        hist = TimeWeightedHistogram("depth")
        hist.adjust(1.0, +2)
        hist.adjust(2.0, +1)
        assert hist.level == 3.0
        hist.adjust(3.0, -3)
        assert hist.level == 0.0

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            TimeWeightedHistogram("bad", bounds=(4, 2, 1))

    def test_rejects_time_travel(self):
        hist = TimeWeightedHistogram("depth")
        hist.observe(10.0, 1)
        with pytest.raises(ValueError):
            hist.observe(5.0, 2)


class TestTimeline:
    def test_keeps_samples_and_aggregates(self):
        timeline = Timeline("occ")
        timeline.adjust(0.0, +1)
        timeline.adjust(10.0, +1)
        timeline.adjust(20.0, -2)
        assert list(timeline.samples) == [(0.0, 1.0), (10.0, 2.0), (20.0, 0.0)]
        assert timeline.maximum == 2.0
        # 1 for 10ns, 2 for 10ns -> mean 1.5 over the recorded window.
        assert timeline.mean() == pytest.approx(1.5)

    def test_ring_is_bounded_and_counts_drops(self):
        timeline = Timeline("occ", max_samples=4)
        for i in range(10):
            timeline.record(float(i), float(i))
        assert len(timeline.samples) == 4
        assert timeline.dropped == 6
        # Aggregates still cover the whole run, not just the ring.
        assert timeline.maximum == 9.0

    def test_needs_two_samples_of_history(self):
        with pytest.raises(ValueError):
            Timeline("occ", max_samples=1)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.timeline("t") is registry.timeline("t")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_contains_and_names(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a")
        assert "a" in registry and "c" not in registry
        assert registry.names() == ["a", "b"]

    def test_collectors_fold_into_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("own").inc(2)
        registry.add_collector(lambda: [("ext.bytes", 42), ("ext.count", 3)])
        snap = registry.snapshot()
        assert snap["own"]["value"] == 2.0
        assert snap["ext.bytes"] == {"type": "gauge", "value": 42.0}
        assert snap["ext.count"]["value"] == 3.0

    def test_collectors_not_called_before_snapshot(self):
        registry = MetricsRegistry()
        calls = []
        registry.add_collector(lambda: calls.append(1) or [])
        assert calls == []
        registry.snapshot()
        assert calls == [1]

    def test_report_renders_every_kind(self):
        registry = MetricsRegistry()
        registry.counter("count").inc()
        registry.gauge("gauge").set(2)
        registry.histogram("hist").observe(1.0, 3)
        registry.timeline("line").record(1.0, 4)
        text = registry.report()
        for name in ("count", "gauge", "hist", "line"):
            assert name in text
