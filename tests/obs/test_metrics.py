"""Unit tests for the observability metric instruments."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    TimeWeightedHistogram,
    Timeline,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0
        assert counter.snapshot() == {"type": "counter", "value": 5.0}


class TestGauge:
    def test_set_value(self):
        gauge = Gauge("g")
        gauge.set(7.5)
        assert gauge.value == 7.5

    def test_callback_wins_over_set(self):
        backing = {"n": 3}
        gauge = Gauge("g", fn=lambda: backing["n"])
        gauge.set(99)
        assert gauge.value == 3.0
        backing["n"] = 11
        assert gauge.value == 11.0


class TestTimeWeightedHistogram:
    def test_accumulates_time_per_level_bucket(self):
        hist = TimeWeightedHistogram("depth", bounds=(1, 2, 4))
        hist.observe(0.0, 1)   # level 0 dwelt [init..0] = 0ns
        hist.observe(10.0, 3)  # level 1 dwelt 10ns  -> bucket "<=1"
        hist.observe(15.0, 0)  # level 3 dwelt 5ns   -> bucket "<=4"
        hist.observe(25.0, 9)  # level 0 dwelt 10ns  -> bucket "<=1"
        buckets = hist.time_in_buckets()
        assert buckets["<=1"] == 20.0
        assert buckets["<=4"] == 5.0
        assert buckets[">4"] == 0.0

    def test_overflow_bucket(self):
        hist = TimeWeightedHistogram("depth", bounds=(1, 2))
        hist.observe(0.0, 100)
        hist.observe(8.0, 0)
        assert hist.time_in_buckets()[">2"] == 8.0

    def test_adjust_is_relative(self):
        hist = TimeWeightedHistogram("depth")
        hist.adjust(1.0, +2)
        hist.adjust(2.0, +1)
        assert hist.level == 3.0
        hist.adjust(3.0, -3)
        assert hist.level == 0.0

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            TimeWeightedHistogram("bad", bounds=(4, 2, 1))

    def test_rejects_time_travel(self):
        hist = TimeWeightedHistogram("depth")
        hist.observe(10.0, 1)
        with pytest.raises(ValueError):
            hist.observe(5.0, 2)

    def test_quantile_interpolates_within_buckets(self):
        hist = TimeWeightedHistogram("depth", bounds=(1, 2, 4))
        hist.observe(10.0, 3)  # level 0 dwelt 10ns in (floor=0, 1]
        hist.observe(20.0, 0)  # level 3 dwelt 10ns in (2, 4]
        # Half the time was spent at level 0; the median lands exactly on
        # the first bucket's upper bound.
        assert hist.quantile(0.50) == pytest.approx(1.0)
        # 75% target: 5ns into the 10ns dwelt in (2, 4] -> midpoint.
        assert hist.quantile(0.75) == pytest.approx(3.0)
        assert hist.quantile(1.0) == pytest.approx(4.0)
        assert hist.quantile(0.0) == pytest.approx(0.0)

    def test_quantile_without_history_returns_current_level(self):
        hist = TimeWeightedHistogram("depth")
        assert hist.quantile(0.95) == 0.0
        hist.observe(0.0, 7)  # zero elapsed time so far
        assert hist.quantile(0.95) == 7.0

    def test_quantile_rejects_out_of_range(self):
        hist = TimeWeightedHistogram("depth")
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        with pytest.raises(ValueError):
            hist.quantile(-0.1)

    def test_snapshot_includes_percentiles(self):
        hist = TimeWeightedHistogram("depth", bounds=(1, 2, 4))
        hist.observe(10.0, 3)
        hist.observe(20.0, 0)
        snap = hist.snapshot()
        assert snap["p50"] == pytest.approx(hist.quantile(0.50))
        assert snap["p95"] == pytest.approx(hist.quantile(0.95))
        assert snap["p99"] == pytest.approx(hist.quantile(0.99))


class TestLatencyHistogram:
    def test_counts_mean_min_max(self):
        hist = LatencyHistogram("lat", bounds=(10, 100, 1000))
        for value in (5.0, 50.0, 500.0, 5000.0):
            hist.observe(value)
        assert hist.total == 4
        assert hist.mean == pytest.approx(1388.75)
        assert hist.minimum == 5.0
        assert hist.maximum == 5000.0
        # 5000 overflows the last bound into the open-ended bucket.
        assert hist.counts == [1, 1, 1, 1]

    def test_quantile_interpolates_within_bucket(self):
        hist = LatencyHistogram("lat", bounds=(0, 100))
        hist.observe(25.0)
        hist.observe(75.0)
        # Both samples land in the (0, 100] bucket; the quantile is a
        # linear walk through it, clamped to the observed range.
        assert hist.quantile(0.25) == pytest.approx(25.0)
        assert hist.quantile(0.50) == pytest.approx(50.0)
        assert hist.quantile(1.00) == pytest.approx(75.0)

    def test_quantile_clamps_to_observed_range(self):
        hist = LatencyHistogram("lat", bounds=(10,))
        hist.observe(5.0)
        hist.observe(7.0)
        # Raw interpolation would report near the 10ns bucket edge; the
        # clamp keeps tiny samples honest.
        assert hist.quantile(0.99) == 7.0
        assert hist.quantile(0.0) == 5.0

    def test_single_observation_is_every_quantile(self):
        hist = LatencyHistogram("lat")
        hist.observe(42.0)
        for q in (0.01, 0.5, 0.95, 0.99, 1.0):
            assert hist.quantile(q) == 42.0

    def test_empty_histogram(self):
        hist = LatencyHistogram("lat")
        assert hist.quantile(0.5) == 0.0
        snap = hist.snapshot()
        assert snap["count"] == 0
        assert snap["mean"] == 0.0
        assert snap["min"] == 0.0

    def test_rejects_negative_latency_and_bad_quantile(self):
        hist = LatencyHistogram("lat")
        with pytest.raises(ValueError):
            hist.observe(-1.0)
        with pytest.raises(ValueError):
            hist.quantile(2.0)

    def test_snapshot_percentiles_match_quantile(self):
        hist = LatencyHistogram("lat")
        for value in (10.0, 20.0, 30.0, 40.0, 1000.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["type"] == "latency"
        assert snap["p50"] == pytest.approx(hist.quantile(0.50))
        assert snap["p95"] == pytest.approx(hist.quantile(0.95))
        assert snap["p99"] == pytest.approx(hist.quantile(0.99))
        assert snap["min"] <= snap["p50"] <= snap["p95"] <= snap["max"]


class TestTimeline:
    def test_keeps_samples_and_aggregates(self):
        timeline = Timeline("occ")
        timeline.adjust(0.0, +1)
        timeline.adjust(10.0, +1)
        timeline.adjust(20.0, -2)
        assert list(timeline.samples) == [(0.0, 1.0), (10.0, 2.0), (20.0, 0.0)]
        assert timeline.maximum == 2.0
        # 1 for 10ns, 2 for 10ns -> mean 1.5 over the recorded window.
        assert timeline.mean() == pytest.approx(1.5)

    def test_ring_is_bounded_and_counts_drops(self):
        timeline = Timeline("occ", max_samples=4)
        for i in range(10):
            timeline.record(float(i), float(i))
        assert len(timeline.samples) == 4
        assert timeline.dropped == 6
        # Aggregates still cover the whole run, not just the ring.
        assert timeline.maximum == 9.0

    def test_needs_two_samples_of_history(self):
        with pytest.raises(ValueError):
            Timeline("occ", max_samples=1)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.timeline("t") is registry.timeline("t")
        assert registry.latency("l") is registry.latency("l")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_contains_and_names(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a")
        assert "a" in registry and "c" not in registry
        assert registry.names() == ["a", "b"]

    def test_collectors_fold_into_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("own").inc(2)
        registry.add_collector(lambda: [("ext.bytes", 42), ("ext.count", 3)])
        snap = registry.snapshot()
        assert snap["own"]["value"] == 2.0
        assert snap["ext.bytes"] == {"type": "gauge", "value": 42.0}
        assert snap["ext.count"]["value"] == 3.0

    def test_collectors_not_called_before_snapshot(self):
        registry = MetricsRegistry()
        calls = []
        registry.add_collector(lambda: calls.append(1) or [])
        assert calls == []
        registry.snapshot()
        assert calls == [1]

    def test_report_renders_every_kind(self):
        registry = MetricsRegistry()
        registry.counter("count").inc()
        registry.gauge("gauge").set(2)
        registry.histogram("hist").observe(1.0, 3)
        registry.timeline("line").record(1.0, 4)
        registry.latency("lat").observe(7.0)
        text = registry.report()
        for name in ("count", "gauge", "hist", "line", "lat"):
            assert name in text
        assert "n=1" in text  # latency row shows count + percentiles
        assert "p99" in text
