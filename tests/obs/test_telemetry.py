"""Continuous telemetry: windowed series, burn alerts, sampled hotness."""

import pytest

from repro.obs import Observability
from repro.obs.metrics import LATENCY_BOUNDS_NS
from repro.obs.slo import SloPolicy
from repro.obs.telemetry import (
    BurnRateRule,
    SampledHotness,
    TelemetryHub,
    WindowedSeries,
)
from repro.sim.engine import Engine


class TestWindowedSeriesSample:
    def test_deterministic_window_boundaries(self):
        s = WindowedSeries("s", width_ns=100.0)
        assert s.window_index(0.0) == 0
        assert s.window_index(99.999) == 0
        assert s.window_index(100.0) == 1
        assert s.window_index(250.0) == 2

    def test_per_window_count_mean_min_max(self):
        s = WindowedSeries("s", width_ns=100.0)
        s.observe(10.0, 5.0)
        s.observe(20.0, 15.0)
        s.observe(150.0, 100.0)
        stats = [s.window_stats(w) for w in s.windows()]
        assert [st["index"] for st in stats] == [0, 1]
        assert stats[0]["count"] == 2
        assert stats[0]["mean"] == pytest.approx(10.0)
        assert stats[0]["min"] == 5.0 and stats[0]["max"] == 15.0
        assert stats[1]["count"] == 1 and stats[1]["mean"] == 100.0

    def test_in_window_p95_from_log_buckets(self):
        s = WindowedSeries("lat", width_ns=1e6, bounds=LATENCY_BOUNDS_NS)
        for _ in range(95):
            s.observe(0.0, 2_000.0)
        for _ in range(5):
            s.observe(0.0, 1_000_000.0)
        stats = s.window_stats(s.windows()[0])
        # p95 lands at the boundary between the bulk and the tail.
        assert 1_500.0 <= stats["p95"] <= 1_100_000.0
        assert stats["p95"] < stats["max"] * 1.01

    def test_time_backwards_across_windows_raises(self):
        s = WindowedSeries("s", width_ns=100.0)
        s.observe(500.0, 1.0)
        with pytest.raises(ValueError, match="backwards"):
            s.observe(100.0, 1.0)

    def test_kind_mismatch_raises(self):
        s = WindowedSeries("s", width_ns=100.0, kind="sample")
        with pytest.raises(TypeError):
            s.add(0.0, 1.0)
        with pytest.raises(TypeError):
            s.record_level(0.0, 1.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            WindowedSeries("s", width_ns=0.0)
        with pytest.raises(ValueError):
            WindowedSeries("s", width_ns=10.0, kind="bogus")
        with pytest.raises(ValueError):
            WindowedSeries("s", width_ns=10.0, max_windows=0)


class TestWindowedSeriesLevel:
    def test_dwell_split_exactly_at_boundaries(self):
        s = WindowedSeries("q", width_ns=100.0, kind="level")
        s.record_level(0.0, 4.0)   # level 4 from t=0
        s.record_level(150.0, 0.0)  # drops at t=150
        s.record_level(200.0, 0.0)  # close window 1
        stats = [s.window_stats(w) for w in s.windows()]
        # Window 0: level 4 the whole 100ns -> mean 4.
        assert stats[0]["mean"] == pytest.approx(4.0)
        # Window 1: 4 for 50ns, 0 for 50ns -> mean 2.
        assert stats[1]["mean"] == pytest.approx(2.0)

    def test_gap_windows_carry_the_standing_level(self):
        s = WindowedSeries("q", width_ns=100.0, kind="level")
        s.record_level(0.0, 3.0)
        s.record_level(350.0, 3.0)  # no change, just advance time
        stats = [s.window_stats(w) for w in s.windows()]
        assert [st["mean"] for st in stats[:3]] == pytest.approx(
            [3.0, 3.0, 3.0]
        )

    def test_adjust_shifts_the_level(self):
        s = WindowedSeries("q", width_ns=100.0, kind="level")
        s.adjust(0.0, 2.0)
        s.adjust(50.0, -1.0)
        assert s.level == 1.0
        s.record_level(100.0, 1.0)
        first = s.window_stats(s.windows()[0])
        assert first["mean"] == pytest.approx(1.5)  # 2 for 50ns, 1 for 50ns


class TestWindowedSeriesRate:
    def test_rate_is_total_over_width(self):
        s = WindowedSeries("bytes", width_ns=100.0, kind="rate")
        s.add(10.0, 400.0)
        s.add(90.0, 600.0)
        stats = s.window_stats(s.windows()[0])
        assert stats["total"] == 1000.0
        assert stats["rate"] == pytest.approx(10.0)

    def test_gap_synthesizes_zero_windows(self):
        s = WindowedSeries("bytes", width_ns=100.0, kind="rate")
        s.add(10.0, 1.0)
        s.add(410.0, 1.0)
        stats = [s.window_stats(w) for w in s.windows()]
        assert [st["index"] for st in stats] == [0, 1, 2, 3, 4]
        assert [st["total"] for st in stats[1:4]] == [0.0, 0.0, 0.0]
        assert s.dropped == 0


class TestWindowedSeriesBounds:
    def test_retention_is_bounded_and_drops_counted(self):
        s = WindowedSeries("s", width_ns=10.0, max_windows=4)
        for i in range(10):
            s.observe(i * 10.0, 1.0)
        assert len(s.closed) == 4
        assert s.dropped == 5  # 9 closed windows, 4 retained
        assert len(s.windows()) == 5  # + the open one

    def test_huge_time_jump_materializes_bounded_gap(self):
        s = WindowedSeries("s", width_ns=1.0, max_windows=8, kind="rate")
        s.add(0.0, 1.0)
        s.add(1_000_000.0, 1.0)  # a million-window jump
        assert len(s.windows()) <= 9
        # Everything not materialized is accounted for.
        assert s.dropped >= 1_000_000 - 10

    def test_sum_over_is_window_aligned(self):
        s = WindowedSeries("s", width_ns=100.0, kind="rate")
        s.add(50.0, 1.0)
        s.add(150.0, 2.0)
        s.add(250.0, 4.0)
        total, count = s.sum_over(100.0, 299.0)
        assert total == 6.0 and count == 2
        # An interval ending inside window 0 still includes all of it.
        assert s.sum_over(0.0, 10.0)[0] == 1.0
        assert s.sum_over(1_000.0, 2_000.0) == (0.0, 0)

    def test_memory_estimate_grows_with_retention(self):
        s = WindowedSeries("s", width_ns=10.0, max_windows=16)
        empty = s.memory_bytes()
        for i in range(8):
            s.observe(i * 10.0, 1.0)
        assert s.memory_bytes() > empty

    def test_snapshot_limit(self):
        s = WindowedSeries("s", width_ns=10.0)
        for i in range(6):
            s.observe(i * 10.0, 1.0)
        snap = s.snapshot(limit=3)
        assert len(snap["windows"]) == 3
        assert snap["windows"][-1]["index"] == 5


class TestHubWatchers:
    def test_watch_counter_folds_deltas(self):
        obs = Observability()
        counter = obs.counter("jobs.done")
        obs.telemetry.watch_counter(counter)
        obs.telemetry.poll(0.0)  # baseline
        counter.inc(3)
        obs.telemetry.poll(100_000.0)
        counter.inc(5)
        obs.telemetry.poll(200_000.0)
        series = obs.telemetry.get_series("jobs.done")
        stats = [series.window_stats(w) for w in series.windows()]
        # The first poll only sets the baseline; deltas land after it.
        assert [st["index"] for st in stats] == [1, 2]
        assert [st["total"] for st in stats] == [3.0, 5.0]

    def test_rewatching_same_series_does_not_double_fold(self):
        obs = Observability()
        counter = obs.counter("jobs.done")
        obs.telemetry.watch_counter(counter)
        obs.telemetry.watch_counter(counter)  # e.g. a rebuilt runtime
        obs.telemetry.poll(0.0)
        counter.inc(4)
        obs.telemetry.poll(100_000.0)
        series = obs.telemetry.get_series("jobs.done")
        assert series.window_stats(series.windows()[-1])["total"] == 4.0

    def test_watch_gauge_samples_level(self):
        obs = Observability()
        gauge = obs.gauge("depth")
        gauge.set(2.0)
        obs.telemetry.watch_gauge(gauge)
        obs.telemetry.poll(0.0)
        gauge.set(6.0)
        obs.telemetry.poll(50_000.0)
        obs.telemetry.poll(100_000.0)
        series = obs.telemetry.get_series("depth")
        first = series.window_stats(series.windows()[0])
        assert first["mean"] == pytest.approx(4.0)  # 2 then 6, half each

    def test_watch_latency_folds_in_window_histogram_deltas(self):
        obs = Observability()
        hist = obs.registry.latency("rpc")
        obs.telemetry.watch_latency(hist)
        hist.observe(1_000.0)
        hist.observe(3_000.0)
        obs.telemetry.poll(100_000.0)
        hist.observe(9_000.0)
        obs.telemetry.poll(200_000.0)
        series = obs.telemetry.get_series("rpc")
        stats = [series.window_stats(w) for w in series.windows()]
        by_index = {st["index"]: st for st in stats}
        assert by_index[1]["count"] == 2
        assert by_index[1]["mean"] == pytest.approx(2_000.0)
        assert by_index[2]["count"] == 1
        assert "p95" in by_index[1]

    def test_series_kind_conflict_raises(self):
        hub = TelemetryHub()
        hub.series("x", "rate")
        with pytest.raises(TypeError, match="already registered"):
            hub.series("x", "level")

    def test_pump_polls_on_engine_cadence(self):
        engine = Engine()
        obs = Observability(engine=engine)
        hub = obs.telemetry
        engine.process(hub.pump(engine, interval_ns=1_000.0))
        engine.run(until=10_500.0)
        assert hub.polls == 11  # t=0 through t=10000

    def test_self_metering_exposed_via_registry(self):
        obs = Observability()
        obs.telemetry.record("x", 0.0, 1.0)
        snap = obs.registry.snapshot()
        assert snap["obs.telemetry.series"]["value"] == 1.0
        assert snap["obs.telemetry.samples"]["value"] == 1.0
        assert snap["obs.telemetry.memory_bytes"]["value"] > 0.0

    def test_data_round_trip_shape(self):
        obs = Observability()
        obs.telemetry.record("lat", 0.0, 5.0)
        data = obs.telemetry.data()
        assert data["series"]["lat"]["kind"] == "sample"
        assert data["self"]["samples"] == 1
        assert "alerts" in data and "hotness" in data


class TestSloFeedGating:
    def test_ad_hoc_workloads_get_no_series(self):
        obs = Observability()
        obs.slo.record("one-shot-job", 5_000.0)
        assert obs.telemetry.names() == []

    def test_policy_workloads_get_three_series(self):
        obs = Observability()
        obs.slo.set_policy("web", target_ns=10_000.0)
        obs.slo.record("web", 5_000.0)
        assert set(obs.telemetry.names()) == {
            "slo.total/web", "slo.missed/web", "slo.latency/web"
        }

    def test_rule_only_workloads_also_tracked(self):
        obs = Observability()
        obs.telemetry.alerts.add_rule(
            BurnRateRule("batch", fast_ns=1e5, slow_ns=1e6)
        )
        obs.slo.record("batch", 5_000.0)
        assert "slo.total/batch" in obs.telemetry


class _Clock:
    """A settable stand-in for the engine clock."""

    def __init__(self):
        self.now = 0.0


def _feed(obs, workload, now, latency, n):
    obs.engine.now = now
    for _ in range(n):
        obs.slo.record(workload, latency)


class TestAlertEngine:
    W = 100_000.0  # hub default window

    def _obs(self):
        obs = Observability(engine=_Clock())
        obs.slo.set_policy("web", target_ns=10_000.0, objective=0.9)
        obs.telemetry.alerts.add_rule(BurnRateRule(
            "web", fast_ns=2 * self.W, slow_ns=10 * self.W,
            open_above=2.0, close_below=1.0, min_samples=5,
        ))
        return obs

    def test_opens_on_sustained_fast_and_slow_burn(self):
        obs = self._obs()
        # budget = 0.1; all-miss traffic burns at 10x in every window.
        _feed(obs, "web", 0.0, 50_000.0, 6)
        assert "web" in obs.telemetry.alerts.active
        assert obs.telemetry.alerts.opened == 1
        alert = obs.telemetry.alerts.active["web"]
        assert alert.open_fast > 2.0 and alert.open_slow > 2.0

    def test_min_samples_suppresses_blips(self):
        obs = self._obs()
        _feed(obs, "web", 0.0, 50_000.0, 4)  # all misses, but < 5 samples
        assert obs.telemetry.alerts.active == {}

    def test_clean_traffic_never_alerts(self):
        obs = self._obs()
        _feed(obs, "web", 0.0, 1_000.0, 50)
        obs.telemetry.poll(5 * self.W)
        assert obs.telemetry.alerts.opened == 0

    def test_closes_with_hysteresis_after_recovery(self):
        obs = self._obs()
        _feed(obs, "web", 0.0, 50_000.0, 6)
        assert "web" in obs.telemetry.alerts.active
        # Healthy traffic; once the bad window leaves both trailing
        # windows, burn drops to 0 and the alert closes.
        for i in range(1, 12):
            _feed(obs, "web", i * self.W, 1_000.0, 6)
        assert obs.telemetry.alerts.active == {}
        assert obs.telemetry.alerts.closed == 1
        closed = obs.telemetry.alerts.log[-1]
        assert closed.closed_at > closed.opened_at
        assert closed.peak_burn > 2.0

    def test_sweep_closes_when_traffic_stops(self):
        obs = self._obs()
        _feed(obs, "web", 0.0, 50_000.0, 6)
        assert "web" in obs.telemetry.alerts.active
        # No further observations: a poll far in the future finds no
        # samples in either window -> burns are None -> close.
        obs.telemetry.poll(50 * self.W)
        assert obs.telemetry.alerts.active == {}

    def test_open_close_recorded_as_spans_and_counters(self):
        obs = self._obs()
        obs.enable("alert")
        _feed(obs, "web", 0.0, 50_000.0, 6)
        for i in range(1, 12):
            _feed(obs, "web", i * self.W, 1_000.0, 6)
        events = [e for e in obs.trace.events if e.category == "alert"]
        names = [e.name for e in events]
        assert "open" in names and "close" in names and "burn" in names
        snap = obs.registry.snapshot()
        assert snap["telemetry.alerts_opened"]["value"] == 1.0
        assert snap["telemetry.alerts_closed"]["value"] == 1.0

    def test_finalize_closes_spans_but_keeps_alert_open(self):
        obs = self._obs()
        obs.enable("alert")
        _feed(obs, "web", 0.0, 50_000.0, 6)
        obs.telemetry.finalize(2 * self.W)
        # Still an active (unresolved) alert in the data...
        assert len(obs.telemetry.alerts.active) == 1
        # ...but its span closed with the still_open marker.
        spans = [e for e in obs.trace.events
                 if e.category == "alert" and e.begin is not None]
        assert spans and spans[0].fields.get("still_open") is True

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            BurnRateRule("w", fast_ns=1e6, slow_ns=1e5)  # fast > slow
        with pytest.raises(ValueError):
            BurnRateRule("w", fast_ns=1e5, slow_ns=1e6,
                         open_above=1.0, close_below=2.0)
        with pytest.raises(ValueError):
            BurnRateRule("w", fast_ns=0.0, slow_ns=1e6)
        with pytest.raises(ValueError):
            BurnRateRule("w", fast_ns=1e5, slow_ns=1e6, min_samples=0)


class TestSampledHotness:
    def test_every_nth_access_sampled_deterministically(self):
        sketch = SampledHotness(rate=4, k=8)
        for i in range(16):
            sketch.record_access("r", "dev", 100.0, float(i))
        assert sketch.seen == 16
        assert sketch.sampled == 4

    def test_weight_is_unbiased_in_expectation(self):
        sketch = SampledHotness(rate=4, k=8)
        for i in range(400):
            sketch.record_access("r", None, 100.0, 0.0)
        # 100 samples x (100 * 4) = 40000 = the true bytes touched.
        assert sketch.hotness("r") == pytest.approx(400 * 100.0)

    def test_space_saving_keeps_memory_bounded(self):
        sketch = SampledHotness(rate=1, k=4)  # capacity 8
        for i in range(1000):
            sketch.record_access(f"r{i}", None, 10.0, 0.0)
        assert len(sketch._regions) <= sketch.capacity
        assert sketch.evictions > 0
        assert sketch.memory_bytes() <= sketch.capacity * 2 * 120

    def test_heavy_hitters_survive_eviction_pressure(self):
        sketch = SampledHotness(rate=1, k=4)
        for round_ in range(50):
            sketch.record_access("hot", None, 1000.0, 0.0)
            sketch.record_access(f"cold{round_}", None, 1.0, 0.0)
        top = [key for key, _ in sketch.top(1)]
        assert top == ["hot"]

    def test_pointers_tracker_api_compat(self):
        from repro.memory.pointers import HotnessTracker

        full = HotnessTracker(half_life_ns=1e6)
        sampled = SampledHotness(rate=1, k=8, half_life_ns=1e6)
        for tracker in (full, sampled):
            tracker.record(1, 4096.0, 0.0)
            tracker.record(2, 1024.0, 10.0)
        assert full.hotness(1, 10.0) > 0 and sampled.hotness(1, 10.0) > 0
        assert [k for k, _ in full.ranked(10.0)] == [
            k for k, _ in sampled.ranked(10.0)
        ]
        full.forget(1)
        sampled.forget(1)
        assert full.hotness(1, 10.0) == sampled.hotness(1, 10.0) == 0.0

    def test_decay_halves_score_per_half_life(self):
        sketch = SampledHotness(rate=1, k=4, half_life_ns=100.0)
        sketch.record_access("r", None, 1000.0, 0.0)
        assert sketch.hotness("r", 100.0) == pytest.approx(500.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SampledHotness(rate=0)
        with pytest.raises(ValueError):
            SampledHotness(k=0)
        with pytest.raises(ValueError):
            SampledHotness(half_life_ns=-1.0)


class TestHubConfigure:
    def test_window_width_applies_to_new_series(self):
        hub = TelemetryHub()
        hub.configure(window_ns=50.0)
        s = hub.series("x")
        assert s.width == 50.0

    def test_hotness_resize_replaces_sketch(self):
        hub = TelemetryHub()
        hub.configure(hotness_rate=8, hotness_k=4)
        assert hub.hotness.rate == 8 and hub.hotness.k == 4

    def test_invalid_configure(self):
        hub = TelemetryHub()
        with pytest.raises(ValueError):
            hub.configure(window_ns=0.0)
        with pytest.raises(ValueError):
            hub.configure(max_windows=0)
