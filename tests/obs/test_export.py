"""Exporters, dashboard rendering, and the obs_report CLI."""

import json
import pathlib
import sys

import pytest

from repro.dataflow import Job, RegionUsage, Task, WorkSpec
from repro.hardware import Cluster
from repro.obs import Observability
from repro.obs.dashboard import render_dashboard, sparkline
from repro.obs.export import load_jsonl, to_chrome_trace
from repro.runtime import RuntimeSystem
from repro.sim.engine import Engine

KiB = 1024
MiB = 1024 * KiB

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent.parent / "scripts")
)
import obs_report  # noqa: E402


@pytest.fixture
def traced_run():
    """A real job run with every relevant category recording."""
    cluster = Cluster.preset("pooled-rack")
    cluster.obs.enable("job", "task", "profile", "flow", "placement", "sched")
    rts = RuntimeSystem(cluster)
    job = Job("pipe")
    a = job.add_task(Task("produce", work=WorkSpec(
        ops=1e5, output=RegionUsage(2 * MiB))))
    b = job.add_task(Task("sink", work=WorkSpec(
        ops=1e4, input_usage=RegionUsage(0))))
    job.connect(a, b)
    stats = rts.run_job(job)
    assert stats.ok
    return cluster


class TestJsonlRoundTrip:
    def test_load_matches_live_data(self, traced_run, tmp_path):
        path = tmp_path / "run.jsonl"
        lines = traced_run.obs.export_jsonl(str(path))
        assert lines == len(path.read_text().splitlines())
        loaded = load_jsonl(str(path))
        live = traced_run.obs.data()
        assert loaded["meta"]["now"] == live["meta"]["now"]
        assert loaded["meta"]["retained"] == live["meta"]["retained"]
        assert len(loaded["events"]) == len(live["events"])
        assert set(loaded["metrics"]) >= set(live["metrics"])

    def test_span_events_carry_begin_and_ids(self, traced_run, tmp_path):
        path = tmp_path / "run.jsonl"
        traced_run.obs.export_jsonl(str(path))
        spans = [e for e in load_jsonl(str(path))["events"] if "begin" in e]
        assert spans
        job_span = [e for e in spans if e["cat"] == "job"][0]
        task_spans = [e for e in spans if e["cat"] == "task"]
        assert all(t["parent"] == job_span["span"] for t in task_spans)

    def test_non_json_field_values_stringified(self, tmp_path):
        obs = Observability(engine=Engine())
        obs.event("cat", "thing", weird=object())
        path = tmp_path / "odd.jsonl"
        obs.export_jsonl(str(path))
        loaded = load_jsonl(str(path))
        assert isinstance(loaded["events"][0]["fields"]["weird"], str)

    def test_telemetry_section_round_trips(self, tmp_path):
        obs = Observability()
        obs.telemetry.record("lat", 50_000.0, 123.0)
        obs.telemetry.record_level("depth", 10_000.0, 3.0)
        obs.telemetry.hotness.record_access("r1", "dev", 4096.0, 0.0)
        path = tmp_path / "telem.jsonl"
        obs.export_jsonl(str(path))
        loaded = load_jsonl(str(path))["telemetry"]
        live = obs.telemetry.data()
        assert loaded["window_ns"] == live["window_ns"]
        assert set(loaded["series"]) == {"lat", "depth"}
        # The per-series kind survives the record-kind collision.
        assert loaded["series"]["lat"]["kind"] == "sample"
        assert loaded["series"]["depth"]["kind"] == "level"
        assert (loaded["series"]["lat"]["windows"]
                == live["series"]["lat"]["windows"])
        assert loaded["hotness"]["seen"] == 1


class TestChromeTrace:
    def test_spans_become_duration_events(self, traced_run, tmp_path):
        path = tmp_path / "trace.json"
        traced_run.obs.write_chrome_trace(str(path))
        doc = json.loads(path.read_text())
        phs = {e["ph"] for e in doc["traceEvents"]}
        assert "X" in phs and "M" in phs
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert all(e["dur"] >= 0 for e in xs)

    def test_rows_keyed_by_task_then_category(self, traced_run):
        events = to_chrome_trace(traced_run.trace.events)
        names = [e["args"]["name"] for e in events if e["ph"] == "M"]
        assert any(name.startswith("pipe/") for name in names)  # task rows
        assert "flow" in names or "placement" in names  # category rows


class TestSparkline:
    def test_resamples_piecewise_constant_series(self):
        line = sparkline([(0.0, 0.0), (5.0, 2.0)], width=4, until=10.0, peak=2.0)
        assert len(line) == 4
        assert line[0] == " " and line[-1] == "█"

    def test_empty_and_degenerate_series(self):
        assert sparkline([]) == ""
        assert sparkline([(3.0, 1.0)]) == "█"
        assert sparkline([(3.0, 0.0)]) == " "

    def test_single_sample_with_later_until(self):
        # One change point plus an `until` horizon is a valid window:
        # the level holds from the sample to the horizon.
        line = sparkline([(3.0, 1.0)], width=5, until=8.0)
        assert line == "█████"

    def test_until_before_first_change_point(self):
        # A horizon at/before the first sample collapses to the
        # single-block degenerate rendering, not a crash or negative
        # window.
        assert sparkline([(5.0, 2.0), (9.0, 0.0)], until=5.0) == "█"
        assert sparkline([(5.0, 0.0), (9.0, 2.0)], until=1.0) == " "

    def test_explicit_peak_zero_falls_back_to_series_max(self):
        # peak=0 cannot scale anything; it must behave like the
        # default (series max), not divide by zero.
        with_zero = sparkline([(0.0, 1.0), (5.0, 3.0)], width=4,
                              until=10.0, peak=0)
        with_default = sparkline([(0.0, 1.0), (5.0, 3.0)], width=4,
                                 until=10.0)
        assert with_zero == with_default
        assert with_zero[-1] == "█"

    def test_non_monotone_sample_times_render_as_sorted(self):
        shuffled = [(5.0, 2.0), (0.0, 0.0), (9.0, 1.0)]
        ordered = sorted(shuffled)
        assert (sparkline(shuffled, width=6, until=10.0)
                == sparkline(ordered, width=6, until=10.0))


class TestDashboard:
    def test_renders_all_sections_from_run(self, traced_run):
        text = traced_run.obs.dashboard()
        assert "Jobs" in text
        assert "pipe" in text
        assert "Device utilization" in text
        assert "Fabric links" in text
        assert "Trace rings" in text

    def test_job_filter(self, traced_run):
        assert "pipe" in traced_run.obs.dashboard(job="pipe")
        assert "pipe" not in traced_run.obs.dashboard(job="other")

    def test_empty_data_placeholder(self):
        assert render_dashboard({}) == "(no observability data recorded)"


class TestObsReportCli:
    def test_renders_dashboard_from_export(self, traced_run, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        traced_run.obs.export_jsonl(str(path))
        assert obs_report.main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "Jobs" in out and "pipe" in out
        assert "Device utilization" in out

    def test_metrics_flag_lists_metrics(self, traced_run, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        traced_run.obs.export_jsonl(str(path))
        assert obs_report.main([str(path), "--metrics"]) == 0
        assert "jobs.completed" in capsys.readouterr().out

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        assert obs_report.main([str(tmp_path / "nope.jsonl")]) == 1
        assert "error" in capsys.readouterr().err

    def test_job_filter_is_assertive(self, traced_run, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        traced_run.obs.export_jsonl(str(path))
        assert obs_report.main([str(path), "--job", "pipe"]) == 0
        capsys.readouterr()
        assert obs_report.main([str(path), "--job", "ghost"]) == 1
        err = capsys.readouterr().err
        assert "nothing recorded for job 'ghost'" in err

    def test_category_filter_is_assertive(self, traced_run, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        traced_run.obs.export_jsonl(str(path))
        assert obs_report.main([str(path), "--category", "flow"]) == 0
        assert "events retained" in capsys.readouterr().out
        assert obs_report.main([str(path), "--category", "nonesuch"]) == 1
        assert "no events of category" in capsys.readouterr().err
