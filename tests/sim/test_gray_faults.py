"""Tests for fail-slow (gray-failure) fault primitives.

Three properties matter here:

1. **Physical effect, blind control plane.**  ``degrade_link`` scales
   only the waterfill capacity; the nominal ``link.bandwidth`` every
   cost model reads stays untouched.
2. **Solver compatibility.**  Degradation re-solves through the same
   shared ``waterfill``, so incremental and reference modes agree.
3. **Exact cancel accounting.**  ``FlowNetwork.cancel`` settles the
   flow before removing it: ``event._progress`` is the exact byte
   count, per-link ``bytes_carried`` is never double-counted when a
   retry lands on the same links, and the flow slot is released.
"""

import pytest

from repro.sim import Engine, FlowNetwork, Link
from repro.sim.faults import RESTORE_OF, FaultInjector, FaultKind
from repro.sim.flows import TransferTimeout
from repro.sim.rand import RandomStreams
from repro.sim.trace import TraceLog


def make_net(incremental=True):
    engine = Engine()
    net = FlowNetwork(engine)
    net.incremental = incremental
    return engine, net


class TestLinkDegradation:
    def test_degraded_link_slows_transfer_by_factor(self):
        engine, net = make_net()
        link = Link("l0", bandwidth=2.0, latency=0.0)
        net.degrade_link(link, 0.5)
        done = net.transfer([link], nbytes=1000.0)
        engine.run(until=done)
        assert engine.now == pytest.approx(1000.0)  # 1 B/ns, not 2

    def test_nominal_bandwidth_stays_advertised(self):
        _engine, net = make_net()
        link = Link("l0", bandwidth=2.0, latency=0.0)
        net.degrade_link(link, 0.25)
        assert link.bandwidth == 2.0  # the control plane's view
        assert link.effective_bandwidth == pytest.approx(0.5)
        assert "degraded" in repr(link)

    def test_mid_flight_degradation_reshapes_the_flow(self):
        engine, net = make_net()
        link = Link("l0", bandwidth=1.0, latency=0.0)
        done = net.transfer([link], nbytes=1000.0)
        engine.run(until=500.0)  # 500 B across at 1 B/ns
        net.degrade_link(link, 0.5)
        engine.run(until=done)
        # Remaining 500 B at 0.5 B/ns -> 1000 ns more.
        assert engine.now == pytest.approx(1500.0)

    def test_restore_returns_to_nominal(self):
        engine, net = make_net()
        link = Link("l0", bandwidth=1.0, latency=0.0)
        net.degrade_link(link, 0.1)
        net.restore_link_speed(link)
        assert link.degrade_factor == 1.0
        done = net.transfer([link], nbytes=100.0)
        engine.run(until=done)
        assert engine.now == pytest.approx(100.0)

    def test_degradation_bumps_topology_epoch(self):
        _engine, net = make_net()
        link = Link("l0", bandwidth=1.0, latency=0.0)
        before = net.topology_epoch
        net.degrade_link(link, 0.5)
        assert net.topology_epoch == before + 1
        net.degrade_link(link, 0.5)  # no-op: same factor
        assert net.topology_epoch == before + 1
        net.restore_link_speed(link)
        assert net.topology_epoch == before + 2

    def test_invalid_factor_rejected(self):
        _engine, net = make_net()
        link = Link("l0", bandwidth=1.0, latency=0.0)
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                net.degrade_link(link, bad)

    @pytest.mark.parametrize("incremental", [True, False])
    def test_both_solver_modes_agree_under_degradation(self, incremental):
        engine, net = make_net(incremental)
        shared = Link("shared", bandwidth=4.0, latency=0.0)
        spur = Link("spur", bandwidth=1.0, latency=0.0)
        d1 = net.transfer([shared], nbytes=1000.0)
        d2 = net.transfer([shared, spur], nbytes=1000.0)
        net.degrade_link(shared, 0.5)  # capacity 2: 1 B/ns each
        engine.run(until=engine.all_of([d1, d2]))
        assert engine.now == pytest.approx(1000.0)


class TestCancelAccounting:
    def test_cancel_settles_exact_progress_and_releases_flow(self):
        engine, net = make_net()
        link = Link("l0", bandwidth=1.0, latency=0.0)
        done = net.transfer([link], nbytes=1000.0)
        engine.run(until=400.0)
        assert net.cancel(done, TransferTimeout(1000.0, 400.0))
        assert done._progress == pytest.approx(400.0)
        assert link.bytes_carried == pytest.approx(400.0)
        assert net.active_flows == 0

    def test_retry_on_same_link_never_double_counts_bytes(self):
        """Regression (timeout-path audit): a cancelled attempt's settled
        bytes plus a successful retry on the *same* link must sum to
        exactly progress + payload — no re-crediting of the partial
        bytes when the flow is torn down or when the retry lands."""
        engine, net = make_net()
        link = Link("l0", bandwidth=1.0, latency=0.0)
        first = net.transfer([link], nbytes=1000.0)
        engine.run(until=250.0)
        net.cancel(first, TransferTimeout(1000.0, 250.0))
        wasted = first._progress
        assert wasted == pytest.approx(250.0)
        retry = net.transfer([link], nbytes=1000.0)
        engine.run(until=retry)
        assert link.bytes_carried == pytest.approx(wasted + 1000.0)

    def test_cancel_in_latency_phase_reports_zero_progress(self):
        engine, net = make_net()
        link = Link("l0", bandwidth=1.0, latency=500.0)
        done = net.transfer([link], nbytes=1000.0)
        engine.run(until=100.0)  # still inside the 500 ns latency phase
        assert net.cancel(done, TransferTimeout(1000.0, 100.0))
        assert done._progress == 0.0
        assert link.bytes_carried == 0.0
        engine.run()  # the defused event must not explode the engine

    def test_cancel_frees_capacity_for_sharing_flows(self):
        engine, net = make_net()
        link = Link("l0", bandwidth=2.0, latency=0.0)
        victim = net.transfer([link], nbytes=10_000.0)
        keeper = net.transfer([link], nbytes=1000.0)
        engine.run(until=100.0)  # each at 1 B/ns: keeper moved 100 B
        net.cancel(victim, TransferTimeout(10_000.0, 100.0))
        engine.run(until=keeper)
        # Remaining 900 B at the full 2 B/ns after the cancel.
        assert engine.now == pytest.approx(100.0 + 450.0)


class TestDegradationStorms:
    def make_injector(self):
        engine = Engine()
        injector = FaultInjector(engine, RandomStreams(7), TraceLog())
        return engine, injector

    def test_every_episode_schedules_its_restore(self):
        engine, injector = self.make_injector()
        seen = []
        injector.on(FaultKind.LINK_DEGRADED,
                    lambda f: seen.append(("slow", f.target, f.time)))
        injector.on(FaultKind.LINK_RESTORED,
                    lambda f: seen.append(("restored", f.target, f.time)))
        n = injector.schedule_degradations(
            FaultKind.LINK_DEGRADED, ["a", "b"], rate_per_ns=1e-3,
            horizon=50_000.0, duration_ns=2_000.0, factor=0.2,
        )
        engine.run()
        assert n > 0
        slows = [s for s in seen if s[0] == "slow"]
        restores = [s for s in seen if s[0] == "restored"]
        assert len(slows) == n
        assert len(restores) == n

    def test_episode_carries_factor_detail(self):
        engine, injector = self.make_injector()
        factors = []
        injector.on(FaultKind.DEVICE_SLOW,
                    lambda f: factors.append(f.detail["factor"]))
        injector.schedule_degradations(
            FaultKind.DEVICE_SLOW, ["dev"], rate_per_ns=1e-3,
            horizon=20_000.0, duration_ns=500.0, factor=0.05,
        )
        engine.run()
        assert factors and all(f == 0.05 for f in factors)

    def test_deterministic_for_fixed_seed(self):
        schedules = []
        for _ in range(2):
            engine, injector = self.make_injector()
            fired = []
            injector.on(FaultKind.DEVICE_SLOW,
                        lambda f: fired.append((f.time, f.target)))
            injector.schedule_degradations(
                FaultKind.DEVICE_SLOW, ["x", "y", "z"], rate_per_ns=5e-4,
                horizon=100_000.0, duration_ns=1_000.0,
            )
            engine.run()
            schedules.append(fired)
        assert schedules[0] == schedules[1]

    def test_validation(self):
        _engine, injector = self.make_injector()
        good = dict(rate_per_ns=1e-3, horizon=1000.0, duration_ns=10.0)
        with pytest.raises(ValueError, match="not a degradation kind"):
            injector.schedule_degradations(
                FaultKind.NODE_CRASH, ["a"], **good)
        with pytest.raises(ValueError, match="factor"):
            injector.schedule_degradations(
                FaultKind.DEVICE_SLOW, ["a"], factor=0.0, **good)
        with pytest.raises(ValueError, match="rate"):
            injector.schedule_degradations(
                FaultKind.DEVICE_SLOW, ["a"], rate_per_ns=0.0,
                horizon=1000.0, duration_ns=10.0)
        with pytest.raises(ValueError, match="duration"):
            injector.schedule_degradations(
                FaultKind.DEVICE_SLOW, ["a"], rate_per_ns=1e-3,
                horizon=1000.0, duration_ns=0.0)
        with pytest.raises(ValueError, match="targets"):
            injector.schedule_degradations(
                FaultKind.DEVICE_SLOW, [], **good)

    def test_restore_pairs_cover_every_degradation_kind(self):
        for kind, restore in RESTORE_OF.items():
            assert kind is not restore
            assert restore not in RESTORE_OF
