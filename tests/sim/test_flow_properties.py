"""Property-based tests for the flow network and the event kernel.

These pin the physical invariants of the substrate everything else
trusts: work conservation (bytes in = bytes out), capacity respect, and
bit-for-bit determinism of whole simulations.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine, FlowNetwork, Link


@st.composite
def transfer_scripts(draw):
    """Random links + staggered transfers over random routes."""
    n_links = draw(st.integers(1, 5))
    links = [
        (draw(st.floats(0.5, 50.0)), draw(st.floats(0.0, 500.0)))
        for _ in range(n_links)
    ]
    n_flows = draw(st.integers(1, 12))
    flows = []
    for _ in range(n_flows):
        route = draw(st.lists(st.integers(0, n_links - 1), min_size=1,
                              max_size=n_links, unique=True))
        flows.append((
            draw(st.floats(0.0, 1_000.0)),  # start time
            route,
            draw(st.integers(1, 100_000)),  # bytes
        ))
    return links, flows


class TestFlowProperties:
    @settings(max_examples=100, deadline=None)
    @given(script=transfer_scripts())
    def test_conservation_and_completion(self, script):
        """Every transfer completes, and each link carries exactly the
        bytes of the flows routed over it."""
        link_params, flows = script
        engine = Engine()
        net = FlowNetwork(engine)
        links = [
            Link(f"l{i}", bandwidth=bw, latency=lat)
            for i, (bw, lat) in enumerate(link_params)
        ]
        events = []
        expected_per_link = [0.0] * len(links)

        def launcher():
            now = 0.0
            for start, route_ids, nbytes in sorted(flows):
                if start > now:
                    yield engine.timeout(start - now)
                    now = start
                route = [links[i] for i in route_ids]
                events.append(net.transfer(route, float(nbytes)))
                for i in route_ids:
                    expected_per_link[i] += nbytes

        engine.process(launcher())
        engine.run()
        assert all(e.processed and e.ok for e in events)
        assert net.active_flows == 0
        for link, expected in zip(links, expected_per_link):
            assert link.bytes_carried == pytest.approx(expected, rel=1e-6)

    @settings(max_examples=60, deadline=None)
    @given(script=transfer_scripts())
    def test_rates_never_exceed_capacity(self, script):
        """At every rebalance instant, each link's aggregate allocated
        rate stays within its capacity."""
        link_params, flows = script
        engine = Engine()
        net = FlowNetwork(engine)
        links = [
            Link(f"l{i}", bandwidth=bw, latency=lat)
            for i, (bw, lat) in enumerate(link_params)
        ]
        violations = []

        def checked(_flows):
            for link in links:
                load = net.link_load(link)
                if load > link.bandwidth * (1 + 1e-9):
                    violations.append((link.name, load, link.bandwidth))

        net.on_rebalance.append(checked)

        def launcher():
            now = 0.0
            for start, route_ids, nbytes in sorted(flows):
                if start > now:
                    yield engine.timeout(start - now)
                    now = start
                net.transfer([links[i] for i in route_ids], float(nbytes))

        engine.process(launcher())
        engine.run()
        assert not violations

    @settings(max_examples=40, deadline=None)
    @given(script=transfer_scripts())
    def test_simulation_is_deterministic(self, script):
        """Two identical runs produce identical completion timestamps."""

        def run_once():
            link_params, flows = script
            engine = Engine()
            net = FlowNetwork(engine)
            links = [
                Link(f"l{i}", bandwidth=bw, latency=lat)
                for i, (bw, lat) in enumerate(link_params)
            ]
            stamps = []

            def launcher():
                now = 0.0
                for start, route_ids, nbytes in sorted(flows):
                    if start > now:
                        yield engine.timeout(start - now)
                        now = start
                    event = net.transfer(
                        [links[i] for i in route_ids], float(nbytes))
                    event.add_callback(lambda _e: stamps.append(engine.now))

            engine.process(launcher())
            engine.run()
            return stamps

        assert run_once() == run_once()

    @settings(max_examples=50, deadline=None)
    @given(
        bandwidth=st.floats(0.5, 100.0),
        nbytes=st.integers(1, 10_000_000),
        n_parallel=st.integers(1, 10),
    )
    def test_fair_share_finishes_equal_flows_together(
        self, bandwidth, nbytes, n_parallel
    ):
        """N identical flows over one link all complete at N*serial time."""
        engine = Engine()
        net = FlowNetwork(engine)
        link = Link("l", bandwidth=bandwidth, latency=0.0)
        events = [net.transfer([link], float(nbytes)) for _ in range(n_parallel)]
        engine.run()
        assert all(e.ok for e in events)
        expected = n_parallel * nbytes / bandwidth
        assert engine.now == pytest.approx(expected, rel=1e-6)
