"""Tests for tracing, time-weighted metrics, and the fault injector."""

import pytest

from repro.sim import Engine, FaultInjector, FaultKind, MetricRecorder, TraceLog
from repro.sim.rand import RandomStreams


class TestTraceLog:
    def test_emit_and_query(self):
        log = TraceLog()
        log.emit(1.0, "memory", "allocate", region="r1")
        log.emit(2.0, "memory", "free", region="r1")
        log.emit(3.0, "scheduler", "assign", task="t")
        assert len(log) == 3
        assert len(log.by_category("memory")) == 2
        assert len(log.by_name("allocate")) == 1
        assert log.by_name("allocate")[0].fields["region"] == "r1"

    def test_category_filter_drops_at_emission(self):
        log = TraceLog(enabled={"memory"})
        log.emit(1.0, "memory", "allocate")
        log.emit(2.0, "scheduler", "assign")
        assert len(log) == 1

    def test_clear_and_iterate(self):
        log = TraceLog()
        log.emit(1.0, "x", "y")
        assert list(log)
        log.clear()
        assert len(log) == 0

    def test_event_renders_readably(self):
        log = TraceLog()
        log.emit(1500.0, "memory", "allocate", region="r", size=64)
        text = str(log.events[0])
        assert "memory" in text and "allocate" in text and "size=64" in text


class TestMetricRecorder:
    def test_time_weighted_mean(self):
        recorder = MetricRecorder()
        recorder.record(0.0, 10.0)  # level 10 from t=0
        recorder.record(10.0, 20.0)  # level 20 from t=10
        assert recorder.time_weighted_mean(until=20.0) == pytest.approx(15.0)

    def test_adjust_occupancy_counting(self):
        recorder = MetricRecorder()
        recorder.adjust(0.0, +2)
        recorder.adjust(5.0, -1)
        assert recorder.level == 1
        assert recorder.maximum == 2
        assert recorder.time_weighted_mean(until=10.0) == pytest.approx(1.5)

    def test_time_cannot_go_backwards(self):
        recorder = MetricRecorder()
        recorder.record(5.0, 1.0)
        with pytest.raises(ValueError):
            recorder.record(4.0, 2.0)
        with pytest.raises(ValueError):
            recorder.time_weighted_mean(until=1.0)

    def test_no_samples_returns_current_level(self):
        assert MetricRecorder(initial=7.0).time_weighted_mean() == 7.0


class TestRandomStreams:
    def test_streams_are_independent_and_deterministic(self):
        a = RandomStreams(42)
        b = RandomStreams(42)
        assert a.stream("x").integers(0, 1000, 5).tolist() == \
            b.stream("x").integers(0, 1000, 5).tolist()
        assert a.stream("y").integers(0, 1000, 5).tolist() != \
            b.stream("x").integers(0, 1000, 5).tolist()

    def test_reset_rederives_identically(self):
        streams = RandomStreams(7)
        first = streams.stream("s").integers(0, 1000, 5).tolist()
        streams.reset()
        assert streams.stream("s").integers(0, 1000, 5).tolist() == first


class TestFaultInjector:
    def test_handlers_dispatch_by_kind(self):
        engine = Engine()
        injector = FaultInjector(engine)
        seen = []
        injector.on(FaultKind.NODE_CRASH, lambda f: seen.append(f.target))
        injector.inject_now(FaultKind.NODE_CRASH, "n1")
        injector.inject_now(FaultKind.LINK_DOWN, "l1")  # no handler: ignored
        assert seen == ["n1"]
        assert len(injector.history) == 2

    def test_inject_at_schedules_in_future(self):
        engine = Engine()
        injector = FaultInjector(engine)
        times = []
        injector.on(FaultKind.NODE_CRASH,
                    lambda f: times.append(engine.now))
        injector.inject_at(100.0, FaultKind.NODE_CRASH, "n1")
        with pytest.raises(ValueError):
            injector.inject_at(-1.0, FaultKind.NODE_CRASH, "n1")
        engine.run()
        assert times == [100.0]

    def test_poisson_schedule_is_deterministic_and_bounded(self):
        def run_once():
            engine = Engine()
            injector = FaultInjector(engine, RandomStreams(3))
            times = []
            injector.on(FaultKind.NODE_CRASH,
                        lambda f: times.append((engine.now, f.target)))
            n = injector.schedule_poisson(
                FaultKind.NODE_CRASH, ["a", "b"],
                rate_per_ns=1e-3, horizon=10_000.0,
            )
            engine.run()
            return n, times

        n1, times1 = run_once()
        n2, times2 = run_once()
        assert n1 == n2 and times1 == times2
        assert n1 == len(times1)
        assert all(t < 10_000.0 for t, _target in times1)
        assert n1 == pytest.approx(10, abs=8)  # ~rate * horizon

    def test_node_reboot_is_a_distinct_kind(self):
        """NODE_RESTART is the *request*, NODE_REBOOT the power-cycle
        instant a drain (or immediate repair) resolves it into."""
        assert FaultKind.NODE_REBOOT is not FaultKind.NODE_RESTART
        assert FaultKind.NODE_REBOOT.value == "node_reboot"

    def test_handlers_run_in_registration_order(self):
        # The recovery stack depends on this: the cluster fails devices
        # first, the memory manager marks regions lost second, and the
        # health monitor (registered last) observes the final state.
        engine = Engine()
        injector = FaultInjector(engine)
        order = []
        injector.on(FaultKind.NODE_CRASH, lambda f: order.append("cluster"))
        injector.on(FaultKind.NODE_CRASH, lambda f: order.append("memory"))
        injector.on(FaultKind.NODE_CRASH, lambda f: order.append("health"))
        injector.inject_now(FaultKind.NODE_CRASH, "n1")
        assert order == ["cluster", "memory", "health"]

    def test_detail_fields_reach_handlers_and_history(self):
        engine = Engine()
        injector = FaultInjector(engine)
        seen = []
        injector.on(FaultKind.MEMORY_CORRUPTION,
                    lambda f: seen.append(f.detail))
        injector.inject_now(FaultKind.MEMORY_CORRUPTION, "region-x", bits=3)
        assert seen == [{"bits": 3}]
        assert injector.history[-1].detail == {"bits": 3}

    def test_poisson_validation(self):
        injector = FaultInjector(Engine())
        with pytest.raises(ValueError):
            injector.schedule_poisson(FaultKind.NODE_CRASH, ["a"],
                                      rate_per_ns=0.0, horizon=1.0)
        with pytest.raises(ValueError):
            injector.schedule_poisson(FaultKind.NODE_CRASH, [],
                                      rate_per_ns=1.0, horizon=1.0)
