"""Unit tests for the discrete-event kernel (engine + events)."""

import pytest

from repro.sim import Engine, Interrupt
from repro.sim.engine import EmptySchedule


def test_clock_starts_at_zero():
    assert Engine().now == 0.0


def test_timeout_advances_clock():
    engine = Engine()
    engine.timeout(100.0)
    engine.run()
    assert engine.now == 100.0


def test_run_until_time_stops_exactly():
    engine = Engine()
    engine.timeout(50.0)
    engine.timeout(500.0)
    engine.run(until=100.0)
    assert engine.now == 100.0


def test_run_until_past_raises():
    engine = Engine()
    engine.timeout(10.0)
    engine.run()
    with pytest.raises(ValueError):
        engine.run(until=5.0)


def test_step_on_empty_raises():
    with pytest.raises(EmptySchedule):
        Engine().step()


def test_process_returns_value():
    engine = Engine()

    def proc():
        yield engine.timeout(10.0)
        return 42

    result = engine.run(until=engine.process(proc()))
    assert result == 42
    assert engine.now == 10.0


def test_process_sequential_timeouts_accumulate():
    engine = Engine()
    times = []

    def proc():
        for _ in range(3):
            yield engine.timeout(5.0)
            times.append(engine.now)

    engine.process(proc())
    engine.run()
    assert times == [5.0, 10.0, 15.0]


def test_process_join():
    engine = Engine()

    def child():
        yield engine.timeout(30.0)
        return "done"

    def parent():
        value = yield engine.process(child())
        return (engine.now, value)

    result = engine.run(until=engine.process(parent()))
    assert result == (30.0, "done")


def test_process_failure_propagates_to_run():
    engine = Engine()

    def proc():
        yield engine.timeout(1.0)
        raise ValueError("boom")

    with pytest.raises(ValueError, match="boom"):
        engine.run(until=engine.process(proc()))


def test_process_can_catch_failed_event():
    engine = Engine()
    event = engine.event()

    def failer():
        yield engine.timeout(5.0)
        event.fail(RuntimeError("nope"))

    def waiter():
        try:
            yield event
        except RuntimeError as exc:
            return str(exc)

    engine.process(failer())
    result = engine.run(until=engine.process(waiter()))
    assert result == "nope"


def test_interrupt_wakes_waiting_process():
    engine = Engine()
    record = {}

    def sleeper():
        try:
            yield engine.timeout(1000.0)
        except Interrupt as interrupt:
            record["cause"] = interrupt.cause
            record["time"] = engine.now

    proc = engine.process(sleeper())

    def interrupter():
        yield engine.timeout(10.0)
        proc.interrupt("wake up")

    engine.process(interrupter())
    engine.run()
    assert record == {"cause": "wake up", "time": 10.0}


def test_kill_terminates_process_quietly():
    engine = Engine()
    reached_end = []

    def victim():
        yield engine.timeout(1000.0)
        reached_end.append(True)

    proc = engine.process(victim())

    def killer():
        yield engine.timeout(5.0)
        proc.kill()

    engine.process(killer())
    engine.run()
    assert not reached_end
    assert not proc.is_alive
    assert proc.ok


def test_all_of_waits_for_all():
    engine = Engine()

    def proc():
        t1 = engine.timeout(10.0, value="a")
        t2 = engine.timeout(20.0, value="b")
        results = yield engine.all_of([t1, t2])
        return (engine.now, sorted(results.values()))

    result = engine.run(until=engine.process(proc()))
    assert result == (20.0, ["a", "b"])


def test_any_of_fires_on_first():
    engine = Engine()

    def proc():
        t1 = engine.timeout(10.0, value="fast")
        t2 = engine.timeout(20.0, value="slow")
        results = yield engine.any_of([t1, t2])
        return (engine.now, list(results.values()))

    result = engine.run(until=engine.process(proc()))
    assert result == (10.0, ["fast"])


def test_simultaneous_events_fifo_order():
    engine = Engine()
    order = []

    def proc(tag):
        yield engine.timeout(10.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        engine.process(proc(tag))
    engine.run()
    assert order == ["a", "b", "c"]


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(ValueError):
        engine.timeout(-1.0)


def test_event_cannot_trigger_twice():
    engine = Engine()
    event = engine.event()
    event.succeed(1)
    with pytest.raises(RuntimeError):
        event.succeed(2)


def test_yield_non_event_raises():
    engine = Engine()

    def bad():
        yield 42

    with pytest.raises(RuntimeError):
        engine.process(bad())
        engine.run()
