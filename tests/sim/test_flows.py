"""Tests for the max–min fair flow network."""

import pytest

from repro.sim import Engine, FlowNetwork, Link
from repro.sim.flows import LinkDown


def make_net():
    engine = Engine()
    return engine, FlowNetwork(engine)


def test_single_flow_duration_is_latency_plus_serialization():
    engine, net = make_net()
    link = Link("l0", bandwidth=1.0, latency=100.0)  # 1 B/ns
    done = net.transfer([link], nbytes=1000.0)
    engine.run(until=done)
    assert engine.now == pytest.approx(1100.0)


def test_zero_byte_transfer_pays_only_latency():
    engine, net = make_net()
    link = Link("l0", bandwidth=1.0, latency=250.0)
    done = net.transfer([link], nbytes=0.0)
    engine.run(until=done)
    assert engine.now == pytest.approx(250.0)


def test_empty_route_is_instant():
    engine, net = make_net()
    done = net.transfer([], nbytes=12345.0)
    engine.run(until=done)
    assert engine.now == 0.0


def test_two_flows_share_bandwidth_fairly():
    engine, net = make_net()
    link = Link("l0", bandwidth=2.0, latency=0.0)
    d1 = net.transfer([link], nbytes=1000.0)
    d2 = net.transfer([link], nbytes=1000.0)
    engine.run(until=engine.all_of([d1, d2]))
    # Each flow gets 1 B/ns -> both finish at t=1000.
    assert engine.now == pytest.approx(1000.0)


def test_departure_releases_bandwidth():
    engine, net = make_net()
    link = Link("l0", bandwidth=2.0, latency=0.0)
    short = net.transfer([link], nbytes=200.0)
    long = net.transfer([link], nbytes=1000.0)
    engine.run(until=short)
    assert engine.now == pytest.approx(200.0)  # 200 B at 1 B/ns
    engine.run(until=long)
    # long moved 200 B by t=200, then streams remaining 800 B at 2 B/ns.
    assert engine.now == pytest.approx(600.0)


def test_late_arrival_slows_in_flight_flow():
    engine, net = make_net()
    link = Link("l0", bandwidth=2.0, latency=0.0)
    first = net.transfer([link], nbytes=1000.0)

    def late():
        yield engine.timeout(100.0)
        done = net.transfer([link], nbytes=1000.0)
        yield done
        return engine.now

    proc = engine.process(late())
    engine.run(until=first)
    # first: 100ns alone at 2 B/ns (200 B), then shares at 1 B/ns for 800 B.
    assert engine.now == pytest.approx(900.0)
    engine.run(until=proc)
    # second: 800 B left at t=900, now alone at 2 B/ns -> 900 + 400 = 1300... but
    # it moved 800 B between t=100..900 at 1 B/ns, leaving 200 B -> +100ns.
    assert engine.now == pytest.approx(1000.0)


def test_bottleneck_water_filling():
    engine, net = make_net()
    # Flow A crosses both links; flows B and C cross only the fat link.
    thin = Link("thin", bandwidth=1.0, latency=0.0)
    fat = Link("fat", bandwidth=9.0, latency=0.0)
    a = net.transfer([thin, fat], nbytes=100.0)
    b = net.transfer([fat], nbytes=4000.0)
    c = net.transfer([fat], nbytes=4000.0)
    engine.run(until=a)
    # A is capped at 1 B/ns by the thin link -> 100ns.
    assert engine.now == pytest.approx(100.0)
    engine.run(until=engine.all_of([b, c]))
    # B and C each got (9-1)/2 = 4 B/ns while A ran (400 B each),
    # then 4.5 B/ns for the remaining 3600 B -> 100 + 800 = 900ns.
    assert engine.now == pytest.approx(900.0)


def test_multi_link_latency_accumulates():
    engine, net = make_net()
    l1 = Link("l1", bandwidth=10.0, latency=50.0)
    l2 = Link("l2", bandwidth=10.0, latency=70.0)
    done = net.transfer([l1, l2], nbytes=100.0)
    engine.run(until=done)
    assert engine.now == pytest.approx(50.0 + 70.0 + 10.0)


def test_link_down_fails_inflight_transfer():
    engine, net = make_net()
    link = Link("l0", bandwidth=1.0, latency=0.0)
    done = net.transfer([link], nbytes=10_000.0)

    def saboteur():
        yield engine.timeout(100.0)
        net.fail_link(link)

    engine.process(saboteur())
    with pytest.raises(LinkDown):
        engine.run(until=done)


def test_transfer_on_down_link_fails_immediately():
    engine, net = make_net()
    link = Link("l0", bandwidth=1.0, latency=0.0)
    net.fail_link(link)
    done = net.transfer([link], nbytes=10.0)

    def waiter():
        try:
            yield done
        except LinkDown as exc:
            return exc.link.name

    result = engine.run(until=engine.process(waiter()))
    assert result == "l0"


def test_restore_link_allows_new_transfers():
    engine, net = make_net()
    link = Link("l0", bandwidth=1.0, latency=0.0)
    net.fail_link(link)
    net.restore_link(link)
    done = net.transfer([link], nbytes=100.0)
    engine.run(until=done)
    assert engine.now == pytest.approx(100.0)


def test_bytes_carried_accounting():
    engine, net = make_net()
    link = Link("l0", bandwidth=1.0, latency=0.0)
    done = net.transfer([link], nbytes=500.0)
    engine.run(until=done)
    assert link.bytes_carried == pytest.approx(500.0)
    assert net.completed_transfers == 1


def test_negative_bytes_rejected():
    engine, net = make_net()
    link = Link("l0", bandwidth=1.0, latency=0.0)
    with pytest.raises(ValueError):
        net.transfer([link], nbytes=-1.0)


def test_invalid_link_parameters_rejected():
    with pytest.raises(ValueError):
        Link("bad", bandwidth=0.0, latency=0.0)
    with pytest.raises(ValueError):
        Link("bad", bandwidth=1.0, latency=-5.0)


def test_sub_ulp_transfer_at_huge_clock_still_completes():
    """Regression: a transfer whose serialization time is below the float
    ULP of the current clock must not spin forever at a frozen timestamp."""
    engine, net = make_net()
    engine._now = 1e16  # ulp(1e16) = 2.0 ns
    link = Link("l0", bandwidth=1000.0, latency=0.0)
    done = net.transfer([link], nbytes=1.0)  # 0.001 ns of serialization
    for _ in range(100):
        if done.processed:
            break
        engine.step()
    assert done.processed and done.ok
    assert engine.now > 1e16


def test_many_concurrent_flows_complete():
    engine, net = make_net()
    link = Link("l0", bandwidth=10.0, latency=0.0)
    events = [net.transfer([link], nbytes=100.0) for _ in range(50)]
    engine.run(until=engine.all_of(events))
    # 50 flows x 100 B = 5000 B over a 10 B/ns link -> 500ns total.
    assert engine.now == pytest.approx(500.0)
    assert net.completed_transfers == 50
