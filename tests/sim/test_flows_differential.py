"""Differential tests: incremental flow solving vs. the reference path.

The incremental :class:`FlowNetwork` re-solves only the connected
component touched by an arrival/departure and reuses frozen rates
elsewhere; ``FlowNetwork(..., incremental=False)`` shares every line of
code *except* component restriction (``_component`` returns all live
flows).  These tests drive both modes — and the retained module-level
:func:`waterfill` reference solver — through randomized scenarios and
demand byte-identical outcomes, which is the determinism guard for the
whole optimization: if component restriction ever changed a single
float, the traces would diverge.
"""

import random

import pytest

from repro.sim import Engine, FlowNetwork, Link
from repro.sim.flows import waterfill
from repro.sim.trace import TraceLog


def _build_fabric(rng, n_segments):
    """A segmented fabric with a few cross-segment uplinks.

    Mixes isolated components (where incremental solving pays off) with
    shared links (where components merge and split as flows churn).
    """
    links = []
    segments = []
    for s in range(n_segments):
        seg = [
            Link(f"seg{s}-l{i}",
                 bandwidth=rng.choice([1.0, 2.0, 4.0, 8.0]),
                 latency=rng.choice([0.0, 20.0, 100.0]))
            for i in range(3)
        ]
        segments.append(seg)
        links.extend(seg)
    uplinks = [
        Link(f"up{u}", bandwidth=rng.choice([2.0, 16.0]), latency=50.0)
        for u in range(max(1, n_segments // 2))
    ]
    links.extend(uplinks)
    return links, segments, uplinks


def _random_script(seed, n_flows=60, n_segments=4):
    """(links, flow script) where the script is (start, route, bytes, cancel)."""
    rng = random.Random(seed)
    links, segments, uplinks = _build_fabric(rng, n_segments)
    script = []
    for _ in range(n_flows):
        seg = segments[rng.randrange(n_segments)]
        route = list(rng.sample(seg, rng.randint(1, 3)))
        if rng.random() < 0.3:  # cross-segment: bridge via an uplink
            route.append(uplinks[rng.randrange(len(uplinks))])
            other = segments[rng.randrange(n_segments)]
            route.append(other[rng.randrange(3)])
        # Dedup while preserving order (a route never repeats a hop).
        route = list(dict.fromkeys(route))
        script.append((
            rng.uniform(0.0, 5_000.0),            # start time
            route,
            float(rng.randint(1, 2_000_000)),     # bytes
            rng.random() < 0.1,                   # cancel mid-flight?
        ))
    return links, script


def _run(script_seed, incremental, with_faults=False):
    """Execute one scenario; returns (trace events, completion stamps,
    per-link bytes, stats tuple)."""
    links, script = _random_script(script_seed)
    engine = Engine()
    trace = TraceLog(enabled={"flow"}, capacity=100_000)
    net = FlowNetwork(engine, trace=trace, incremental=incremental)
    stamps = []

    def launcher():
        now = 0.0
        rng = random.Random(script_seed + 99)
        for start, route, nbytes, cancel in sorted(
            script, key=lambda item: item[0]
        ):
            if start > now:
                yield engine.timeout(start - now)
                now = start
            event = net.transfer(route, nbytes)
            event.defuse()  # fault runs kill flows; that's expected
            event.add_callback(lambda _e: stamps.append(engine.now))
            if cancel:
                def canceller(ev=event, delay=rng.uniform(10.0, 2_000.0)):
                    yield engine.timeout(delay)
                    if not ev.processed:
                        net.cancel(ev)
                engine.process(canceller())
            elif with_faults and rng.random() < 0.08:
                victim = route[rng.randrange(len(route))]
                def flapper(link=victim, delay=rng.uniform(10.0, 3_000.0)):
                    yield engine.timeout(delay)
                    net.fail_link(link)
                    yield engine.timeout(500.0)
                    net.restore_link(link)
                engine.process(flapper())

    engine.process(launcher())
    engine.run()
    events = [
        (e.time, e.category, e.name, tuple(sorted(e.fields.items())))
        for e in trace.events
    ]
    per_link = {link.name: link.bytes_carried for link in links}
    stats = (net.completed_transfers, net.bytes_completed,
             net.peak_active_flows)
    return events, stamps, per_link, stats


class TestIncrementalVsReference:
    @pytest.mark.parametrize("seed", range(8))
    def test_traces_byte_identical(self, seed):
        """Incremental and full-component solving must be observationally
        indistinguishable: identical trace logs, completion stamps,
        per-link byte counters, and aggregate stats."""
        inc = _run(seed, incremental=True)
        ref = _run(seed, incremental=False)
        assert inc[0] == ref[0], "trace logs diverged"
        assert inc[1] == ref[1], "completion stamps diverged"
        assert inc[2] == ref[2], "per-link bytes diverged"
        assert inc[3] == ref[3], "aggregate stats diverged"

    @pytest.mark.parametrize("seed", range(4))
    def test_traces_byte_identical_under_faults(self, seed):
        """Same, with link flaps killing and rerouting flows mid-flight."""
        inc = _run(seed + 100, incremental=True, with_faults=True)
        ref = _run(seed + 100, incremental=False, with_faults=True)
        assert inc[0] == ref[0]
        assert inc[1] == ref[1]
        assert inc[2] == ref[2]
        assert inc[3] == ref[3]


class TestRatesMatchReferenceSolver:
    @pytest.mark.parametrize("seed", range(6))
    def test_live_rates_equal_global_waterfill(self, seed):
        """At every rebalance instant the incremental network's assigned
        rates equal a from-scratch global water-filling over all live
        flows — bitwise, not approximately."""
        links, script = _random_script(seed + 500, n_flows=40)
        engine = Engine()
        net = FlowNetwork(engine, incremental=True)
        mismatches = []

        def check(_affected):
            live = dict(net._flows)
            if not live:
                return
            expected = waterfill(live)
            actual = {fid: flow.rate for fid, flow in live.items()}
            for fid in live:
                if expected.get(fid, 0.0) != actual[fid]:
                    mismatches.append((engine.now, fid,
                                       expected.get(fid, 0.0), actual[fid]))

        net.on_rebalance.append(check)

        def launcher():
            now = 0.0
            for start, route, nbytes, _cancel in sorted(
                script, key=lambda item: item[0]
            ):
                if start > now:
                    yield engine.timeout(start - now)
                    now = start
                net.transfer(route, nbytes)

        engine.process(launcher())
        engine.run()
        assert not mismatches, mismatches[:5]
        assert net.active_flows == 0
