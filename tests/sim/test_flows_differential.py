"""Differential tests: incremental flow solving vs. the reference path.

The incremental :class:`FlowNetwork` re-solves only the connected
component touched by an arrival/departure and reuses frozen rates
elsewhere; ``FlowNetwork(..., incremental=False)`` shares every line of
code *except* component restriction (``_component`` returns all live
flows).  These tests drive both modes — and the retained module-level
:func:`waterfill` reference solver — through randomized scenarios and
demand byte-identical outcomes, which is the determinism guard for the
whole optimization: if component restriction ever changed a single
float, the traces would diverge.
"""

import contextlib
import random

import pytest

import repro.sim.flows as flows_mod
from repro.sim import Engine, FlowNetwork, Link
from repro.sim.flows import waterfill
from repro.sim.trace import TraceLog

needs_numpy = pytest.mark.skipif(
    flows_mod._np is None, reason="numpy unavailable"
)


@contextlib.contextmanager
def _forced_core(mode):
    """Pin the solver-core cutover so every component takes one path.

    ``vector`` admits any component (sharing degree 0, no sparsity
    floor); ``scalar`` sets an unreachable sharing degree.  Degenerate
    routes still fall back to scalar by design — the scenarios here
    never build one (routes are hop-deduped).
    """
    saved = (flows_mod._VECTOR_MIN_FLOWS, flows_mod._VECTOR_SPARSITY)
    try:
        if mode == "vector":
            flows_mod._VECTOR_MIN_FLOWS = 0
            flows_mod._VECTOR_SPARSITY = 1 << 40
        elif mode == "scalar":
            flows_mod._VECTOR_MIN_FLOWS = float("inf")
        else:  # "auto": leave production thresholds in place
            assert mode == "auto"
        yield
    finally:
        flows_mod._VECTOR_MIN_FLOWS, flows_mod._VECTOR_SPARSITY = saved


def _build_fabric(rng, n_segments):
    """A segmented fabric with a few cross-segment uplinks.

    Mixes isolated components (where incremental solving pays off) with
    shared links (where components merge and split as flows churn).
    """
    links = []
    segments = []
    for s in range(n_segments):
        seg = [
            Link(f"seg{s}-l{i}",
                 bandwidth=rng.choice([1.0, 2.0, 4.0, 8.0]),
                 latency=rng.choice([0.0, 20.0, 100.0]))
            for i in range(3)
        ]
        segments.append(seg)
        links.extend(seg)
    uplinks = [
        Link(f"up{u}", bandwidth=rng.choice([2.0, 16.0]), latency=50.0)
        for u in range(max(1, n_segments // 2))
    ]
    links.extend(uplinks)
    return links, segments, uplinks


def _random_script(seed, n_flows=60, n_segments=4):
    """(links, flow script) where the script is (start, route, bytes, cancel)."""
    rng = random.Random(seed)
    links, segments, uplinks = _build_fabric(rng, n_segments)
    script = []
    for _ in range(n_flows):
        seg = segments[rng.randrange(n_segments)]
        route = list(rng.sample(seg, rng.randint(1, 3)))
        if rng.random() < 0.3:  # cross-segment: bridge via an uplink
            route.append(uplinks[rng.randrange(len(uplinks))])
            other = segments[rng.randrange(n_segments)]
            route.append(other[rng.randrange(3)])
        # Dedup while preserving order (a route never repeats a hop).
        route = list(dict.fromkeys(route))
        script.append((
            rng.uniform(0.0, 5_000.0),            # start time
            route,
            float(rng.randint(1, 2_000_000)),     # bytes
            rng.random() < 0.1,                   # cancel mid-flight?
        ))
    return links, script


def _run(script_seed, incremental, with_faults=False, with_degrades=False,
         core="auto", batch=True, script_kwargs=None):
    """Execute one scenario; returns (trace events, completion stamps,
    per-link bytes, stats tuple)."""
    links, script = _random_script(script_seed, **(script_kwargs or {}))
    engine = Engine()
    trace = TraceLog(enabled={"flow"}, capacity=100_000)
    net = FlowNetwork(engine, trace=trace, incremental=incremental,
                      batch=batch)
    stamps = []

    def launcher():
        now = 0.0
        rng = random.Random(script_seed + 99)
        for start, route, nbytes, cancel in sorted(
            script, key=lambda item: item[0]
        ):
            if start > now:
                yield engine.timeout(start - now)
                now = start
            event = net.transfer(route, nbytes)
            event.defuse()  # fault runs kill flows; that's expected
            event.add_callback(lambda _e: stamps.append(engine.now))
            if cancel:
                def canceller(ev=event, delay=rng.uniform(10.0, 2_000.0)):
                    yield engine.timeout(delay)
                    if not ev.processed:
                        net.cancel(ev)
                engine.process(canceller())
            elif with_faults and rng.random() < 0.08:
                victim = route[rng.randrange(len(route))]
                def flapper(link=victim, delay=rng.uniform(10.0, 3_000.0)):
                    yield engine.timeout(delay)
                    net.fail_link(link)
                    yield engine.timeout(500.0)
                    net.restore_link(link)
                engine.process(flapper())
            elif with_degrades and rng.random() < 0.15:
                victim = route[rng.randrange(len(route))]
                factor = rng.choice([0.25, 0.5, 0.75])
                def crawler(link=victim, f=factor,
                            delay=rng.uniform(10.0, 3_000.0),
                            hold=rng.uniform(100.0, 1_000.0)):
                    yield engine.timeout(delay)
                    net.degrade_link(link, f)
                    yield engine.timeout(hold)
                    net.restore_link_speed(link)
                engine.process(crawler())

    engine.process(launcher())
    with _forced_core(core):
        engine.run()
    events = [
        (e.time, e.category, e.name, tuple(sorted(e.fields.items())))
        for e in trace.events
    ]
    per_link = {link.name: link.bytes_carried for link in links}
    stats = (net.completed_transfers, net.bytes_completed,
             net.peak_active_flows)
    return events, stamps, per_link, stats


class TestIncrementalVsReference:
    @pytest.mark.parametrize("seed", range(8))
    def test_traces_byte_identical(self, seed):
        """Incremental and full-component solving must be observationally
        indistinguishable: identical trace logs, completion stamps,
        per-link byte counters, and aggregate stats."""
        inc = _run(seed, incremental=True)
        ref = _run(seed, incremental=False)
        assert inc[0] == ref[0], "trace logs diverged"
        assert inc[1] == ref[1], "completion stamps diverged"
        assert inc[2] == ref[2], "per-link bytes diverged"
        assert inc[3] == ref[3], "aggregate stats diverged"

    @pytest.mark.parametrize("seed", range(4))
    def test_traces_byte_identical_under_faults(self, seed):
        """Same, with link flaps killing and rerouting flows mid-flight."""
        inc = _run(seed + 100, incremental=True, with_faults=True)
        ref = _run(seed + 100, incremental=False, with_faults=True)
        assert inc[0] == ref[0]
        assert inc[1] == ref[1]
        assert inc[2] == ref[2]
        assert inc[3] == ref[3]


class TestRatesMatchReferenceSolver:
    @pytest.mark.parametrize("seed", range(6))
    def test_live_rates_equal_global_waterfill(self, seed):
        """At every rebalance instant the incremental network's assigned
        rates equal a from-scratch global water-filling over all live
        flows — bitwise, not approximately."""
        links, script = _random_script(seed + 500, n_flows=40)
        engine = Engine()
        net = FlowNetwork(engine, incremental=True)
        mismatches = []

        def check(_affected):
            live = dict(net._flows)
            if not live:
                return
            expected = waterfill(live)
            actual = {fid: flow.rate for fid, flow in live.items()}
            for fid in live:
                if expected.get(fid, 0.0) != actual[fid]:
                    mismatches.append((engine.now, fid,
                                       expected.get(fid, 0.0), actual[fid]))

        net.on_rebalance.append(check)

        def launcher():
            now = 0.0
            for start, route, nbytes, _cancel in sorted(
                script, key=lambda item: item[0]
            ):
                if start > now:
                    yield engine.timeout(start - now)
                    now = start
                net.transfer(route, nbytes)

        engine.process(launcher())
        engine.run()
        assert not mismatches, mismatches[:5]
        assert net.active_flows == 0


def _assert_identical(a, b):
    assert a[0] == b[0], "trace logs diverged"
    assert a[1] == b[1], "completion stamps diverged"
    assert a[2] == b[2], "per-link bytes diverged"
    assert a[3] == b[3], "aggregate stats diverged"


class TestVectorVsScalarCore:
    """The numpy slot-space core and the per-flow scalar core are two
    implementations of the same freeze-at-bottleneck recurrence; pinning
    the cutover drives *every* component through one core or the other
    and demands byte-identical outcomes — rates, settlement stamps,
    per-link byte crediting, completion order, everything."""

    @needs_numpy
    @pytest.mark.parametrize("seed", range(6))
    def test_forced_cores_identical(self, seed):
        vec = _run(seed, incremental=True, core="vector")
        sca = _run(seed, incremental=True, core="scalar")
        _assert_identical(vec, sca)

    @needs_numpy
    @pytest.mark.parametrize("seed", range(3))
    def test_forced_cores_identical_under_faults(self, seed):
        """Link flaps kill flows mid-transfer on both cores alike."""
        vec = _run(seed + 300, incremental=True, with_faults=True,
                   core="vector")
        sca = _run(seed + 300, incremental=True, with_faults=True,
                   core="scalar")
        _assert_identical(vec, sca)

    @needs_numpy
    @pytest.mark.parametrize("seed", range(3))
    def test_forced_cores_identical_under_degrades(self, seed):
        """degrade_link / restore_link_speed shrink and restore capacity
        mid-flight; the cores must re-rate identically."""
        vec = _run(seed + 400, incremental=True, with_degrades=True,
                   core="vector")
        sca = _run(seed + 400, incremental=True, with_degrades=True,
                   core="scalar")
        _assert_identical(vec, sca)

    @needs_numpy
    def test_vector_core_actually_ran(self):
        """Guard against the forced-vector leg silently running scalar
        (which would make the whole class vacuous)."""
        engine = Engine()
        net = FlowNetwork(engine, incremental=True)
        links = [Link("shared", bandwidth=8.0, latency=0.0)]
        with _forced_core("vector"):
            for _ in range(4):
                net.transfer(links, 1000.0)
            engine.run()
        assert net.completed_transfers == 4
        # The scalar fallback exists only for degenerate routes here.
        assert not net._degenerate


class TestBatchedVsEager:
    """Same-timestamp rebalance coalescing (``batch=True``) elides
    intermediate same-instant solves whose results are never observable
    (dt == 0 moves no bytes); eager mode solves on every mutation.  The
    two must agree on every observable."""

    @pytest.mark.parametrize("seed", range(5))
    def test_batched_matches_eager(self, seed):
        bat = _run(seed, incremental=True, batch=True)
        eag = _run(seed, incremental=True, batch=False)
        _assert_identical(bat, eag)

    @pytest.mark.parametrize("seed", range(3))
    def test_batched_matches_eager_under_faults(self, seed):
        bat = _run(seed + 700, incremental=True, with_faults=True,
                   batch=True)
        eag = _run(seed + 700, incremental=True, with_faults=True,
                   batch=False)
        _assert_identical(bat, eag)

    def test_coalescing_counter_moves(self):
        """A burst of same-instant arrivals coalesces into one solve."""
        engine = Engine()
        net = FlowNetwork(engine, incremental=True, batch=True)
        link = [Link("l", bandwidth=4.0, latency=0.0)]
        for _ in range(10):
            net.transfer(link, 500.0)
        engine.run()
        assert net.resolves_coalesced > 0
        assert net.completed_transfers == 10


class TestRandomizedTopologySweep:
    """Property-style sweep: for *any* randomized fabric shape, flow
    count, cancel pattern, and fault/degrade mix, the incremental
    network is observationally identical to the full-resolve reference
    — and (numpy present) the forced-vector leg matches both."""

    @pytest.mark.parametrize("seed", range(10))
    def test_incremental_matches_reference(self, seed):
        shape_rng = random.Random(seed * 7919 + 13)
        script_kwargs = {
            "n_flows": shape_rng.randrange(20, 110),
            "n_segments": shape_rng.randrange(2, 7),
        }
        knobs = {
            "with_faults": seed % 2 == 1,
            "with_degrades": seed % 3 == 0,
            "script_kwargs": script_kwargs,
        }
        inc = _run(seed + 2000, incremental=True, **knobs)
        ref = _run(seed + 2000, incremental=False, **knobs)
        _assert_identical(inc, ref)
        if flows_mod._np is not None:
            vec = _run(seed + 2000, incremental=True, core="vector", **knobs)
            _assert_identical(vec, inc)
