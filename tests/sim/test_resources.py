"""Tests for counted resources and stores (the sim's queueing primitives)."""

import pytest

from repro.sim import Engine
from repro.sim.resources import Resource, Store


class TestResource:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Resource(Engine(), capacity=0)

    def test_grants_up_to_capacity(self):
        engine = Engine()
        resource = Resource(engine, capacity=2)
        r1, r2, r3 = resource.request(), resource.request(), resource.request()
        engine.run()
        assert r1.processed and r2.processed
        assert not r3.triggered
        assert resource.in_use == 2
        assert resource.queue_length == 1

    def test_release_grants_next_in_fifo_order(self):
        engine = Engine()
        resource = Resource(engine, capacity=1)
        order = []

        def worker(tag, hold_ns):
            with resource.request() as req:
                yield req
                order.append(tag)
                yield engine.timeout(hold_ns)

        for tag in ("a", "b", "c"):
            engine.process(worker(tag, 10.0))
        engine.run()
        assert order == ["a", "b", "c"]
        assert engine.now == pytest.approx(30.0)
        assert resource.in_use == 0

    def test_cancel_queued_request(self):
        engine = Engine()
        resource = Resource(engine, capacity=1)
        holder = resource.request()
        queued = resource.request()
        engine.run()
        queued.release()  # give up while still waiting
        assert resource.queue_length == 0
        holder.release()
        assert resource.in_use == 0

    def test_double_release_is_idempotent(self):
        engine = Engine()
        resource = Resource(engine, capacity=1)
        request = resource.request()
        engine.run()
        request.release()
        request.release()
        assert resource.in_use == 0


class TestStore:
    def test_put_then_get(self):
        engine = Engine()
        store = Store(engine)
        store.put("x")
        got = store.get()
        engine.run()
        assert got.value == "x"
        assert len(store) == 0

    def test_get_blocks_until_put(self):
        engine = Engine()
        store = Store(engine)
        received = []

        def consumer():
            item = yield store.get()
            received.append((item, engine.now))

        def producer():
            yield engine.timeout(50.0)
            yield store.put("late")

        engine.process(consumer())
        engine.process(producer())
        engine.run()
        assert received == [("late", 50.0)]

    def test_bounded_put_blocks_until_space(self):
        engine = Engine()
        store = Store(engine, capacity=1)
        times = []

        def producer():
            for i in range(3):
                yield store.put(i)
                times.append(engine.now)

        def consumer():
            for _ in range(3):
                yield engine.timeout(10.0)
                yield store.get()

        engine.process(producer())
        engine.process(consumer())
        engine.run()
        # First put immediate; each further put waits for a get.
        assert times[0] == 0.0
        assert times[1] == pytest.approx(10.0)
        assert times[2] == pytest.approx(20.0)

    def test_fifo_ordering(self):
        engine = Engine()
        store = Store(engine)
        for i in range(5):
            store.put(i)
        values = []

        def consumer():
            for _ in range(5):
                item = yield store.get()
                values.append(item)

        engine.process(consumer())
        engine.run()
        assert values == [0, 1, 2, 3, 4]

    def test_direct_handoff_to_waiting_getter(self):
        engine = Engine()
        store = Store(engine, capacity=1)
        got = store.get()  # waiting
        store.put("direct")
        engine.run()
        assert got.value == "direct"
        assert len(store) == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Store(Engine(), capacity=0)
