"""Conformance suite for the engine's scheduler backends.

The engine offers two interchangeable event-queue implementations
(DESIGN.md §5.2): the reference binary heap and the calendar queue.
Every test here drives both backends through the same scenario and
asserts *identical* observable behaviour — event processing order,
clock trajectory, ``peek()``, and ``queue_depth`` — so the backend
choice stays a pure performance knob.  The scenarios deliberately hit
the spots where a calendar queue could diverge from a heap: timestamp
ties broken by priority/sequence, zero-delay self-reschedules, bursts
that pile thousands of entries into one bucket, sparse far-future
jumps that force a width rebuild, and seeded random interleavings of
all of the above.
"""

import random

import pytest

from repro.sim import Engine
from repro.sim.engine import (
    NORMAL,
    URGENT,
    _CalendarScheduler,
    _HeapScheduler,
)
from repro.sim.events import Event

BACKENDS = ("heap", "calendar")


def _trace_run(scheduler, build):
    """Run ``build(engine, trace)`` on a fresh engine; return the trace."""
    engine = Engine(scheduler=scheduler)
    trace = []
    build(engine, trace)
    engine.run()
    return trace


def _assert_backends_agree(build):
    traces = {s: _trace_run(s, build) for s in BACKENDS}
    assert traces["calendar"] == traces["heap"]
    return traces["heap"]


# -- direct scheduler-level conformance ---------------------------------


def _drain(sched):
    out = []
    while len(sched):
        out.append(sched.pop())
    return out


@pytest.mark.parametrize("seed", [0, 1, 7, 23, 99])
def test_push_pop_total_order_matches_heap(seed):
    """Random (time, priority, seq) entries drain in identical order."""
    rng = random.Random(seed)
    entries = []
    seq = 0
    for _ in range(500):
        t = float(rng.choice([0, 1, 5, 10, 10, 1000, 10**6, 10**9]))
        t += rng.random() * rng.choice([0.0, 1.0, 1e3])
        entries.append((t, rng.choice([URGENT, NORMAL, 3]), seq, None))
        seq += 1
    heap, cal = _HeapScheduler(), _CalendarScheduler()
    for e in entries:
        heap.push(e)
        cal.push(e)
    assert _drain(cal) == _drain(heap) == sorted(entries, key=lambda e: e[:3])


@pytest.mark.parametrize("seed", [3, 17, 42])
def test_interleaved_push_pop_matches_heap(seed):
    """Pops interleaved with monotone pushes agree entry-for-entry."""
    rng = random.Random(seed)
    heap, cal = _HeapScheduler(), _CalendarScheduler()
    seq = 0
    now = 0.0
    popped = []
    for _ in range(2000):
        if len(heap) == 0 or rng.random() < 0.55:
            # New work is never scheduled into the past, mirroring the
            # engine contract the calendar queue relies on.
            t = now + float(rng.randrange(0, 10**6))
            e = (t, rng.choice([URGENT, NORMAL]), seq, None)
            seq += 1
            heap.push(e)
            cal.push(e)
        else:
            assert cal.peek_entry() == heap.peek_entry()
            a, b = heap.pop(), cal.pop()
            assert a == b
            now = a[0]
            popped.append(a)
    assert popped == sorted(popped)


def test_same_timestamp_burst_drains_in_seq_order():
    """20k entries at one instant: the one-bucket pile stays ordered."""
    cal = _CalendarScheduler()
    entries = [(0.0, NORMAL, i, None) for i in range(20000)]
    for e in reversed(entries):
        cal.push(e)
    assert _drain(cal) == entries


def test_sparse_far_future_jump():
    """A huge time gap triggers the width rebuild, not an entry loss."""
    cal = _CalendarScheduler()
    near = [(float(i), NORMAL, i, None) for i in range(50)]
    far = [(1e15 + i, NORMAL, 50 + i, None) for i in range(50)]
    for e in near + far:
        cal.push(e)
    assert _drain(cal) == near + far


def test_infinity_entries_park_and_drain_last():
    cal = _CalendarScheduler()
    inf = float("inf")
    cal.push((inf, NORMAL, 0, None))
    cal.push((5.0, NORMAL, 1, None))
    cal.push((inf, URGENT, 2, None))
    assert cal.peek_entry() == (5.0, NORMAL, 1, None)
    assert [e[2] for e in _drain(cal)] == [1, 2, 0]


def test_infinity_push_refreshes_cached_min():
    """An URGENT inf entry pushed while an inf entry is the cached min
    must become the new min — a stale cache would pop the new heap root
    but return the old entry (one processed twice, one lost)."""
    cal = _CalendarScheduler()
    inf = float("inf")
    cal.push((inf, NORMAL, 0, None))
    assert cal.peek_entry() == (inf, NORMAL, 0, None)  # primes the cache
    cal.push((inf, URGENT, 1, None))
    assert cal.peek_entry() == (inf, URGENT, 1, None)
    assert [e[2] for e in _drain(cal)] == [1, 0]


def test_push_below_parked_cursor_is_not_skipped():
    """peek at a far-future entry (nothing popped), then push earlier
    entries: the cursor must come back to them, in full — not just the
    single entry the min cache happens to protect."""
    cal = _CalendarScheduler()
    far = (1000.5, NORMAL, 0, None)
    cal.push(far)
    assert cal.peek_entry() == far  # parks the cursor far ahead
    a1 = (160.0, NORMAL, 1, None)
    a2 = (161.0, NORMAL, 2, None)
    cal.push(a1)
    cal.push(a2)
    assert _drain(cal) == [a1, a2, far]


# -- engine-level conformance -------------------------------------------


def test_engine_rejects_unknown_scheduler():
    with pytest.raises(ValueError):
        Engine(scheduler="fifo")


@pytest.mark.parametrize("scheduler", BACKENDS)
def test_peek_and_queue_depth_track_schedule(scheduler):
    engine = Engine(scheduler=scheduler)
    assert engine.peek() == float("inf")
    assert engine.queue_depth == 0
    engine.timeout(30.0)
    engine.timeout(10.0)
    engine.timeout(20.0)
    assert engine.queue_depth == 3
    assert engine.peek() == 10.0
    engine.step()
    assert engine.now == 10.0
    assert engine.peek() == 20.0
    assert engine.queue_depth == 2


def test_tie_order_priority_then_sequence():
    """Same-instant events: URGENT first, then schedule order."""

    def build(engine, trace):
        for tag in "abc":
            event = Event(engine)
            event._ok = True
            event._value = None
            event.callbacks.append(
                lambda ev, tag=tag: trace.append((engine.now, tag))
            )
            engine.schedule(event, delay=50.0,
                            priority=URGENT if tag == "b" else NORMAL)

    trace = _assert_backends_agree(build)
    assert trace == [(50.0, "b"), (50.0, "a"), (50.0, "c")]


def test_zero_delay_self_reschedule_runs_same_instant():
    """yield timeout(0) re-enters the queue at now and runs before later
    events — on both backends, in the same order."""

    def build(engine, trace):
        def bouncer():
            for i in range(5):
                trace.append(("bounce", i, engine.now))
                yield engine.timeout(0.0)

        def later():
            yield engine.timeout(1.0)
            trace.append(("later", engine.now))

        engine.process(bouncer())
        engine.process(later())

    trace = _assert_backends_agree(build)
    assert trace[:5] == [("bounce", i, 0.0) for i in range(5)]
    assert trace[-1] == ("later", 1.0)


@pytest.mark.parametrize("seed", [11, 29, 61])
def test_random_interleaving_traces_identical(seed):
    """Seeded random process soup: identical event traces on both
    backends (timer churn, ties, zero delays, urgent pings, far jumps)."""

    def build(engine, trace):
        rng = random.Random(seed)

        def worker(wid):
            for r in range(rng.randrange(3, 12)):
                delay = float(rng.choice([0, 0, 1, 7, 100, 10**4, 10**7]))
                yield engine.timeout(delay)
                trace.append((engine.now, wid, r))
                if rng.random() < 0.2:
                    event = Event(engine)
                    event._ok = True
                    event._value = None
                    engine.schedule(event, delay=0.0, priority=URGENT)

        for wid in range(40):
            engine.process(worker(wid))

    _assert_backends_agree(build)


def test_schedule_after_horizon_break_preserves_order():
    """run(until=...) breaks on a peek beyond the horizon without
    popping; work scheduled afterwards at earlier (legal, t >= now)
    times must still fire first.  This is the reviewed repro: the
    calendar backend used to park its cursor on the far entry's window
    and skip all but one of the later-pushed earlier events, firing
    160, 1000.5, 161 with a backward-jumping clock."""
    traces = {}
    for scheduler in BACKENDS:
        engine = Engine(scheduler=scheduler)
        trace = []
        far = engine.timeout(1000.5)
        far.callbacks.append(lambda ev, e=engine: trace.append(e.now))
        engine.run(until=100.0)
        assert engine.now == 100.0
        for delay in (60.0, 61.0):  # fires at t=160, t=161
            tmo = engine.timeout(delay)
            tmo.callbacks.append(lambda ev, e=engine: trace.append(e.now))
        engine.run()
        traces[scheduler] = trace
        assert trace == sorted(trace), f"{scheduler}: clock went backwards"
    assert traces["calendar"] == traces["heap"] == [160.0, 161.0, 1000.5]


@pytest.mark.parametrize("seed", [5, 13, 37])
def test_random_horizon_breaks_with_late_scheduling(seed):
    """Interleave run(until=horizon) breaks with scheduling work that
    lands before the queue's current next event: both backends must
    produce the identical trace and a monotone clock."""
    traces = {}
    for scheduler in BACKENDS:
        rng = random.Random(seed)
        engine = Engine(scheduler=scheduler)
        trace = []

        def note(ev, e=engine, t=trace):
            t.append(e.now)

        # Seed a sparse far-future backbone so peeks overshoot horizons.
        for i in range(10):
            tmo = engine.timeout(float(10**4 * (i + 1)) + 0.5)
            tmo.callbacks.append(note)
        for _ in range(200):
            horizon = engine.now + float(rng.randrange(1, 5000))
            engine.run(until=horizon)
            assert engine.now == horizon
            for _ in range(rng.randrange(0, 4)):
                tmo = engine.timeout(float(rng.randrange(0, 3000)))
                tmo.callbacks.append(note)
        engine.run()
        assert trace == sorted(trace), f"{scheduler}: clock went backwards"
        traces[scheduler] = trace
    assert traces["calendar"] == traces["heap"]


@pytest.mark.parametrize("scheduler", BACKENDS)
def test_run_until_horizon_equivalent(scheduler):
    engine = Engine(scheduler=scheduler)
    hits = []

    def proc():
        while True:
            yield engine.timeout(10.0)
            hits.append(engine.now)

    engine.process(proc())
    engine.run(until=55.0)
    assert hits == [10.0, 20.0, 30.0, 40.0, 50.0]
    assert engine.now == 55.0
