"""Edge cases of ``Engine.run(until=...)`` and the engine's counters."""

import pytest

from repro.sim import Engine


class TestRunUntilTime:
    def test_event_exactly_at_stop_time_is_processed(self):
        engine = Engine()
        fired = []

        def proc():
            yield engine.timeout(100.0)
            fired.append(engine.now)

        engine.process(proc())
        engine.run(until=100.0)
        assert fired == [100.0]
        assert engine.now == 100.0

    def test_event_after_stop_time_is_not_processed(self):
        engine = Engine()
        fired = []

        def proc():
            yield engine.timeout(100.1)
            fired.append(True)

        engine.process(proc())
        engine.run(until=100.0)
        assert not fired
        assert engine.now == 100.0
        engine.run()  # the event is still queued, not lost
        assert fired == [True]

    def test_queue_drains_before_horizon_lands_clock_on_horizon(self):
        engine = Engine()
        engine.timeout(10.0)
        engine.run(until=1000.0)
        assert engine.now == 1000.0

    def test_until_now_is_allowed(self):
        engine = Engine()
        engine.timeout(10.0)
        engine.run()
        engine.run(until=engine.now)  # no-op, not a ValueError
        assert engine.now == 10.0

    def test_until_in_past_raises(self):
        engine = Engine()
        engine.timeout(10.0)
        engine.run()
        with pytest.raises(ValueError):
            engine.run(until=5.0)


class TestRunUntilEvent:
    def test_failed_event_reraises(self):
        engine = Engine()

        def proc():
            yield engine.timeout(5.0)
            raise ValueError("inner failure")

        with pytest.raises(ValueError, match="inner failure"):
            engine.run(until=engine.process(proc()))
        assert engine.now == 5.0

    def test_event_never_triggering_raises_runtime_error(self):
        engine = Engine()
        never = engine.event()
        engine.timeout(10.0)  # something to drain
        with pytest.raises(RuntimeError, match="never triggered"):
            engine.run(until=never)

    def test_stops_at_event_not_queue_drain(self):
        engine = Engine()
        engine.timeout(1000.0)  # later traffic must stay queued

        def proc():
            yield engine.timeout(10.0)
            return "done"

        assert engine.run(until=engine.process(proc())) == "done"
        assert engine.now == 10.0
        assert engine.queue_depth > 0


class TestCounters:
    def test_events_processed_counts_every_step(self):
        engine = Engine()
        for _ in range(5):
            engine.timeout(1.0)
        assert engine.events_processed == 0
        engine.run()
        assert engine.events_processed == 5

    def test_queue_depth_tracks_pending_events(self):
        engine = Engine()
        assert engine.queue_depth == 0
        engine.timeout(1.0)
        engine.timeout(2.0)
        assert engine.queue_depth == 2
        engine.run()
        assert engine.queue_depth == 0
