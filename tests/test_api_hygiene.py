"""Meta-tests: the public API keeps its documentation promises.

README promises "doc comments on every public item"; these tests make
that claim enforceable: every module, every ``__all__`` export, and
every public method of exported classes must carry a docstring, and
``__all__`` lists must be accurate and sorted.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro", "repro.sim", "repro.hardware", "repro.memory",
    "repro.dataflow", "repro.runtime", "repro.ft", "repro.apps",
    "repro.workloads", "repro.metrics", "repro.federation",
]


def all_modules():
    names = set(PACKAGES)
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                names.add(f"{package_name}.{info.name}")
    return sorted(names)


@pytest.mark.parametrize("module_name", all_modules())
def test_every_module_has_a_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("package_name", PACKAGES)
def test_dunder_all_is_accurate_and_sorted(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", None)
    assert exported is not None, f"{package_name} lacks __all__"
    for name in exported:
        assert hasattr(package, name), f"{package_name}.{name} missing"
    assert list(exported) == sorted(exported), f"{package_name}.__all__ unsorted"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_every_export_documented(package_name):
    package = importlib.import_module(package_name)
    undocumented = []
    for name in getattr(package, "__all__", []):
        obj = getattr(package, name)
        if inspect.ismodule(obj):
            continue
        if not (getattr(obj, "__doc__", None) or "").strip():
            undocumented.append(f"{package_name}.{name}")
    assert not undocumented, undocumented


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_methods_of_exported_classes_documented(package_name):
    package = importlib.import_module(package_name)
    undocumented = []
    for name in getattr(package, "__all__", []):
        obj = getattr(package, name)
        if not inspect.isclass(obj) or not obj.__module__.startswith("repro"):
            continue
        for method_name, member in inspect.getmembers(obj):
            if method_name.startswith("_"):
                continue
            if not (inspect.isfunction(member) or inspect.ismethod(member)):
                continue
            if not member.__module__.startswith("repro"):
                continue
            if not (member.__doc__ or "").strip():
                undocumented.append(f"{package_name}.{name}.{method_name}")
    assert not undocumented, sorted(set(undocumented))


def test_version_exposed():
    assert repro.__version__


# Frozen snapshots of the supported API surface.  A failure here means
# the public contract changed: additions belong in the snapshot (and in
# the README), removals need a deprecation shim first.
API_SURFACE = {
    "repro": {
        "AccessMode", "AccessPattern", "BandwidthClass", "Cluster",
        "ComputeKind", "Job", "JobStats", "LatencyClass", "MemoryKind",
        "MemoryProperties", "OpClass", "PriorityClass", "RegionType",
        "RegionUsage", "RuntimeSystem", "Session", "Task", "TaskContext",
        "TaskProperties", "TenantQuota", "ValidationError", "WorkSpec",
        "api", "baselines", "connect", "linear_job", "task",
    },
    "repro.api": {
        "AdmittedJob", "FederatedSession", "PriorityClass", "Session",
        "Tenant", "TenantQuota", "TenantRegistry", "connect",
    },
    "repro.apps": {
        "APP_BUILDERS", "DECODE_POOL", "Filter", "GroupCount", "HashJoin",
        "JacobiSolver", "LLMEngine", "LinearTrainer", "MiniDB",
        "PREFILL_POOL", "PhysicalQueryEngine", "PrefixTrie", "RequestRecord",
        "Scan", "ServeResult", "SolveResult", "StreamExecutor", "StreamStats",
        "TrainingResult", "WindowRecord", "build_app_job",
        "build_hospital_job", "build_probe_job", "build_query_job",
        "build_request_job", "build_stencil_job", "build_training_job",
        "define_pd_pools", "make_heat_problem", "make_regression_data",
        "region_census",
    },
    "repro.federation": {
        "AffinityPolicy", "FederatedSession", "LeastLoadedPolicy",
        "OverloadDetector", "POLICIES", "PrefixAffinityPolicy", "Rack",
        "RackRegistry", "RackState", "RegistryStats", "RoundRobinPolicy",
        "RoutedJob", "Router", "RouterStats", "StatsWindow", "federate",
    },
    "repro.runtime": {
        "AdmittedJob", "CalibratedCostModel", "CostModel",
        "DeclarativePlacement", "DegradationPolicy", "DeviceDown",
        "EncryptingPlacement", "HandoverManager", "HandoverStats",
        "HealthMonitor", "HealthState", "HealthStats", "HedgePolicy",
        "HeftScheduler", "JobAbandoned", "JobPlan", "JobStats",
        "LatencyScorecard", "NaivePlacement", "ObservationStats",
        "PlacementPolicy", "PlacementRequest", "PlannedRegion", "Preempted",
        "PriorityClass", "RackDriver", "RackStats", "RandomScheduler",
        "RecoveryPolicy", "ResilienceStats", "ResilientRuntime",
        "RetryBudget", "RoundRobinScheduler", "RuntimeSystem", "Scheduler",
        "SchedulingError", "StaticKindPlacement", "TaskContext", "TaskPlan",
        "Tenant", "TenantQuota", "TenantRegistry", "baselines",
        "estimate_job_footprint", "plan_job", "prune_with_checkpoints",
    },
    "repro.workloads": {
        "AccessEvent", "LLMRequest", "ZipfSampler", "bursty_arrivals",
        "llm_request_stream", "mixed_trace", "poisson_arrivals",
        "sequential_trace", "synthetic_frames", "synthetic_table",
        "synthetic_tensor", "uniform_trace", "zipfian_trace",
    },
}


@pytest.mark.parametrize("module_name", sorted(API_SURFACE))
def test_api_surface_snapshot(module_name):
    module = importlib.import_module(module_name)
    assert set(module.__all__) == API_SURFACE[module_name]


def test_deprecated_entry_points_still_exist():
    """The shims forward, so the legacy spelling must stay importable."""
    from repro.runtime import RackDriver, RuntimeSystem

    for cls, names in [
        (RuntimeSystem, ("submit", "run_job", "run_jobs")),
        (RackDriver, ("run_trace",)),
    ]:
        for name in names:
            assert callable(getattr(cls, name)), f"{cls.__name__}.{name}"
