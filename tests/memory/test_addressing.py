"""Tests for the memory-centric OS layer (virtual address spaces)."""

import pytest

from repro.hardware import Cluster
from repro.memory import AddressError, VirtualAddressSpace
from repro.memory.manager import MemoryManager
from repro.memory.properties import MemoryProperties

KiB = 1024


@pytest.fixture
def env():
    cluster = Cluster.preset("table1-host")
    return cluster, MemoryManager(cluster)


def test_page_size_must_be_power_of_two():
    with pytest.raises(ValueError):
        VirtualAddressSpace("j", page_size=3000)
    VirtualAddressSpace("j", page_size=4096)


class TestMapping:
    def test_map_returns_page_aligned_growing_addresses(self, env):
        _, mm = env
        vas = VirtualAddressSpace("job")
        a = mm.allocate_on("dram0", 10 * KiB, MemoryProperties(), owner="t")
        b = mm.allocate_on("dram0", 4 * KiB, MemoryProperties(), owner="t")
        va = vas.map(a)
        vb = vas.map(b)
        assert va % vas.page_size == 0
        assert vb >= va + 12 * KiB  # 10 KiB rounds to 3 pages
        assert vas.mapped_bytes == 14 * KiB

    def test_double_map_rejected(self, env):
        _, mm = env
        vas = VirtualAddressSpace("job")
        region = mm.allocate_on("dram0", KiB, MemoryProperties(), owner="t")
        vas.map(region)
        with pytest.raises(AddressError):
            vas.map(region)

    def test_unmap_then_translate_faults(self, env):
        _, mm = env
        vas = VirtualAddressSpace("job")
        region = mm.allocate_on("dram0", KiB, MemoryProperties(), owner="t")
        vaddr = vas.map(region)
        vas.unmap(region)
        with pytest.raises(AddressError):
            vas.translate(vaddr)
        with pytest.raises(AddressError):
            vas.unmap(region)

    def test_unmapped_address_faults_and_counts(self, env):
        _, mm = env
        vas = VirtualAddressSpace("job")
        with pytest.raises(AddressError):
            vas.translate(0xDEAD)
        assert vas.faults == 1


class TestTranslation:
    def test_translate_to_physical(self, env):
        _, mm = env
        vas = VirtualAddressSpace("job")
        region = mm.allocate_on("dram0", 8 * KiB, MemoryProperties(), owner="t")
        vaddr = vas.map(region)
        entry = vas.translate(vaddr + 100)
        assert entry.device_name == "dram0"
        assert entry.physical_offset == region.allocation.offset + 100
        assert vas.region_at(vaddr) is region

    def test_guard_padding_faults(self, env):
        _, mm = env
        vas = VirtualAddressSpace("job")
        region = mm.allocate_on("dram0", 100, MemoryProperties(), owner="t")
        vaddr = vas.map(region)  # one 4 KiB page for 100 bytes
        vas.translate(vaddr + 99)
        with pytest.raises(AddressError):
            vas.translate(vaddr + 100)  # inside the page, past the region

    def test_write_protection(self, env):
        _, mm = env
        vas = VirtualAddressSpace("job")
        region = mm.allocate_on("dram0", KiB, MemoryProperties(), owner="t")
        vaddr = vas.map(region, writable=False)
        vas.translate(vaddr, for_write=False)
        with pytest.raises(AddressError):
            vas.translate(vaddr, for_write=True)

    def test_translation_follows_migration(self, env):
        """The paper's pointer-swizzling effect: after the runtime moves
        a region, existing virtual addresses transparently resolve to
        the new device."""
        cluster, mm = env
        vas = VirtualAddressSpace("job")
        region = mm.allocate_on("dram0", 64 * KiB, MemoryProperties(), owner="t")
        vaddr = vas.map(region)
        assert vas.translate(vaddr).device_name == "dram0"

        def driver():
            yield from mm.migrate(region, "cxl0")

        cluster.engine.run(until=cluster.engine.process(driver()))
        entry = vas.translate(vaddr)
        assert entry.device_name == "cxl0"
        assert entry.physical_offset == region.allocation.offset

    def test_freed_region_translation_faults(self, env):
        _, mm = env
        vas = VirtualAddressSpace("job")
        region = mm.allocate_on("dram0", KiB, MemoryProperties(), owner="t")
        vaddr = vas.map(region)
        mm.free(region)
        with pytest.raises(AddressError, match="backing is gone"):
            vas.translate(vaddr)

    def test_lost_region_translation_faults(self, env):
        cluster, mm = env
        vas = VirtualAddressSpace("job")
        region = mm.allocate_on("far0", KiB, MemoryProperties(), owner="t")
        vaddr = vas.map(region)
        cluster.crash_node("memnode")
        with pytest.raises(AddressError):
            vas.translate(vaddr)


class TestProtection:
    def test_confidential_region_only_maps_into_owner_job(self, env):
        _, mm = env
        region = mm.allocate_on(
            "dram0", KiB, MemoryProperties(confidential=True),
            owner="hospital/track_hours",
        )
        own = VirtualAddressSpace("hospital")
        own.map(region)

        other = VirtualAddressSpace("analytics")
        with pytest.raises(AddressError, match="confidential"):
            other.map(region)

    def test_non_confidential_region_shareable_across_jobs(self, env):
        _, mm = env
        region = mm.allocate_on(
            "dram0", KiB, MemoryProperties(), owner="jobA/task"
        )
        VirtualAddressSpace("jobA").map(region)
        VirtualAddressSpace("jobB").map(region)  # fine: not confidential
