"""Tests for pointer swizzling, hotness tracking, and the tiering daemon."""

import pytest

from repro.hardware import Cluster
from repro.memory.manager import MemoryManager
from repro.memory.pointers import HotnessTracker, RemotePointer
from repro.memory.properties import LatencyClass, MemoryProperties
from repro.memory.tiering import TieringDaemon, TieringPolicy


@pytest.fixture
def env():
    cluster = Cluster.preset("table1-host")
    return cluster, MemoryManager(cluster)


class TestHotnessTracker:
    def test_accumulates_and_decays(self):
        tracker = HotnessTracker(half_life_ns=1000.0)
        tracker.record(1, 100.0, time=0.0)
        assert tracker.hotness(1, 0.0) == pytest.approx(100.0)
        assert tracker.hotness(1, 1000.0) == pytest.approx(50.0)
        assert tracker.hotness(1, 2000.0) == pytest.approx(25.0)

    def test_repeated_access_beats_one_big_access_later(self):
        tracker = HotnessTracker(half_life_ns=1000.0)
        for t in range(10):
            tracker.record(1, 100.0, time=float(t * 100))
        tracker.record(2, 300.0, time=900.0)
        ranked = tracker.ranked(900.0)
        assert ranked[0][0] == 1

    def test_unknown_region_is_cold(self):
        tracker = HotnessTracker()
        assert tracker.hotness(42, 100.0) == 0.0

    def test_forget(self):
        tracker = HotnessTracker()
        tracker.record(1, 10.0, 0.0)
        tracker.forget(1)
        assert tracker.hotness(1, 0.0) == 0.0

    def test_negative_bytes_rejected(self):
        tracker = HotnessTracker()
        with pytest.raises(ValueError):
            tracker.record(1, -1.0, 0.0)

    def test_invalid_half_life_rejected(self):
        with pytest.raises(ValueError):
            HotnessTracker(half_life_ns=0.0)


class TestRemotePointer:
    def test_mode_tracks_current_placement(self, env):
        cluster, mm = env
        near = mm.allocate_on("dram0", 4096, MemoryProperties(), owner="t1")
        far = mm.allocate_on("far0", 4096, MemoryProperties(), owner="t1")
        assert RemotePointer(cluster, near).mode("cpu0") == "direct"
        assert RemotePointer(cluster, far).mode("cpu0") == "remote"

    def test_mode_flips_after_migration(self, env):
        cluster, mm = env
        region = mm.allocate_on("far0", 4096, MemoryProperties(), owner="t1")
        ptr = RemotePointer(cluster, region)
        assert ptr.mode("cpu0") == "remote"

        def driver():
            yield from mm.migrate(region, "dram0")

        cluster.engine.run(until=cluster.engine.process(driver()))
        assert ptr.mode("cpu0") == "direct"

    def test_dereference_records_hotness(self, env):
        cluster, mm = env
        tracker = HotnessTracker()
        region = mm.allocate_on("dram0", 4096, MemoryProperties(), owner="t1")
        ptr = RemotePointer(cluster, region, tracker=tracker)

        def driver():
            yield from ptr.dereference("cpu0", nbytes=64)

        cluster.engine.run(until=cluster.engine.process(driver()))
        assert ptr.dereferences == 1
        assert tracker.hotness(region.id, cluster.engine.now) > 0

    def test_out_of_bounds_offset_rejected(self, env):
        cluster, mm = env
        region = mm.allocate_on("dram0", 64, MemoryProperties(), owner="t1")
        with pytest.raises(ValueError):
            RemotePointer(cluster, region, offset=64)


class TestTiering:
    def make_policy(self, cluster, mm, tracker, **kwargs):
        return TieringPolicy(cluster, mm, tracker, observer="cpu0", **kwargs)

    def test_tier_order_fastest_first(self, env):
        cluster, mm = env
        policy = self.make_policy(cluster, mm, HotnessTracker())
        names = [d.name for d in policy.tier_order()]
        assert names.index("cache0") < names.index("dram0") < names.index("cxl0")
        assert names.index("cxl0") < names.index("far0")
        assert "ssd0" not in names  # not byte-addressable

    def test_hot_region_on_slow_tier_promoted(self, env):
        cluster, mm = env
        tracker = HotnessTracker()
        region = mm.allocate_on("far0", 4096, MemoryProperties(), owner="t1")
        tracker.record(region.id, 1e6, time=0.0)
        policy = self.make_policy(cluster, mm, tracker)
        moves = policy.decide(time=0.0)
        assert moves, "hot far region should be promoted"
        target = moves[0][1]
        assert policy.rtt(cluster.memory[target]) < policy.rtt(cluster.memory["far0"])

    def test_cold_region_not_promoted(self, env):
        cluster, mm = env
        tracker = HotnessTracker()
        mm.allocate_on("far0", 4096, MemoryProperties(), owner="t1")
        policy = self.make_policy(cluster, mm, tracker)
        assert policy.decide(time=0.0) == []

    def test_promotion_respects_latency_requirement(self, env):
        """A region that declared latency=LOW must never land on a tier
        that only offers MEDIUM/HIGH — and vice versa the policy must not
        promote into a tier violating other constraints."""
        cluster, mm = env
        tracker = HotnessTracker()
        region = mm.allocate_on(
            "pmem0", 4096, MemoryProperties(persistent=True), owner="t1"
        )
        tracker.record(region.id, 1e6, time=0.0)
        policy = self.make_policy(cluster, mm, tracker)
        for _region, target in policy.decide(time=0.0):
            assert cluster.memory[target].spec.persistent

    def test_demotion_from_full_tier(self, env):
        cluster, mm = env
        tracker = HotnessTracker()
        # Fill cache0 (fastest tier) past the watermark with cold regions.
        cache = cluster.memory["cache0"]
        region = mm.allocate_on(
            "cache0", int(cache.capacity * 0.95), MemoryProperties(), owner="t1"
        )
        policy = self.make_policy(cluster, mm, tracker, watermark=0.9)
        moves = policy.decide(time=0.0)
        assert moves
        moved, target = moves[0]
        assert moved is region
        assert policy.rtt(cluster.memory[target]) > policy.rtt(cache)

    def test_daemon_migrates_hot_region_up(self, env):
        cluster, mm = env
        tracker = HotnessTracker(half_life_ns=1e9)
        region = mm.allocate_on("far0", 64 * 1024, MemoryProperties(), owner="t1")
        tracker.record(region.id, 1e9, time=0.0)
        policy = self.make_policy(cluster, mm, tracker)
        daemon = TieringDaemon(policy, interval_ns=1000.0)
        cluster.engine.process(daemon.run())
        cluster.engine.run(until=50_000.0)
        daemon.stop()
        assert daemon.promotions >= 1
        assert region.device.name != "far0"

    def test_daemon_interval_validation(self, env):
        cluster, mm = env
        policy = self.make_policy(cluster, mm, HotnessTracker())
        with pytest.raises(ValueError):
            TieringDaemon(policy, interval_ns=0.0)
