"""Tests for the declarative property-string syntax."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.properties import TaskProperties
from repro.hardware.spec import ComputeKind
from repro.memory.dsl import PropertySyntaxError, parse_properties, parse_task_card
from repro.memory.properties import BandwidthClass, LatencyClass, MemoryProperties


class TestParseProperties:
    def test_full_request(self):
        props = parse_properties(
            "latency<=low, bandwidth>=medium, persistent, coherent, "
            "sync, confidential"
        )
        assert props == MemoryProperties(
            latency=LatencyClass.LOW, bandwidth=BandwidthClass.MEDIUM,
            persistent=True, coherent=True, sync=True, confidential=True,
        )

    def test_short_keys(self):
        props = parse_properties("lat<=medium, bw>=high")
        assert props.latency is LatencyClass.MEDIUM
        assert props.bandwidth is BandwidthClass.HIGH

    def test_empty_string_is_dont_care(self):
        assert parse_properties("") == MemoryProperties()

    def test_explicit_flag_values(self):
        props = parse_properties("persistent=true sync=false")
        assert props.persistent is True
        assert props.sync is False

    def test_space_separated(self):
        props = parse_properties("latency<=low sync confidential")
        assert props.latency is LatencyClass.LOW
        assert props.sync and props.confidential

    def test_errors(self):
        with pytest.raises(PropertySyntaxError):
            parse_properties("latency>=low")  # wrong comparator
        with pytest.raises(PropertySyntaxError):
            parse_properties("bandwidth<=high")
        with pytest.raises(PropertySyntaxError):
            parse_properties("latency<=warp")
        with pytest.raises(PropertySyntaxError):
            parse_properties("wizardry")
        with pytest.raises(PropertySyntaxError):
            parse_properties("persistent=maybe")
        with pytest.raises(PropertySyntaxError):
            parse_properties(None)


class TestParseTaskCard:
    def test_figure2c_card(self):
        card = parse_task_card(
            "compute=gpu confidential=true persistent=false mem_latency=low"
        )
        assert card == TaskProperties(
            compute=ComputeKind.GPU, confidential=True,
            persistent=False, mem_latency=LatencyClass.LOW,
        )

    def test_paper_verbatim_spelling(self):
        card = parse_task_card(
            "comp. device=cpu, confidential=true, persistent=true, "
            "mem. latency=low"
        )
        assert card.compute is ComputeKind.CPU
        assert card.persistent
        assert card.mem_latency is LatencyClass.LOW

    def test_dont_care_latency_dash(self):
        card = parse_task_card("compute=cpu confidential=false mem_latency=-")
        assert card.mem_latency is None

    def test_streaming_flag(self):
        assert parse_task_card("streaming").streaming
        assert parse_task_card("streaming=true").streaming

    def test_errors(self):
        with pytest.raises(PropertySyntaxError):
            parse_task_card("compute=abacus")
        with pytest.raises(PropertySyntaxError):
            parse_task_card("bare_token_without_value")
        with pytest.raises(PropertySyntaxError):
            parse_task_card("colour=blue")


class TestRoundTrip:
    latency = st.sampled_from(list(LatencyClass))
    bandwidth = st.sampled_from(list(BandwidthClass))

    @settings(max_examples=100, deadline=None)
    @given(
        latency=latency, bandwidth=bandwidth,
        persistent=st.sampled_from([None, True]),
        coherent=st.sampled_from([None, True]),
        sync=st.sampled_from([None, True]),
        confidential=st.booleans(),
    )
    def test_describe_parse_roundtrip(
        self, latency, bandwidth, persistent, coherent, sync, confidential
    ):
        """Everything describe() can say, parse_properties() can read."""
        original = MemoryProperties(
            latency=latency, bandwidth=bandwidth, persistent=persistent,
            coherent=coherent, sync=sync, confidential=confidential,
        )
        text = original.describe()
        parsed = parse_properties(text)
        assert parsed == original

    @settings(max_examples=60, deadline=None)
    @given(
        compute=st.sampled_from([None] + list(ComputeKind)),
        confidential=st.booleans(),
        persistent=st.booleans(),
        mem_latency=st.sampled_from([None, LatencyClass.LOW, LatencyClass.HIGH]),
        streaming=st.booleans(),
    )
    def test_task_card_roundtrip(
        self, compute, confidential, persistent, mem_latency, streaming
    ):
        original = TaskProperties(
            compute=compute, confidential=confidential,
            persistent=persistent, mem_latency=mem_latency,
            streaming=streaming,
        )
        parsed = parse_task_card(original.describe())
        assert parsed == original
