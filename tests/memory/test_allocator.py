"""Unit + property tests for the first-fit free-list allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.allocator import AllocationError, FreeListAllocator


class TestBasics:
    def test_allocate_and_free_roundtrip(self):
        alloc = FreeListAllocator(capacity=1024)
        a = alloc.allocate(100)
        assert a.offset == 0
        assert alloc.allocated_bytes == 100
        alloc.free(a)
        assert alloc.allocated_bytes == 0
        assert alloc.free_bytes == 1024

    def test_first_fit_reuses_earliest_hole(self):
        alloc = FreeListAllocator(capacity=1024)
        a = alloc.allocate(100)
        b = alloc.allocate(100)
        alloc.allocate(100)
        alloc.free(a)
        alloc.free(b)  # coalesces into [0, 200)
        d = alloc.allocate(150)
        assert d.offset == 0

    def test_granularity_rounding(self):
        alloc = FreeListAllocator(capacity=1024, granularity=64)
        a = alloc.allocate(1)
        assert a.size == 64
        assert a.requested == 1
        assert alloc.allocated_bytes == 64

    def test_exhaustion_raises_without_state_damage(self):
        alloc = FreeListAllocator(capacity=256)
        alloc.allocate(200)
        with pytest.raises(AllocationError):
            alloc.allocate(100)
        assert alloc.failed_allocs == 1
        alloc.check_invariants()

    def test_fragmentation_blocks_large_alloc(self):
        alloc = FreeListAllocator(capacity=300)
        a = alloc.allocate(100)
        b = alloc.allocate(100)
        alloc.allocate(100)
        alloc.free(a)
        # free = 100 at offset 0... free b too but keep c: free = [0,200)
        alloc.free(b)
        big = alloc.allocate(200)
        assert big.offset == 0

    def test_fragmentation_metric(self):
        alloc = FreeListAllocator(capacity=300)
        a = alloc.allocate(100)
        alloc.allocate(100)  # keep middle
        c = alloc.allocate(100)
        alloc.free(a)
        alloc.free(c)
        # Two 100-byte holes -> largest/total = 0.5.
        assert alloc.fragmentation == pytest.approx(0.5)

    def test_double_free_rejected(self):
        alloc = FreeListAllocator(capacity=128)
        a = alloc.allocate(64)
        alloc.free(a)
        with pytest.raises(ValueError):
            alloc.free(a)

    def test_zero_or_negative_alloc_rejected(self):
        alloc = FreeListAllocator(capacity=128)
        with pytest.raises(ValueError):
            alloc.allocate(0)
        with pytest.raises(ValueError):
            alloc.allocate(-5)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            FreeListAllocator(capacity=0)
        with pytest.raises(ValueError):
            FreeListAllocator(capacity=100, granularity=0)

    def test_peak_tracking(self):
        alloc = FreeListAllocator(capacity=1000)
        a = alloc.allocate(600)
        alloc.free(a)
        alloc.allocate(100)
        assert alloc.peak_bytes == 600

    def test_full_capacity_alloc(self):
        alloc = FreeListAllocator(capacity=512)
        a = alloc.allocate(512)
        assert a.offset == 0
        assert alloc.free_bytes == 0
        assert alloc.fragmentation == 0.0
        alloc.free(a)
        assert alloc.largest_free_extent == 512


@st.composite
def alloc_free_script(draw):
    """A random interleaving of allocs (positive sizes) and frees (index)."""
    n = draw(st.integers(1, 60))
    return [
        (draw(st.sampled_from(["alloc", "free"])), draw(st.integers(1, 400)))
        for _ in range(n)
    ]


class TestProperties:
    @settings(max_examples=200, deadline=None)
    @given(script=alloc_free_script(), granularity=st.sampled_from([1, 8, 64, 256]))
    def test_invariants_hold_under_arbitrary_interleavings(self, script, granularity):
        """Spans always partition [0, capacity); accounting always agrees."""
        alloc = FreeListAllocator(capacity=4096, granularity=granularity)
        live = []
        for op, value in script:
            if op == "alloc":
                try:
                    live.append(alloc.allocate(value))
                except AllocationError:
                    pass
            elif live:
                alloc.free(live.pop(value % len(live)))
            alloc.check_invariants()
        for allocation in live:
            alloc.free(allocation)
            alloc.check_invariants()
        assert alloc.allocated_bytes == 0
        assert alloc.largest_free_extent == 4096

    @settings(max_examples=100, deadline=None)
    @given(sizes=st.lists(st.integers(1, 300), min_size=1, max_size=30))
    def test_allocations_never_overlap(self, sizes):
        alloc = FreeListAllocator(capacity=8192)
        spans = []
        for size in sizes:
            try:
                a = alloc.allocate(size)
            except AllocationError:
                continue
            spans.append((a.offset, a.offset + a.size))
        spans.sort()
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    @settings(max_examples=100, deadline=None)
    @given(
        sizes=st.lists(st.integers(1, 500), min_size=1, max_size=20),
        granularity=st.sampled_from([1, 64]),
    )
    def test_free_all_restores_pristine_state(self, sizes, granularity):
        alloc = FreeListAllocator(capacity=16384, granularity=granularity)
        allocations = []
        for size in sizes:
            try:
                allocations.append(alloc.allocate(size))
            except AllocationError:
                break
        for allocation in allocations:
            alloc.free(allocation)
        assert alloc.free_bytes == 16384
        assert alloc.fragmentation == 0.0
        assert len(alloc._free) == 1
