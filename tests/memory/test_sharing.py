"""Tests for the refcounted shared-region cache (KV prefix substrate).

The edge cases that matter are the ownership-discipline ones: double
release, eviction with live readers (deferred reclamation), and an
owner/reader crashing while others still hold references.
"""

import pytest

from repro.hardware import Cluster
from repro.memory.manager import MemoryManager
from repro.memory.ownership import NotOwnerError
from repro.memory.properties import MemoryProperties
from repro.memory.region import RegionState
from repro.memory.sharing import SharedRegionCache, SharedRegionError
from repro.sim.faults import FaultKind

OWNER = "kv-cache"


@pytest.fixture
def env():
    cluster = Cluster.preset("table1-host")
    mm = MemoryManager(cluster)
    return cluster, mm, SharedRegionCache(mm, OWNER)


def put(mm, cache, key, size=4096, device="dram0", name=None):
    region = mm.allocate_on(device, size, MemoryProperties(), owner=OWNER,
                            name=name)
    cache.insert(key, region)
    return region


class TestInsert:
    def test_insert_and_lookup(self, env):
        _, mm, cache = env
        region = put(mm, cache, ("sys0",))
        assert ("sys0",) in cache
        assert cache.get(("sys0",)).region is region
        assert len(cache) == 1
        assert cache.keys() == [("sys0",)]

    def test_insert_requires_cache_ownership(self, env):
        _, mm, cache = env
        foreign = mm.allocate_on("dram0", 64, MemoryProperties(), owner="job1")
        with pytest.raises(NotOwnerError):
            cache.insert(("k",), foreign)

    def test_double_insert_rejected(self, env):
        _, mm, cache = env
        put(mm, cache, ("k",))
        with pytest.raises(SharedRegionError):
            put(mm, cache, ("k",))

    def test_pinned_bytes_counts_live_and_dying(self, env):
        _, mm, cache = env
        put(mm, cache, ("a",), size=4096)
        put(mm, cache, ("b",), size=8192)
        cache.acquire(("b",), "r1")
        cache.forget(("b",))  # dying, still allocated
        assert cache.pinned_bytes() == 4096 + 8192


class TestRefcounts:
    def test_acquire_release_roundtrip(self, env):
        _, mm, cache = env
        region = put(mm, cache, ("k",))
        handle = cache.acquire(("k",), "job1", now=5.0)
        assert region.ownership.is_owner("job1")
        assert handle.region is region
        entry = cache.get(("k",))
        assert entry.ref_count == 1 and entry.pinned
        assert entry.last_used_at == 5.0
        freed = cache.release(("k",), "job1")
        assert freed is False  # the cache's own ref keeps it alive
        assert entry.ref_count == 0 and not entry.pinned
        assert region.alive

    def test_acquire_missing_key_raises(self, env):
        _, _, cache = env
        with pytest.raises(KeyError):
            cache.acquire(("nope",), "job1")

    def test_double_acquire_same_reader_rejected(self, env):
        _, mm, cache = env
        put(mm, cache, ("k",))
        cache.acquire(("k",), "job1")
        with pytest.raises(SharedRegionError):
            cache.acquire(("k",), "job1")

    def test_double_release_raises(self, env):
        _, mm, cache = env
        put(mm, cache, ("k",))
        cache.acquire(("k",), "job1")
        cache.release(("k",), "job1")
        with pytest.raises(SharedRegionError):
            cache.release(("k",), "job1")

    def test_release_without_acquire_raises(self, env):
        _, mm, cache = env
        put(mm, cache, ("k",))
        with pytest.raises(SharedRegionError):
            cache.release(("k",), "stranger")

    def test_outstanding_reports_pinned_entries(self, env):
        _, mm, cache = env
        put(mm, cache, ("a",))
        put(mm, cache, ("b",))
        cache.acquire(("a",), "r1")
        cache.acquire(("a",), "r2")
        assert cache.outstanding() == {("a",): 2}
        cache.release(("a",), "r1")
        cache.release(("a",), "r2")
        assert cache.outstanding() == {}


class TestEviction:
    def test_forget_unpinned_frees_immediately(self, env):
        _, mm, cache = env
        region = put(mm, cache, ("k",))
        assert cache.forget(("k",)) is True
        assert region.state is RegionState.FREED
        assert ("k",) not in cache
        assert cache.evictions == 1 and cache.deferred_evictions == 0

    def test_forget_missing_key_raises(self, env):
        _, _, cache = env
        with pytest.raises(KeyError):
            cache.forget(("nope",))

    def test_forget_with_live_refs_defers_reclamation(self, env):
        """ISSUE edge: ``forget()`` on a region with live references."""
        _, mm, cache = env
        region = put(mm, cache, ("k",))
        cache.acquire(("k",), "job1")
        assert cache.forget(("k",)) is False  # pinned: index-only evict
        assert ("k",) not in cache  # invisible to new lookups...
        assert region.alive  # ...but never use-after-free
        assert cache.deferred_evictions == 1
        assert cache.outstanding() == {("k",): 1}
        # The last reader's release drops the cache's own reference too.
        assert cache.release(("k",), "job1") is True
        assert region.state is RegionState.FREED
        assert cache.outstanding() == {}

    def test_deferred_eviction_waits_for_all_readers(self, env):
        _, mm, cache = env
        region = put(mm, cache, ("k",))
        cache.acquire(("k",), "r1")
        cache.acquire(("k",), "r2")
        cache.forget(("k",))
        assert cache.release(("k",), "r1") is False
        assert region.alive
        assert cache.release(("k",), "r2") is True
        assert region.state is RegionState.FREED

    def test_drain_reports_only_immediate_frees(self, env):
        _, mm, cache = env
        put(mm, cache, ("a",))
        put(mm, cache, ("b",))
        cache.acquire(("b",), "r1")
        assert cache.drain() == 1  # "a" freed now, "b" deferred
        assert cache.outstanding() == {("b",): 1}
        cache.release(("b",), "r1")
        assert cache.outstanding() == {}


class TestCrashes:
    def test_reader_crash_cleanup_then_release_settles(self, env):
        """A recovered reader's release is settled without double-drop."""
        _, mm, cache = env
        region = put(mm, cache, ("k",))
        cache.acquire(("k",), "job1")
        # Recovery tears down the crashed job's ownership externally.
        mm.drop_owner(region, "job1")
        assert region.alive  # the cache's reference held it
        freed = cache.release(("k",), "job1")  # bookkeeping settles
        assert freed is False
        assert region.alive
        assert cache.outstanding() == {}

    def test_owner_crash_with_readers_does_not_reclaim(self, env):
        """ISSUE edge: owner crashes while a prefix region has readers.

        Recovery drops the *cache owner's* reference; the reader's
        share must keep the region alive — recovery must not reclaim a
        region another task is actively decoding from.
        """
        _, mm, cache = env
        region = put(mm, cache, ("k",))
        cache.acquire(("k",), "decode-job")
        mm.drop_owner(region, OWNER)  # the owner's recovery path
        assert region.alive  # pinned by the reader
        assert region.ownership.is_owner("decode-job")
        # The reader's ordinary release is now the last drop.
        cache.release(("k",), "decode-job")
        assert region.state is RegionState.FREED

    def test_device_fault_kills_region_release_still_settles(self, env):
        cluster, mm, cache = env
        region = put(mm, cache, ("k",), device="dram0",
                     name="kv-victim")
        cache.acquire(("k",), "job1")
        cluster.faults.inject_now(FaultKind.MEMORY_CORRUPTION, "kv-victim")
        assert not region.alive
        # Neither release nor forget may raise after the fault.
        assert cache.release(("k",), "job1") is False
        assert cache.forget(("k",)) is False
        assert cache.outstanding() == {}
