"""Tests for sync/async access interfaces and the access-plan model."""

import pytest

from repro.hardware import Cluster
from repro.memory.interfaces import (
    AccessMode,
    AccessPattern,
    Accessor,
    InterfaceError,
    access_plan,
)
from repro.memory.manager import MemoryManager
from repro.memory.ownership import UseAfterTransferError
from repro.memory.properties import MemoryProperties


@pytest.fixture
def env():
    cluster = Cluster.preset("table1-host")
    return cluster, MemoryManager(cluster)


def run_access(cluster, generator):
    def driver():
        duration = yield from generator
        return duration

    return cluster.engine.run(until=cluster.engine.process(driver()))


class TestAccessPlan:
    def test_zero_bytes_is_free(self, env):
        cluster, _ = env
        plan = access_plan(cluster.memory["dram0"], 1.0, 0)
        assert plan.latency_ns == 0.0 and plan.wire_bytes == 0.0 and plan.n_ops == 0

    def test_sequential_pays_latency_once(self, env):
        cluster, _ = env
        dram = cluster.memory["dram0"]
        small = access_plan(dram, 10.0, 64, AccessPattern.SEQUENTIAL)
        large = access_plan(dram, 10.0, 64 * 1024, AccessPattern.SEQUENTIAL)
        assert small.latency_ns == large.latency_ns
        assert large.wire_bytes > small.wire_bytes

    def test_random_sync_latency_scales_with_ops(self, env):
        from repro.memory.interfaces import SYNC_MLP

        cluster, _ = env
        dram = cluster.memory["dram0"]
        one = access_plan(dram, 10.0, 64, AccessPattern.RANDOM, AccessMode.SYNC)
        many = access_plan(dram, 10.0, 64 * 100, AccessPattern.RANDOM, AccessMode.SYNC)
        assert many.n_ops == 100
        # A single miss pays one full round trip; a long stream overlaps
        # SYNC_MLP misses, so 100 ops cost 100/MLP round trips.
        assert many.latency_ns == pytest.approx(
            100 * one.latency_ns / SYNC_MLP
        )

    def test_async_vs_sync_latency_model(self, env):
        """Sync overlaps SYNC_MLP misses; async pays per-op software cost
        but sustains queue_depth in flight."""
        from repro.memory.interfaces import (
            ASYNC_OP_OVERHEAD_NS,
            PER_OP_OVERHEAD_NS,
            SYNC_MLP,
        )

        cluster, _ = env
        dram = cluster.memory["dram0"]
        rtt = 2 * 10.0 + dram.spec.latency + PER_OP_OVERHEAD_NS
        sync = access_plan(dram, 10.0, 64 * 160, AccessPattern.RANDOM, AccessMode.SYNC)
        async_ = access_plan(
            dram, 10.0, 64 * 160, AccessPattern.RANDOM, AccessMode.ASYNC, queue_depth=16
        )
        assert sync.latency_ns == pytest.approx(160 * rtt / SYNC_MLP)
        per_op = max(ASYNC_OP_OVERHEAD_NS, rtt / 16)
        assert async_.latency_ns == pytest.approx(max(rtt, 160 * per_op))
        assert async_.wire_bytes == sync.wire_bytes

    def test_granularity_amplifies_random_wire_bytes(self, env):
        cluster, _ = env
        pmem = cluster.memory["pmem0"]  # 256 B granularity
        plan = access_plan(pmem, 10.0, 8 * 64, AccessPattern.RANDOM, access_size=8)
        # 64 random 8-byte ops each drag in a 256 B granule.
        assert plan.wire_bytes == 64 * 256

    def test_write_penalty_applies(self, env):
        cluster, _ = env
        pmem = cluster.memory["pmem0"]  # write_penalty = 3
        read = access_plan(pmem, 0.0, 64, AccessPattern.RANDOM, is_write=False)
        write = access_plan(pmem, 0.0, 64, AccessPattern.RANDOM, is_write=True)
        assert write.latency_ns > read.latency_ns

    def test_invalid_arguments_rejected(self, env):
        cluster, _ = env
        dram = cluster.memory["dram0"]
        with pytest.raises(ValueError):
            access_plan(dram, 0.0, -1)
        with pytest.raises(ValueError):
            access_plan(dram, 0.0, 64, access_size=0)
        with pytest.raises(ValueError):
            access_plan(dram, 0.0, 64, queue_depth=0)


class TestAccessor:
    def test_sync_read_near_memory(self, env):
        cluster, mm = env
        region = mm.allocate_on("dram0", 64 * 1024, MemoryProperties(), owner="t1")
        acc = Accessor(cluster, region.handle("t1"), "cpu0")
        duration = run_access(cluster, acc.read(mode=AccessMode.SYNC))
        assert duration > 0
        assert cluster.memory["dram0"].bytes_read >= 64 * 1024

    def test_sync_on_far_memory_rejected(self, env):
        cluster, mm = env
        region = mm.allocate_on("far0", 4096, MemoryProperties(), owner="t1")
        acc = Accessor(cluster, region.handle("t1"), "cpu0")
        with pytest.raises(InterfaceError):
            run_access(cluster, acc.read(mode=AccessMode.SYNC))

    def test_async_on_far_memory_works(self, env):
        cluster, mm = env
        region = mm.allocate_on("far0", 4096, MemoryProperties(), owner="t1")
        acc = Accessor(cluster, region.handle("t1"), "cpu0")
        duration = run_access(cluster, acc.read(mode=AccessMode.ASYNC))
        assert duration > 0

    def test_default_mode_follows_table1(self, env):
        cluster, mm = env
        near = mm.allocate_on("dram0", 64, MemoryProperties(), owner="t1")
        far = mm.allocate_on("far0", 64, MemoryProperties(), owner="t1")
        assert Accessor(cluster, near.handle("t1"), "cpu0").default_mode() is AccessMode.SYNC
        assert Accessor(cluster, far.handle("t1"), "cpu0").default_mode() is AccessMode.ASYNC

    def test_coherent_region_on_noncoherent_path_rejected(self, env):
        cluster, mm = env
        region = mm.allocate_on(
            "ssd0", 4096, MemoryProperties(coherent=True), owner="t1"
        )
        with pytest.raises(InterfaceError):
            Accessor(cluster, region.handle("t1"), "cpu0")

    def test_access_beyond_region_size_rejected(self, env):
        cluster, mm = env
        region = mm.allocate_on("dram0", 64, MemoryProperties(), owner="t1")
        acc = Accessor(cluster, region.handle("t1"), "cpu0")
        with pytest.raises(ValueError):
            run_access(cluster, acc.read(nbytes=128))

    def test_stale_handle_rejected_at_access(self, env):
        cluster, mm = env
        region = mm.allocate_on("dram0", 64, MemoryProperties(), owner="t1")
        handle = region.handle("t1")
        acc = Accessor(cluster, handle, "cpu0")
        mm.transfer_ownership(region, "t1", "t2")
        with pytest.raises(UseAfterTransferError):
            run_access(cluster, acc.read())

    def test_random_sync_slower_than_sequential_sync(self, env):
        cluster, mm = env
        region = mm.allocate_on("dram0", 1024 * 1024, MemoryProperties(), owner="t1")

        acc = Accessor(cluster, region.handle("t1"), "cpu0")
        t_seq = run_access(cluster, acc.read(pattern=AccessPattern.SEQUENTIAL))
        t_rand = run_access(cluster, acc.read(pattern=AccessPattern.RANDOM))
        assert t_rand > t_seq

    def test_async_hides_far_latency_vs_serial(self, env):
        """The paper's §2.2(3): async interfaces improve far-memory
        throughput by overlapping requests."""
        cluster, mm = env
        region = mm.allocate_on("cxl0", 64 * 512, MemoryProperties(), owner="t1")
        acc = Accessor(cluster, region.handle("t1"), "cpu0")
        t_sync = run_access(
            cluster, acc.read(pattern=AccessPattern.RANDOM, mode=AccessMode.SYNC)
        )
        t_async = run_access(
            cluster, acc.read(pattern=AccessPattern.RANDOM, mode=AccessMode.ASYNC)
        )
        assert t_async < t_sync / 2

    def test_writes_tracked_separately(self, env):
        cluster, mm = env
        region = mm.allocate_on("dram0", 4096, MemoryProperties(), owner="t1")
        acc = Accessor(cluster, region.handle("t1"), "cpu0")
        run_access(cluster, acc.write())
        assert cluster.memory["dram0"].bytes_written >= 4096

    def test_unknown_observer_rejected(self, env):
        cluster, mm = env
        region = mm.allocate_on("dram0", 64, MemoryProperties(), owner="t1")
        with pytest.raises(InterfaceError):
            Accessor(cluster, region.handle("t1"), "ghost")
