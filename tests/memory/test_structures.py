"""Tests for far-memory data structures (RemoteArray, RemoteHashMap)."""

import pytest

from repro.hardware import Cluster
from repro.memory.manager import MemoryManager
from repro.memory.pointers import HotnessTracker
from repro.memory.properties import MemoryProperties
from repro.memory.structures import RemoteArray, RemoteHashMap, StructureError

KiB = 1024


@pytest.fixture
def env():
    cluster = Cluster.preset("table1-host")
    return cluster, MemoryManager(cluster)


def run(cluster, gen):
    def driver():
        result = yield from gen
        return result

    return cluster.engine.run(until=cluster.engine.process(driver()))


class TestRemoteArray:
    def make(self, cluster, mm, device="dram0", elements=128, element_size=64):
        region = mm.allocate_on(
            device, elements * element_size, MemoryProperties(), owner="app"
        )
        return RemoteArray(cluster, region, "cpu0", element_size)

    def test_set_get_roundtrip(self, env):
        cluster, mm = env
        array = self.make(cluster, mm)
        run(cluster, array.set(5, "hello"))
        assert run(cluster, array.get(5)) == "hello"
        assert run(cluster, array.get(6)) is None

    def test_bounds_checked(self, env):
        cluster, mm = env
        array = self.make(cluster, mm, elements=8)
        with pytest.raises(StructureError):
            run(cluster, array.get(8))
        with pytest.raises(StructureError):
            run(cluster, array.set(-1, 0))
        with pytest.raises(StructureError):
            run(cluster, array.scan(0, 9))

    def test_scan_returns_range(self, env):
        cluster, mm = env
        array = self.make(cluster, mm, elements=16)
        for i in range(16):
            run(cluster, array.set(i, i * i))
        values = run(cluster, array.scan(4, 4))
        assert values == [16, 25, 36, 49]

    def test_scan_cheaper_than_pointwise_on_far_memory(self, env):
        cluster, mm = env
        array = self.make(cluster, mm, device="far0", elements=256)
        t0 = cluster.engine.now
        run(cluster, array.scan())
        scan_time = cluster.engine.now - t0

        t0 = cluster.engine.now

        def pointwise():
            for i in range(256):
                yield from array.get(i)

        run(cluster, pointwise())
        pointwise_time = cluster.engine.now - t0
        assert scan_time < pointwise_time / 5

    def test_access_faster_after_promotion(self, env):
        """AIFM's effect: migrate the structure up and the same code
        gets faster without changes."""
        cluster, mm = env
        region = mm.allocate_on("far0", 64 * KiB, MemoryProperties(), owner="a")
        array = RemoteArray(cluster, region, "cpu0", element_size=64)

        t0 = cluster.engine.now
        run(cluster, array.get(3))
        far_time = cluster.engine.now - t0

        def migrate():
            yield from mm.migrate(region, "dram0")

        cluster.engine.run(until=cluster.engine.process(migrate()))
        assert array.backing_device == "dram0"
        t0 = cluster.engine.now
        run(cluster, array.get(3))
        near_time = cluster.engine.now - t0
        assert near_time < far_time / 5

    def test_hotness_feed(self, env):
        cluster, mm = env
        tracker = HotnessTracker()
        region = mm.allocate_on("dram0", 8 * KiB, MemoryProperties(), owner="a")
        array = RemoteArray(cluster, region, "cpu0", 64, tracker=tracker)
        run(cluster, array.get(0))
        run(cluster, array.set(1, "x"))
        assert tracker.hotness(region.id, cluster.engine.now) > 0
        assert array.accesses == 2

    def test_invalid_construction(self, env):
        cluster, mm = env
        region = mm.allocate_on("dram0", 64, MemoryProperties(), owner="a")
        with pytest.raises(ValueError):
            RemoteArray(cluster, region, "cpu0", element_size=0)
        with pytest.raises(ValueError):
            RemoteArray(cluster, region, "cpu0", element_size=128)


class TestRemoteHashMap:
    def make(self, cluster, mm, device="dram0", slots=64):
        region = mm.allocate_on(
            device, slots * 64, MemoryProperties(), owner="app"
        )
        return RemoteHashMap(cluster, region, "cpu0", slot_size=64)

    def test_put_get_roundtrip(self, env):
        cluster, mm = env
        table = self.make(cluster, mm)
        run(cluster, table.put("alice", 1))
        run(cluster, table.put("bob", 2))
        assert run(cluster, table.get("alice")) == 1
        assert run(cluster, table.get("bob")) == 2
        assert table.size == 2

    def test_update_in_place(self, env):
        cluster, mm = env
        table = self.make(cluster, mm)
        run(cluster, table.put("k", 1))
        run(cluster, table.put("k", 2))
        assert run(cluster, table.get("k")) == 2
        assert table.size == 1

    def test_missing_key_raises(self, env):
        cluster, mm = env
        table = self.make(cluster, mm)
        with pytest.raises(KeyError):
            run(cluster, table.get("ghost"))
        assert run(cluster, table.contains("ghost")) is False

    def test_fills_to_capacity_then_errors(self, env):
        cluster, mm = env
        table = self.make(cluster, mm, slots=8)
        for i in range(8):
            run(cluster, table.put(f"k{i}", i))
        assert table.load_factor == 1.0
        with pytest.raises(StructureError):
            run(cluster, table.put("overflow", 0))
        # All keys still retrievable under full load (wrap-around probes).
        for i in range(8):
            assert run(cluster, table.get(f"k{i}")) == i

    def test_probe_cost_grows_with_load(self, env):
        cluster, mm = env
        table = self.make(cluster, mm, slots=256)
        for i in range(32):
            run(cluster, table.put(f"k{i}", i))
        probes_light = table.total_probes
        for i in range(32, 224):
            run(cluster, table.put(f"k{i}", i))
        t0 = table.total_probes

        for i in range(224):
            run(cluster, table.get(f"k{i}"))
        mean_probes_loaded = (table.total_probes - t0) / 224
        mean_probes_light = probes_light / 32  # includes the write probe
        assert mean_probes_loaded > mean_probes_light * 0.9

    def test_lookup_cost_tracks_backing_device(self, env):
        cluster, mm = env
        near = self.make(cluster, mm, device="dram0")
        far = self.make(cluster, mm, device="far0")
        run(cluster, near.put("k", 1))
        run(cluster, far.put("k", 1))

        t0 = cluster.engine.now
        run(cluster, near.get("k"))
        near_time = cluster.engine.now - t0
        t0 = cluster.engine.now
        run(cluster, far.get("k"))
        far_time = cluster.engine.now - t0
        assert far_time > near_time * 5
