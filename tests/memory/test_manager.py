"""Tests for the memory manager (allocation, lifetime, migration, faults)."""

import pytest

from repro.hardware import Cluster
from repro.memory.manager import MemoryManager, PlacementError
from repro.memory.properties import MemoryProperties
from repro.memory.region import RegionState
from repro.memory.regions import RegionType
from repro.sim.faults import FaultKind


@pytest.fixture
def env():
    cluster = Cluster.preset("table1-host")
    return cluster, MemoryManager(cluster)


class TestAllocation:
    def test_allocate_reserves_device_capacity(self, env):
        cluster, mm = env
        region = mm.allocate_on("dram0", 4096, MemoryProperties(), owner="t1")
        assert region.device.name == "dram0"
        assert cluster.memory["dram0"].used == 4096
        assert mm.live_bytes("dram0") == 4096

    def test_allocation_respects_granularity(self, env):
        cluster, mm = env
        mm.allocate_on("pmem0", 100, MemoryProperties(), owner="t1")  # 256 B gran
        assert cluster.memory["pmem0"].used == 256

    def test_persistent_request_on_volatile_device_rejected(self, env):
        _, mm = env
        with pytest.raises(PlacementError):
            mm.allocate_on("dram0", 64, MemoryProperties(persistent=True), owner="t1")

    def test_persistent_request_on_pmem_succeeds(self, env):
        _, mm = env
        region = mm.allocate_on(
            "pmem0", 64, MemoryProperties(persistent=True), owner="t1"
        )
        assert region.device.spec.persistent

    def test_unknown_device_rejected(self, env):
        _, mm = env
        with pytest.raises(PlacementError):
            mm.allocate_on("nope", 64, MemoryProperties(), owner="t1")

    def test_failed_device_rejected(self, env):
        cluster, mm = env
        cluster.memory["dram0"].fail()
        with pytest.raises(PlacementError):
            mm.allocate_on("dram0", 64, MemoryProperties(), owner="t1")

    def test_capacity_exhaustion_raises_placement_error(self, env):
        cluster, mm = env
        capacity = cluster.memory["cache0"].capacity
        mm.allocate_on("cache0", capacity, MemoryProperties(), owner="t1")
        with pytest.raises(PlacementError):
            mm.allocate_on("cache0", 1, MemoryProperties(), owner="t1")


class TestLifetime:
    def test_last_owner_drop_frees_region(self, env):
        cluster, mm = env
        region = mm.allocate_on("dram0", 4096, MemoryProperties(), owner="t1")
        mm.drop_owner(region, "t1")
        assert region.state is RegionState.FREED
        assert cluster.memory["dram0"].used == 0
        assert mm.live_regions() == []
        assert mm.freed_regions == 1

    def test_shared_region_frees_only_after_all_drop(self, env):
        cluster, mm = env
        region = mm.allocate_on("dram0", 4096, MemoryProperties(), owner="t1")
        mm.share(region, "t1", ["t2", "t3"])
        mm.drop_owner(region, "t1")
        mm.drop_owner(region, "t2")
        assert region.state is RegionState.ACTIVE
        mm.drop_owner(region, "t3")
        assert region.state is RegionState.FREED

    def test_explicit_free_is_idempotent(self, env):
        _, mm = env
        region = mm.allocate_on("dram0", 64, MemoryProperties(), owner="t1")
        mm.free(region)
        mm.free(region)
        assert mm.freed_regions == 1

    def test_transfer_ownership_keeps_region_alive(self, env):
        _, mm = env
        region = mm.allocate_on("dram0", 64, MemoryProperties(), owner="t1")
        mm.transfer_ownership(region, "t1", "t2")
        assert region.state is RegionState.ACTIVE
        mm.drop_owner(region, "t2")
        assert region.state is RegionState.FREED

    def test_no_leaks_across_many_jobs(self, env):
        cluster, mm = env
        for i in range(500):
            region = mm.allocate_on("dram0", 8192, MemoryProperties(), owner=f"t{i}")
            mm.transfer_ownership(region, f"t{i}", f"t{i}+1")
            mm.drop_owner(region, f"t{i}+1")
        assert cluster.memory["dram0"].used == 0
        assert not mm.live_regions()
        assert mm.allocators["dram0"].fragmentation == 0.0


class TestMigration:
    def test_migrate_moves_backing_and_accounting(self, env):
        cluster, mm = env
        region = mm.allocate_on("dram0", 1_000_000, MemoryProperties(), owner="t1")

        def driver():
            yield from mm.migrate(region, "cxl0")

        cluster.engine.run(until=cluster.engine.process(driver()))
        assert region.device.name == "cxl0"
        assert region.migrations == 1
        assert cluster.memory["dram0"].used == 0
        assert cluster.memory["cxl0"].used >= 1_000_000
        assert cluster.engine.now > 0  # the copy took simulated time

    def test_migrate_to_same_device_is_noop(self, env):
        cluster, mm = env
        region = mm.allocate_on("dram0", 64, MemoryProperties(), owner="t1")

        def driver():
            yield from mm.migrate(region, "dram0")

        cluster.engine.run(until=cluster.engine.process(driver()))
        assert cluster.engine.now == 0.0
        assert region.migrations == 0

    def test_migrate_persistent_region_to_volatile_rejected(self, env):
        cluster, mm = env
        region = mm.allocate_on(
            "pmem0", 64, MemoryProperties(persistent=True), owner="t1"
        )

        def driver():
            with pytest.raises(PlacementError):
                yield from mm.migrate(region, "dram0")
            return True

        assert cluster.engine.run(until=cluster.engine.process(driver()))

    def test_handles_survive_migration(self, env):
        cluster, mm = env
        region = mm.allocate_on("dram0", 4096, MemoryProperties(), owner="t1")
        handle = region.handle("t1")

        def driver():
            yield from mm.migrate(region, "cxl0")

        cluster.engine.run(until=cluster.engine.process(driver()))
        handle.validate()  # migration is transparent to owners


class TestFaults:
    def test_node_crash_loses_volatile_regions(self, env):
        cluster, mm = env
        region = mm.allocate_on("far0", 4096, MemoryProperties(), owner="t1")
        cluster.crash_node("memnode")
        assert region.state is RegionState.LOST
        assert mm.lost_regions == 1

    def test_node_crash_spares_persistent_regions(self, env):
        cluster, mm = env
        region = mm.allocate_on(
            "pmem0", 64, MemoryProperties(persistent=True), owner="t1"
        )
        cluster.crash_node("host")
        assert region.state is RegionState.ACTIVE

    def test_power_outage_loses_all_volatile(self, env):
        cluster, mm = env
        volatile = mm.allocate_on("dram0", 64, MemoryProperties(), owner="t1")
        durable = mm.allocate_on(
            "pmem0", 64, MemoryProperties(persistent=True), owner="t1"
        )
        cluster.faults.inject_now(FaultKind.POWER_OUTAGE, "rack")
        assert volatile.state is RegionState.LOST
        assert durable.state is RegionState.ACTIVE

    def test_targeted_corruption(self, env):
        cluster, mm = env
        a = mm.allocate_on("dram0", 64, MemoryProperties(), owner="t1", name="victim")
        b = mm.allocate_on("dram0", 64, MemoryProperties(), owner="t1", name="other")
        cluster.faults.inject_now(FaultKind.MEMORY_CORRUPTION, "victim")
        assert a.state is RegionState.LOST
        assert b.state is RegionState.ACTIVE

    def test_lost_region_rejects_handles(self, env):
        cluster, mm = env
        region = mm.allocate_on("dram0", 64, MemoryProperties(), owner="t1")
        handle = region.handle("t1")
        cluster.faults.inject_now(FaultKind.POWER_OUTAGE, "rack")
        assert not handle.valid


class TestRegionTypes:
    def test_region_type_recorded(self, env):
        _, mm = env
        region = mm.allocate_on(
            "dram0", 64, MemoryProperties(), owner="t1",
            region_type=RegionType.PRIVATE_SCRATCH,
        )
        assert region.region_type is RegionType.PRIVATE_SCRATCH
