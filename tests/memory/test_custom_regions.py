"""Tests for user-named Memory Region types (§2.2(1): name the bundle)."""

import pytest

from repro.apps import region_census
from repro.dataflow import Job, Task, WorkSpec, task
from repro.hardware import Cluster
from repro.memory.properties import BandwidthClass, LatencyClass, MemoryProperties
from repro.memory.regions import (
    CustomRegionType,
    RegionType,
    define_region_type,
    lookup_region_type,
    region_properties,
)
from repro.runtime import RuntimeSystem

KiB = 1024
MiB = 1024 * KiB

MODEL_STATE = MemoryProperties(
    latency=LatencyClass.LOW, bandwidth=BandwidthClass.HIGH, sync=True,
)


class TestDefineRegionType:
    def test_define_and_lookup(self):
        rt = define_region_type("model-state", MODEL_STATE)
        assert isinstance(rt, CustomRegionType)
        assert rt.value == "model-state"
        assert lookup_region_type("model-state") is rt
        assert region_properties(rt) == MODEL_STATE
        assert region_properties("model-state") == MODEL_STATE

    def test_idempotent_redefinition(self):
        a = define_region_type("result-cache-x", MemoryProperties())
        b = define_region_type("result-cache-x", MemoryProperties())
        assert a is b

    def test_conflicting_redefinition_rejected(self):
        define_region_type("conflict-t", MemoryProperties())
        with pytest.raises(ValueError, match="different properties"):
            define_region_type("conflict-t", MODEL_STATE)

    def test_shadowing_predefined_rejected(self):
        with pytest.raises(ValueError, match="shadows"):
            define_region_type("global_state", MODEL_STATE)
        with pytest.raises(ValueError):
            define_region_type("", MODEL_STATE)

    def test_predefined_lookup_still_works(self):
        assert lookup_region_type("private_scratch") is RegionType.PRIVATE_SCRATCH
        with pytest.raises(KeyError):
            lookup_region_type("nonexistent-kind")


class TestTaskContextRequest:
    def test_task_requests_named_region(self):
        cluster = Cluster.preset("pooled-rack", seed=127,
                                 trace_categories={"memory"})
        rts = RuntimeSystem(cluster)
        model_state = define_region_type("model-state-2", MODEL_STATE)
        seen = {}

        job = Job("custom-regions")

        @task(job, work=WorkSpec(ops=1e4))
        def train(ctx):
            handle = ctx.request(model_state, size=8 * MiB)
            seen["device"] = handle.region.device.name
            seen["offer"] = rts.costmodel.offered(
                ctx.compute, handle.region.device)
            yield from ctx.write(handle)

        stats = rts.run_job(job)
        assert stats.ok
        # The named bundle's properties were honored from the task's view.
        assert seen["offer"].satisfies(MODEL_STATE)
        # ...and the region was freed with the task (no leaks).
        assert rts.memory.live_regions() == []
        # The census sees the custom type by name.
        census = region_census(cluster.trace)
        assert census.get(model_state, 0) == 1

    def test_request_by_string_and_predefined(self):
        cluster = Cluster.preset("pooled-rack", seed=128)
        rts = RuntimeSystem(cluster)
        define_region_type("blob-cache", MemoryProperties(
            latency=LatencyClass.HIGH, bandwidth=BandwidthClass.LOW))

        job = Job("strings")

        @task(job, work=WorkSpec(ops=1e3))
        def worker(ctx):
            blob = ctx.request("blob-cache", size=32 * MiB)
            state = ctx.request(RegionType.GLOBAL_STATE, size=64 * KiB)
            yield from ctx.write(blob, nbytes=1 * MiB)
            yield from ctx.write(state, nbytes=4 * KiB)

        assert rts.run_job(job).ok
        assert rts.memory.live_regions() == []

    def test_confidential_card_propagates_to_requests(self):
        from repro.dataflow import TaskProperties
        from repro.hardware.spec import Attachment

        cluster = Cluster.preset("pooled-rack", seed=129)
        rts = RuntimeSystem(cluster)
        define_region_type("staging-q", MemoryProperties())
        placed = []
        original = rts.placement.place

        def spy(request):
            region = original(request)
            placed.append(region)
            return region

        rts.placement.place = spy
        job = Job("secret-custom")
        job.add_task(Task(
            "t", work=WorkSpec(ops=1e3),
            properties=TaskProperties(confidential=True),
            fn=lambda ctx: (yield from _use_staging(ctx)),
        ))
        assert rts.run_job(job).ok
        staging = [r for r in placed if "staging-q" in r.name]
        assert staging
        assert all(
            r.device.spec.attachment is not Attachment.NIC for r in staging
        )


def _use_staging(ctx):
    handle = ctx.request("staging-q", size=1 * MiB)
    yield from ctx.write(handle)
