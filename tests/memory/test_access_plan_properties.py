"""Property-based tests for the access-cost model.

The cost model is the contract between the optimizer and the simulator;
these pin its monotonicity and dominance relations for arbitrary
devices and request shapes.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.hardware import calibration as cal
from repro.hardware.devices import MemoryDevice
from repro.memory.interfaces import (
    AccessMode,
    AccessPattern,
    access_plan,
)

DEVICE_MAKERS = [
    cal.make_dram, cal.make_hbm, cal.make_pmem, cal.make_cxl_dram,
    cal.make_far_memory, cal.make_gddr,
]


@st.composite
def access_cases(draw):
    maker = draw(st.sampled_from(DEVICE_MAKERS))
    device = MemoryDevice(maker("dev"))
    return (
        device,
        draw(st.floats(0.0, 5_000.0)),  # path latency
        draw(st.integers(1, 1 << 24)),  # nbytes
        draw(st.sampled_from([16, 64, 256, 4096])),  # access size
    )


class TestAccessPlanProperties:
    @settings(max_examples=200, deadline=None)
    @given(case=access_cases(), pattern=st.sampled_from(list(AccessPattern)),
           mode=st.sampled_from(list(AccessMode)))
    def test_more_bytes_never_cheaper(self, case, pattern, mode):
        device, latency, nbytes, access_size = case
        small = access_plan(device, latency, nbytes, pattern, mode, access_size)
        large = access_plan(device, latency, 2 * nbytes, pattern, mode, access_size)
        assert large.latency_ns >= small.latency_ns
        assert large.wire_bytes >= small.wire_bytes
        assert large.n_ops >= small.n_ops

    @settings(max_examples=200, deadline=None)
    @given(case=access_cases(), mode=st.sampled_from(list(AccessMode)))
    def test_random_never_cheaper_than_sequential(self, case, mode):
        device, latency, nbytes, access_size = case
        seq = access_plan(device, latency, nbytes,
                          AccessPattern.SEQUENTIAL, mode, access_size)
        rand = access_plan(device, latency, nbytes,
                           AccessPattern.RANDOM, mode, access_size)
        assert rand.latency_ns >= seq.latency_ns - 1e-9
        assert rand.wire_bytes >= seq.wire_bytes - 1e-9

    @settings(max_examples=200, deadline=None)
    @given(case=access_cases())
    def test_sync_random_never_cheaper_than_async_beyond_near_memory(self, case):
        """Once the round trip exceeds the async software overhead,
        explicit async always wins on random streams."""
        from repro.memory.interfaces import (
            ASYNC_OP_OVERHEAD_NS,
            PER_OP_OVERHEAD_NS,
            SYNC_MLP,
        )

        device, latency, nbytes, access_size = case
        rtt = 2 * latency + device.spec.latency + PER_OP_OVERHEAD_NS
        assume(rtt / SYNC_MLP > ASYNC_OP_OVERHEAD_NS)
        assume(nbytes >= 32 * access_size)  # amortize the async prologue
        sync = access_plan(device, latency, nbytes,
                           AccessPattern.RANDOM, AccessMode.SYNC, access_size)
        async_ = access_plan(device, latency, nbytes,
                             AccessPattern.RANDOM, AccessMode.ASYNC, access_size)
        assert async_.latency_ns <= sync.latency_ns

    @settings(max_examples=200, deadline=None)
    @given(case=access_cases(), pattern=st.sampled_from(list(AccessPattern)))
    def test_wire_bytes_at_least_payload_and_granularity(self, case, pattern):
        device, latency, nbytes, access_size = case
        plan = access_plan(device, latency, nbytes, pattern,
                           AccessMode.ASYNC, access_size)
        assert plan.wire_bytes >= min(nbytes, plan.n_ops * access_size) - 1e-9
        if pattern is AccessPattern.RANDOM:
            assert plan.wire_bytes >= plan.n_ops * min(
                access_size, device.spec.granularity)

    @settings(max_examples=100, deadline=None)
    @given(case=access_cases())
    def test_writes_never_cheaper_than_reads(self, case):
        device, latency, nbytes, access_size = case
        read = access_plan(device, latency, nbytes, AccessPattern.RANDOM,
                           AccessMode.SYNC, access_size, is_write=False)
        write = access_plan(device, latency, nbytes, AccessPattern.RANDOM,
                            AccessMode.SYNC, access_size, is_write=True)
        assert write.latency_ns >= read.latency_ns

    @settings(max_examples=100, deadline=None)
    @given(case=access_cases(), bandwidth=st.floats(0.1, 1000.0))
    def test_lower_bound_dominated_by_components(self, case, bandwidth):
        device, latency, nbytes, access_size = case
        plan = access_plan(device, latency, nbytes,
                           AccessPattern.SEQUENTIAL, AccessMode.SYNC,
                           access_size)
        bound = plan.lower_bound_ns(bandwidth)
        assert bound >= plan.latency_ns - 1e-9
        assert bound >= plan.wire_bytes / bandwidth - 1e-9
        assert plan.lower_bound_ns(0.0) == float("inf")
