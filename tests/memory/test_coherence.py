"""Tests: shared ownership pays coherence, exclusive ownership does not."""

import pytest

from repro.hardware import Cluster
from repro.memory.coherence import CoherenceModel
from repro.memory.interfaces import AccessMode, AccessPattern, Accessor
from repro.memory.manager import MemoryManager
from repro.memory.properties import MemoryProperties

KiB = 1024


@pytest.fixture
def env():
    cluster = Cluster.preset("pooled-rack", seed=73)
    return cluster, MemoryManager(cluster), CoherenceModel.for_cluster(cluster)


def run(cluster, gen):
    def driver():
        result = yield from gen
        return result

    return cluster.engine.run(until=cluster.engine.process(driver()))


def shared_region(mm, owners=("t1", "t2"), device="dram-pool0", size=64 * KiB):
    region = mm.allocate_on(device, size, MemoryProperties(), owner=owners[0])
    mm.share(region, owners[0], owners[1:])
    return region


class TestCoherenceModel:
    def test_exclusive_region_pays_nothing(self, env):
        cluster, mm, model = env
        region = mm.allocate_on("dram-pool0", KiB, MemoryProperties(), owner="t1")
        assert model.access_penalty(region, "cpu1", is_write=True) == 0.0
        assert model.access_penalty(region, "cpu1", is_write=False) == 0.0
        assert model.total_penalty_ns == 0.0

    def test_single_sharer_write_is_free(self, env):
        cluster, mm, model = env
        region = shared_region(mm)
        # Only cpu1 has touched it: nothing to invalidate.
        assert model.access_penalty(region, "cpu1", is_write=True) == 0.0

    def test_write_invalidates_other_sharers(self, env):
        cluster, mm, model = env
        region = shared_region(mm)
        model.access_penalty(region, "cpu1", is_write=False)
        model.access_penalty(region, "gpu1", is_write=False)
        penalty = model.access_penalty(region, "cpu1", is_write=True)
        assert penalty > 0.0
        assert model.invalidations == 1

    def test_invalidation_cost_grows_with_sharers(self, env):
        cluster, mm, model = env
        region = shared_region(mm, owners=("t1", "t2", "t3", "t4"))
        observers = ["cpu1", "cpu2", "gpu1", "gpu2"]
        for observer in observers:
            model.access_penalty(region, observer, is_write=False)
        few = shared_region(mm)
        model.access_penalty(few, "cpu1", is_write=False)
        model.access_penalty(few, "gpu1", is_write=False)

        many_penalty = model.access_penalty(region, "cpu1", is_write=True)
        few_penalty = model.access_penalty(few, "cpu1", is_write=True)
        assert many_penalty > few_penalty

    def test_read_after_foreign_write_is_dirty_miss(self, env):
        cluster, mm, model = env
        region = shared_region(mm)
        model.access_penalty(region, "cpu1", is_write=False)
        model.access_penalty(region, "gpu1", is_write=True)
        penalty = model.access_penalty(region, "cpu1", is_write=False)
        assert penalty > 0.0
        assert model.dirty_misses == 1
        # Reading again without an intervening write: clean.
        assert model.access_penalty(region, "cpu1", is_write=False) == 0.0

    def test_own_write_then_own_read_is_free(self, env):
        cluster, mm, model = env
        region = shared_region(mm)
        model.access_penalty(region, "cpu1", is_write=True)
        assert model.access_penalty(region, "cpu1", is_write=False) == 0.0

    def test_model_is_per_cluster_singleton(self, env):
        cluster, _mm, model = env
        assert CoherenceModel.for_cluster(cluster) is model
        other = Cluster.preset("pooled-rack", seed=74)
        assert CoherenceModel.for_cluster(other) is not model


class TestCoherenceThroughAccessor:
    def test_ping_pong_writes_slower_than_private_writes(self, env):
        """Two observers alternately writing a shared region (the
        latch/ping-pong pattern) pay more than one observer writing an
        exclusive region the same number of times."""
        cluster, mm, model = env

        shared = shared_region(mm, owners=("t1", "t2"))
        h1 = shared.handle("t1")
        h2 = shared.handle("t2")
        acc_cpu = Accessor(cluster, h1, "cpu1")
        acc_gpu = Accessor(cluster, h2, "gpu1")

        def ping_pong():
            for _round in range(8):
                yield from acc_cpu.write(64, pattern=AccessPattern.RANDOM,
                                         mode=AccessMode.SYNC, access_size=64)
                yield from acc_gpu.write(64, pattern=AccessPattern.RANDOM,
                                         mode=AccessMode.SYNC, access_size=64)

        t0 = cluster.engine.now
        run(cluster, ping_pong())
        ping_pong_time = cluster.engine.now - t0
        assert model.invalidations >= 15

        exclusive = mm.allocate_on(
            "dram-pool0", 64 * KiB, MemoryProperties(), owner="solo"
        )
        acc_solo = Accessor(cluster, exclusive.handle("solo"), "cpu1")

        def private_writes():
            for _round in range(16):
                yield from acc_solo.write(64, pattern=AccessPattern.RANDOM,
                                          mode=AccessMode.SYNC, access_size=64)

        t0 = cluster.engine.now
        run(cluster, private_writes())
        private_time = cluster.engine.now - t0
        assert ping_pong_time > private_time * 1.5
