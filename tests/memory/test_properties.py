"""Tests for the declarative property algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.properties import (
    BandwidthClass,
    LatencyClass,
    MemoryProperties,
    OfferedProperties,
)


def offer(
    latency=LatencyClass.LOW,
    bandwidth=BandwidthClass.HIGH,
    persistent=False,
    coherent=True,
    sync=True,
    isolated=True,
):
    return OfferedProperties(
        latency=latency, bandwidth=bandwidth, persistent=persistent,
        coherent=coherent, sync=sync, isolated=isolated,
        rtt_ns=100.0, bytes_per_ns=100.0,
    )


class TestClassification:
    def test_latency_classes(self):
        assert LatencyClass.classify(90.0) is LatencyClass.LOW
        assert LatencyClass.classify(500.0) is LatencyClass.LOW
        assert LatencyClass.classify(501.0) is LatencyClass.MEDIUM
        assert LatencyClass.classify(5_000.0) is LatencyClass.MEDIUM
        assert LatencyClass.classify(50_000.0) is LatencyClass.HIGH
        assert LatencyClass.classify(5e6) is LatencyClass.ANY

    def test_bandwidth_classes(self):
        assert BandwidthClass.classify(400.0) is BandwidthClass.HIGH
        assert BandwidthClass.classify(40.0) is BandwidthClass.MEDIUM
        assert BandwidthClass.classify(4.0) is BandwidthClass.LOW
        assert BandwidthClass.classify(0.2) is BandwidthClass.ANY


class TestMatching:
    def test_exact_match_satisfies(self):
        request = MemoryProperties(latency=LatencyClass.LOW, sync=True, coherent=True)
        assert offer().satisfies(request)

    def test_slower_offer_fails_strict_latency(self):
        request = MemoryProperties(latency=LatencyClass.LOW)
        assert not offer(latency=LatencyClass.MEDIUM).satisfies(request)

    def test_faster_offer_satisfies_lax_request(self):
        request = MemoryProperties(latency=LatencyClass.HIGH)
        assert offer(latency=LatencyClass.LOW).satisfies(request)

    def test_persistence_required(self):
        request = MemoryProperties(persistent=True)
        assert not offer(persistent=False).satisfies(request)
        assert offer(persistent=True).satisfies(request)

    def test_persistent_device_may_hold_volatile_data(self):
        request = MemoryProperties(persistent=None)
        assert offer(persistent=True).satisfies(request)

    def test_coherence_required(self):
        request = MemoryProperties(coherent=True)
        assert not offer(coherent=False).satisfies(request)

    def test_sync_required(self):
        request = MemoryProperties(sync=True)
        assert not offer(sync=False).satisfies(request)

    def test_confidential_needs_isolation(self):
        request = MemoryProperties(confidential=True)
        assert not offer(isolated=False).satisfies(request)
        assert offer(isolated=True).satisfies(request)

    def test_dont_care_matches_everything(self):
        request = MemoryProperties()
        assert offer(
            latency=LatencyClass.ANY, bandwidth=BandwidthClass.ANY,
            persistent=False, coherent=False, sync=False, isolated=False,
        ).satisfies(request)


class TestMerging:
    def test_merge_keeps_stricter_classes(self):
        a = MemoryProperties(latency=LatencyClass.LOW, bandwidth=BandwidthClass.ANY)
        b = MemoryProperties(latency=LatencyClass.HIGH, bandwidth=BandwidthClass.HIGH)
        merged = a.merged_with(b)
        assert merged.latency is LatencyClass.LOW
        assert merged.bandwidth is BandwidthClass.HIGH

    def test_merge_fills_dont_cares(self):
        a = MemoryProperties(persistent=True)
        b = MemoryProperties(sync=True)
        merged = a.merged_with(b)
        assert merged.persistent is True
        assert merged.sync is True

    def test_merge_contradiction_raises(self):
        a = MemoryProperties(persistent=True)
        b = MemoryProperties(persistent=False)
        with pytest.raises(ValueError):
            a.merged_with(b)

    def test_merge_confidentiality_is_sticky(self):
        a = MemoryProperties(confidential=True)
        b = MemoryProperties()
        assert a.merged_with(b).confidential
        assert b.merged_with(a).confidential

    def test_describe_mentions_set_fields(self):
        text = MemoryProperties(
            latency=LatencyClass.LOW, persistent=True, confidential=True
        ).describe()
        assert "LOW" in text and "persistent=True" in text and "confidential" in text


latency_strategy = st.sampled_from(list(LatencyClass))
bandwidth_strategy = st.sampled_from(list(BandwidthClass))
tristate = st.sampled_from([None, True, False])


@st.composite
def request_strategy(draw):
    return MemoryProperties(
        latency=draw(latency_strategy),
        bandwidth=draw(bandwidth_strategy),
        persistent=draw(tristate),
        coherent=draw(tristate),
        sync=draw(tristate),
        confidential=draw(st.booleans()),
    )


class TestMergeProperties:
    @settings(max_examples=200, deadline=None)
    @given(a=request_strategy(), b=request_strategy())
    def test_merge_is_commutative_and_satisfaction_narrows(self, a, b):
        """merged requirements are satisfied only by offers satisfying both."""
        try:
            merged_ab = a.merged_with(b)
            merged_ba = b.merged_with(a)
        except ValueError:
            return  # contradictions raise symmetrically
        assert merged_ab == merged_ba

        sample_offer = offer(
            latency=LatencyClass.MEDIUM, bandwidth=BandwidthClass.MEDIUM,
            persistent=True, coherent=True, sync=True, isolated=True,
        )
        if sample_offer.satisfies(merged_ab):
            assert sample_offer.satisfies(a)
            assert sample_offer.satisfies(b)

    @settings(max_examples=100, deadline=None)
    @given(a=request_strategy())
    def test_merge_with_self_is_identity(self, a):
        assert a.merged_with(a) == a
