"""Unit + property tests for the ownership state machine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.ownership import (
    NotOwnerError,
    OwnershipError,
    OwnershipMode,
    OwnershipRecord,
    UseAfterTransferError,
)


class TestExclusive:
    def test_initial_owner_is_exclusive(self):
        rec = OwnershipRecord("t1")
        assert rec.mode is OwnershipMode.EXCLUSIVE
        assert rec.is_owner("t1")
        assert not rec.is_owner("t2")

    def test_transfer_moves_ownership_and_bumps_epoch(self):
        rec = OwnershipRecord("t1")
        epoch = rec.transfer("t1", "t2")
        assert epoch == 1
        assert rec.is_owner("t2")
        assert not rec.is_owner("t1")
        assert rec.transfer_count == 1

    def test_transfer_by_non_owner_rejected(self):
        rec = OwnershipRecord("t1")
        with pytest.raises(NotOwnerError):
            rec.transfer("t2", "t3")

    def test_stale_epoch_access_fails(self):
        rec = OwnershipRecord("t1")
        rec.check_access("t1", epoch=0)
        rec.transfer("t1", "t2")
        with pytest.raises(UseAfterTransferError):
            rec.check_access("t1", epoch=0)
        rec.check_access("t2", epoch=1)

    def test_transfer_chain(self):
        rec = OwnershipRecord("t1")
        for i, (src, dst) in enumerate([("t1", "t2"), ("t2", "t3"), ("t3", "t4")]):
            assert rec.transfer(src, dst) == i + 1
        assert rec.owners == {"t4"}

    def test_transfer_to_none_rejected(self):
        rec = OwnershipRecord("t1")
        with pytest.raises(ValueError):
            rec.transfer("t1", None)


class TestShared:
    def test_share_widens_owner_set(self):
        rec = OwnershipRecord("t1")
        rec.share("t1", ["t2", "t3"])
        assert rec.mode is OwnershipMode.SHARED
        assert rec.owners == {"t1", "t2", "t3"}

    def test_shared_cannot_transfer(self):
        rec = OwnershipRecord("t1")
        rec.share("t1", ["t2"])
        with pytest.raises(OwnershipError):
            rec.transfer("t1", "t3")

    def test_only_owner_may_share(self):
        rec = OwnershipRecord("t1")
        with pytest.raises(NotOwnerError):
            rec.share("stranger", ["t2"])

    def test_drop_until_release(self):
        rec = OwnershipRecord("t1")
        released = []
        rec.on_release.append(lambda: released.append(True))
        rec.share("t1", ["t2"])
        assert rec.drop("t1") is False
        assert not released
        assert rec.drop("t2") is True
        assert released == [True]
        assert rec.released

    def test_drop_non_owner_rejected(self):
        rec = OwnershipRecord("t1")
        with pytest.raises(NotOwnerError):
            rec.drop("t2")

    def test_released_record_rejects_everything(self):
        rec = OwnershipRecord("t1")
        rec.drop("t1")
        with pytest.raises(UseAfterTransferError):
            rec.check_access("t1")
        with pytest.raises(UseAfterTransferError):
            rec.transfer("t1", "t2")
        with pytest.raises(UseAfterTransferError):
            rec.share("t1", ["t2"])
        with pytest.raises(UseAfterTransferError):
            rec.drop("t1")


ACTORS = ["a", "b", "c", "d"]


@st.composite
def ownership_script(draw):
    n = draw(st.integers(1, 40))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["transfer", "share", "drop", "access"]))
        ops.append((kind, draw(st.sampled_from(ACTORS)), draw(st.sampled_from(ACTORS))))
    return ops


class TestProperties:
    @settings(max_examples=200, deadline=None)
    @given(script=ownership_script())
    def test_state_machine_invariants(self, script):
        """Model-checked: the owner set is never empty while unreleased,
        exclusive mode always has exactly one owner, and release fires
        exactly once."""
        rec = OwnershipRecord("a")
        release_count = []
        rec.on_release.append(lambda: release_count.append(1))

        for kind, x, y in script:
            try:
                if kind == "transfer":
                    rec.transfer(x, y)
                elif kind == "share":
                    rec.share(x, [y])
                elif kind == "drop":
                    rec.drop(x)
                else:
                    rec.check_access(x)
            except OwnershipError:
                pass  # rejected ops must leave state consistent
            except ValueError:
                pass

            if rec.released:
                assert not rec.owners
                assert len(release_count) == 1
            else:
                assert rec.owners, "live record with empty owner set"
                if rec.mode is OwnershipMode.EXCLUSIVE:
                    assert len(rec.owners) == 1

    @settings(max_examples=100, deadline=None)
    @given(
        transfers=st.lists(st.sampled_from(ACTORS), min_size=1, max_size=20),
    )
    def test_epoch_counts_successful_transfers_exactly(self, transfers):
        rec = OwnershipRecord("a")
        successes = 0
        current = "a"
        for target in transfers:
            try:
                rec.transfer(current, target)
                successes += 1
                current = target
            except (OwnershipError, ValueError):
                pass
        assert rec.epoch == successes
        assert rec.owners == {current}
