"""Tests: the physical trainer really converges, with real sim costs."""

import numpy as np
import pytest

from repro.apps.ml_exec import LinearTrainer, make_regression_data
from repro.hardware import Cluster
from repro.hardware.spec import ComputeKind
from repro.runtime import RuntimeSystem


@pytest.fixture
def rts():
    return RuntimeSystem(Cluster.preset("pooled-rack", seed=91))


class TestTraining:
    def test_converges_on_linear_data(self, rts):
        rng = np.random.default_rng(0)
        X, y, true_w = make_regression_data(rng, n_samples=2000, noise=0.05)
        trainer = LinearTrainer(rts, epochs=8, learning_rate=0.1)
        result = trainer.fit(X, y)
        assert result.stats.ok
        assert result.final_loss < 0.05
        # Standardized-space weights correlate with the ground truth.
        correlation = np.corrcoef(result.weights, true_w)[0, 1]
        assert correlation > 0.99

    def test_loss_decreases_monotonically_early(self, rts):
        rng = np.random.default_rng(1)
        X, y, _w = make_regression_data(rng)
        result = LinearTrainer(rts, epochs=6, learning_rate=0.1).fit(X, y)
        losses = result.loss_per_epoch
        assert len(losses) == 6
        assert losses[1] < losses[0]
        assert losses[-1] <= losses[2]

    def test_epochs_run_on_requested_accelerator(self, rts):
        rng = np.random.default_rng(2)
        X, y, _w = make_regression_data(rng, n_samples=500)
        result = LinearTrainer(
            rts, epochs=2, accelerator=ComputeKind.TPU).fit(X, y)
        for epoch in range(2):
            device = rts.cluster.compute[result.stats.assignment[f"epoch{epoch}"]]
            assert device.kind is ComputeKind.TPU

    def test_simulated_cost_scales_with_data(self):
        times = {}
        for n in (500, 5000):
            rts = RuntimeSystem(Cluster.preset("pooled-rack", seed=92))
            rng = np.random.default_rng(3)
            X, y, _w = make_regression_data(rng, n_samples=n)
            result = LinearTrainer(rts, epochs=2).fit(X, y)
            times[n] = result.stats.makespan
        assert times[5000] > times[500] * 2

    def test_no_leaks(self, rts):
        rng = np.random.default_rng(4)
        X, y, _w = make_regression_data(rng, n_samples=500)
        LinearTrainer(rts, epochs=2).fit(X, y)
        assert rts.memory.live_regions() == []

    def test_validation(self, rts):
        with pytest.raises(ValueError):
            LinearTrainer(rts, epochs=0)
        with pytest.raises(ValueError):
            LinearTrainer(rts, learning_rate=0.0)
        trainer = LinearTrainer(rts)
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((4, 2)), np.zeros(5))
