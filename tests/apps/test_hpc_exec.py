"""Tests: the distributed Jacobi solver really relaxes the field."""

import numpy as np
import pytest

from repro.apps.hpc_exec import JacobiSolver, jacobi_step, make_heat_problem
from repro.hardware import Cluster
from repro.runtime import RuntimeSystem


@pytest.fixture
def rts():
    return RuntimeSystem(Cluster.preset("pooled-rack", seed=107))


class TestJacobi:
    def test_matches_serial_reference(self, rts):
        """The distributed result is bit-identical to serial Jacobi."""
        grid = make_heat_problem(n=24)
        iterations = 6
        result = JacobiSolver(rts, n_workers=3, iterations=iterations).solve(grid)

        reference = grid.copy()
        for _ in range(iterations):
            reference = jacobi_step(reference)
        assert np.allclose(result.field, reference)
        assert result.stats.ok

    def test_residuals_decrease(self, rts):
        result = JacobiSolver(rts, n_workers=4, iterations=8).solve(
            make_heat_problem(n=32))
        assert len(result.residuals) == 8
        assert result.residuals[-1] < result.residuals[0]

    def test_heat_diffuses_from_hot_edge(self, rts):
        result = JacobiSolver(rts, n_workers=2, iterations=10).solve(
            make_heat_problem(n=16, hot_edge=100.0))
        # Interior near the hot edge warmed up; far side stays cooler.
        assert result.field[1, 8] > result.field[13, 8] >= 0.0
        assert result.field[1, 8] > 10.0

    def test_convergence_flag(self, rts):
        # An already-uniform field converges immediately.
        grid = np.full((8, 8), 5.0)
        result = JacobiSolver(rts, n_workers=2, iterations=3).solve(grid)
        assert result.converged
        assert result.residuals[0] == pytest.approx(0.0)

    def test_workers_overlap_within_iteration(self, rts):
        result = JacobiSolver(rts, n_workers=4, iterations=2).solve(
            make_heat_problem(n=64))
        stats = result.stats
        first_wave = sorted(
            (s for name, s in stats.tasks.items() if name.startswith("it0-")),
            key=lambda s: s.started_at,
        )
        assert first_wave[1].started_at < first_wave[0].finished_at

    def test_no_leaks(self, rts):
        JacobiSolver(rts, n_workers=2, iterations=2).solve(make_heat_problem(8))
        assert rts.memory.live_regions() == []

    def test_validation(self, rts):
        with pytest.raises(ValueError):
            JacobiSolver(rts, n_workers=0)
        with pytest.raises(ValueError):
            JacobiSolver(rts).solve(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            make_heat_problem(2)
