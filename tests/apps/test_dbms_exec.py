"""Tests: the physical query engine returns real answers with real costs."""

import numpy as np
import pytest

from repro.apps.dbms import MiniDB
from repro.apps.dbms_exec import (
    Filter,
    GroupCount,
    HashJoin,
    PhysicalQueryEngine,
    Scan,
)
from repro.hardware import Cluster
from repro.runtime import RuntimeSystem
from repro.workloads import synthetic_table


@pytest.fixture
def engine():
    rts = RuntimeSystem(Cluster.preset("pooled-rack", seed=61))
    physical = PhysicalQueryEngine(rts)
    rng = np.random.default_rng(0)
    physical.register_table("orders", synthetic_table(rng, 20_000, key_cardinality=50))
    physical.register_table("customers", synthetic_table(rng, 500, key_cardinality=50))
    return physical


class TestCorrectness:
    def test_scan(self, engine):
        result, stats = engine.execute(Scan("orders"))
        assert stats.ok
        assert len(result) == 20_000

    def test_filter_matches_minidb(self, engine):
        plan = Filter(Scan("orders"), "c1", "<", 10)
        result, stats = engine.execute(plan)
        reference = MiniDB.filter(engine.db.scan("orders"), "c1", "<", 10)
        assert np.array_equal(result, reference)

    def test_group_count_matches_minidb(self, engine):
        plan = GroupCount(Filter(Scan("orders"), "c1", "<", 25), "c0")
        result, stats = engine.execute(plan)
        reference = MiniDB.group_count(
            MiniDB.filter(engine.db.scan("orders"), "c1", "<", 25), "c0"
        )
        assert result == reference

    def test_join_matches_minidb(self, engine):
        plan = HashJoin(
            Filter(Scan("orders"), "c1", "<", 5),
            Scan("customers"),
            on="c0",
        )
        result, stats = engine.execute(plan)
        filtered = MiniDB.filter(engine.db.scan("orders"), "c1", "<", 5)
        reference = MiniDB.hash_join(filtered, engine.db.scan("customers"), "c0")
        assert set(result) == set(reference)
        assert stats.ok

    def test_full_query_tree(self, engine):
        """join + group on top: a real multi-operator pipeline."""
        plan = GroupCount(
            Filter(Scan("orders"), "c2", ">=", 25),
            "c0",
        )
        result, stats = engine.execute(plan)
        assert sum(result.values()) == len(
            MiniDB.filter(engine.db.scan("orders"), "c2", ">=", 25)
        )
        assert len(stats.tasks) == 3


class TestPhysicalBehaviour:
    def test_no_leaks_after_queries(self, engine):
        for _ in range(3):
            engine.execute(Filter(Scan("orders"), "c1", "<", 10))
        assert engine.rts.memory.live_regions() == []

    def test_cost_scales_with_data_volume(self):
        """The same plan over 10x the rows takes materially longer
        simulated time — the physical half is not decorative."""
        times = {}
        for rows in (5_000, 50_000):
            rts = RuntimeSystem(Cluster.preset("pooled-rack", seed=62))
            physical = PhysicalQueryEngine(rts)
            rng = np.random.default_rng(1)
            physical.register_table(
                "t", synthetic_table(rng, rows, key_cardinality=64))
            _result, stats = physical.execute(
                GroupCount(Filter(Scan("t"), "c1", "<", 32), "c0"))
            times[rows] = stats.makespan
        # Fixed per-op latencies flatten the ratio below the ideal 10x.
        assert times[50_000] > times[5_000] * 2.5

    def test_selectivity_shrinks_downstream_cost(self):
        """A 1% filter makes the downstream group cheaper than a 90%
        filter — physical costs follow the *actual* intermediate sizes."""
        group_times = {}
        for threshold, tag in ((1, "selective"), (58, "permissive")):
            rts = RuntimeSystem(Cluster.preset("pooled-rack", seed=63))
            physical = PhysicalQueryEngine(rts)
            rng = np.random.default_rng(2)
            physical.register_table(
                "t", synthetic_table(rng, 50_000, key_cardinality=64))
            _result, stats = physical.execute(
                GroupCount(Filter(Scan("t"), "c1", "<", threshold), "c0"))
            group_task = next(n for n in stats.tasks if "group" in n)
            group_times[tag] = stats.tasks[group_task].duration
        assert group_times["selective"] < group_times["permissive"]

    def test_join_builds_on_smaller_side(self, engine):
        """The engine's hash table sizes off the build side; verify via
        the scratch region the join allocated."""
        cluster = engine.rts.cluster
        cluster.trace.enabled = None  # capture everything from here on
        plan = HashJoin(Scan("orders"), Scan("customers"), on="c0")
        _result, stats = engine.execute(plan)
        allocs = [e for e in cluster.trace.by_name("allocate")
                  if "join" in str(e.fields["region"])
                  and "scratch" in str(e.fields["region"])]
        assert allocs
        # customers (500 rows) is the build side; its table is ~20 KiB,
        # so the hash table must be far smaller than orders' ~800 KiB.
        assert all(e.fields["size"] < 200 * 1024 for e in allocs)

    def test_unknown_table_raises(self, engine):
        with pytest.raises(KeyError):
            engine.execute(Scan("ghost"))

    def test_duplicate_registration_rejected(self, engine):
        with pytest.raises(KeyError):
            engine.register_table(
                "orders", synthetic_table(np.random.default_rng(3), 10))
