"""Tests: the LLM request job, the P/D pools, and the prefix trie."""

import pytest

from repro.apps.llm import (
    DECODE_POOL,
    PREFILL_POOL,
    PrefixTrie,
    build_request_job,
    define_pd_pools,
)
from repro.hardware import Cluster
from repro.hardware.spec import ComputeKind
from repro.runtime import RuntimeSystem


class TestRequestJob:
    def test_two_phase_dataflow(self):
        job = build_request_job(256, 64)
        assert set(job.tasks) == {"prefill", "decode"}
        prefill, decode = job.tasks["prefill"], job.tasks["decode"]
        # The KV cache is prefill's output region; its ownership
        # transfers to decode through the ordinary handover.
        assert prefill.work.output.size == 256 * 2048
        assert decode.name in {t.name for t in prefill.downstream()}
        assert prefill.properties.device_pool == PREFILL_POOL
        assert decode.properties.device_pool == DECODE_POOL
        assert decode.properties.streaming

    def test_colocated_job_has_no_pool_roles(self):
        job = build_request_job(64, 8, disaggregate=False)
        assert job.tasks["prefill"].properties.device_pool is None
        assert job.tasks["decode"].properties.device_pool is None

    def test_cached_prefix_shrinks_prefill_not_decode_reads(self):
        cold = build_request_job(256, 16)
        warm = build_request_job(256, 16, cached_prefix_tokens=192)
        # Prefill computes (and emits KV for) only the uncached suffix.
        assert warm.tasks["prefill"].work.ops \
            == cold.tasks["prefill"].work.ops / 4
        assert warm.tasks["prefill"].work.output.size \
            == cold.tasks["prefill"].work.output.size / 4
        # Decode still reads the *full* KV working set per token.
        read = lambda job: (job.tasks["decode"].work.input_usage.touches
                            * job.tasks["prefill"].work.output.size)
        assert read(warm) == read(cold)

    def test_full_hit_still_seeds_decode(self):
        job = build_request_job(64, 8, cached_prefix_tokens=64)
        assert job.tasks["prefill"].work.ops > 0
        assert job.tasks["prefill"].work.output.size > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            build_request_job(0, 8)
        with pytest.raises(ValueError):
            build_request_job(8, 0)
        with pytest.raises(ValueError):
            build_request_job(8, 8, cached_prefix_tokens=9)
        with pytest.raises(ValueError):
            build_request_job(8, 8, cached_prefix_tokens=-1)


class TestPdPools:
    def test_split_halves_accelerators(self):
        cluster = Cluster.preset("pooled-rack")
        prefill, decode = define_pd_pools(cluster)
        assert prefill == ("gpu1",) and decode == ("gpu2",)
        assert cluster.device_pools[PREFILL_POOL] == ("gpu1",)
        assert cluster.device_pools[DECODE_POOL] == ("gpu2",)

    def test_needs_two_devices(self):
        cluster = Cluster.preset("pooled-rack")
        with pytest.raises(ValueError):
            define_pd_pools(cluster, kind=ComputeKind.FPGA)

    def test_phases_land_in_their_pools(self):
        cluster = Cluster.preset("pooled-rack", seed=3)
        define_pd_pools(cluster)
        rts = RuntimeSystem(cluster)
        stats = rts.run_job(build_request_job(128, 8))
        assert stats.ok
        assert stats.assignment["prefill"] == "gpu1"
        assert stats.assignment["decode"] == "gpu2"

    def test_undefined_pools_do_not_constrain(self):
        # Pool-annotated jobs still run on clusters without the split.
        cluster = Cluster.preset("pooled-rack", seed=3)
        rts = RuntimeSystem(cluster)
        stats = rts.run_job(build_request_job(128, 8))
        assert stats.ok


class TestPrefixTrie:
    def test_longest_cached_stops_at_first_gap(self):
        trie = PrefixTrie()
        trie.insert(("a",))
        trie.insert(("a", "b"))
        trie.insert(("a", "b", "c", "d"))  # "c" itself not cached
        assert trie.longest_cached(("a", "b", "c", "d")) == 2
        trie.insert(("a", "b", "c"))
        assert trie.longest_cached(("a", "b", "c", "d")) == 4
        assert trie.longest_cached(("x",)) == 0
        assert len(trie) == 4

    def test_remove_is_idempotent(self):
        trie = PrefixTrie()
        trie.insert(("a", "b"))
        trie.remove(("a", "b"))
        trie.remove(("a", "b"))
        trie.remove(("never", "there"))
        assert len(trie) == 0
        assert trie.longest_cached(("a", "b")) == 0

    def test_remove_inner_node_truncates_hits(self):
        trie = PrefixTrie()
        for depth in range(1, 4):
            trie.insert(tuple("abc"[:depth]))
        trie.remove(("a",))
        assert trie.longest_cached(("a", "b", "c")) == 0

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            PrefixTrie().insert(())
