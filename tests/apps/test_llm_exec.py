"""Tests: the serving engine — P/D jobs, prefix cache, leak audits."""

import pytest

from repro import connect
from repro.apps.llm import define_pd_pools
from repro.apps.llm_exec import LLMEngine
from repro.hardware import Cluster
from repro.runtime import RuntimeSystem
from repro.workloads import llm_request_stream


def stream(n=24, **kw):
    kw.setdefault("seed", 11)
    kw.setdefault("output_tokens", (4, 16))
    kw.setdefault("prompt_tail_tokens", (16, 64))
    return llm_request_stream(n, **kw)


@pytest.fixture
def session():
    with connect("pooled-rack", seed=11) as s:
        s.register_tenant("chat", weight=2.0, priority="interactive")
        yield s


class TestServe:
    def test_open_loop_completes_all(self, session):
        define_pd_pools(session.cluster)
        engine = LLMEngine(session)
        result = engine.serve(stream())
        assert result.completed == 24
        assert result.shed == 0
        assert result.horizon_ns > 0
        assert result.throughput_per_s() > 0
        # Phase latencies were measured for every completed request.
        assert len(result.ttft_ns()) == 24
        assert len(result.decode_ns()) == 24
        assert all(v >= 0 for v in result.stall_ns())

    def test_closed_loop_completes_all(self, session):
        engine = LLMEngine(session)
        result = engine.serve(stream(12), mode="closed", concurrency=3)
        assert result.completed == 12

    def test_prefix_cache_hits_and_drains(self, session):
        define_pd_pools(session.cluster)
        engine = LLMEngine(session)
        result = engine.serve(stream(32))
        assert result.hit_rate > 0
        assert result.prefix_hit_blocks > 0
        # Hits really shorten prefill: some request had cached tokens.
        assert any(r.cached_tokens > 0 for r in result.records)
        # Zero refcount leaks, then an explicit drain frees the blocks.
        assert result.leaked == {}
        assert engine.audit() == {}
        assert engine.shutdown() > 0
        assert engine.cache.pinned_bytes() == 0

    def test_prefix_caching_off_never_hits(self, session):
        engine = LLMEngine(session, prefix_caching=False)
        result = engine.serve(stream(8))
        assert result.hit_rate == 0.0
        assert result.prefix_hit_blocks == 0
        assert len(engine.cache) == 0

    def test_capacity_bound_evicts_lru(self, session):
        engine = LLMEngine(session, prefix_capacity_blocks=4)
        result = engine.serve(stream(32))
        assert len(engine.cache) <= 4
        assert result.evictions > 0
        assert result.leaked == {}

    def test_tenant_attribution(self, session):
        session.register_tenant("batch", weight=1.0, priority="batch")
        engine = LLMEngine(session)
        result = engine.serve(stream(
            24, batch_tenant="batch", batch_fraction=0.5))
        chat = result.tenant_records("chat")
        batch = result.tenant_records("batch")
        assert chat and batch
        assert len(chat) + len(batch) == 24

    def test_serve_validation(self, session):
        engine = LLMEngine(session)
        with pytest.raises(ValueError):
            engine.serve([])
        with pytest.raises(ValueError):
            engine.serve(stream(4), mode="sideways")
        with pytest.raises(ValueError):
            engine.serve(stream(4), mode="closed", concurrency=0)

    def test_engine_validation(self, session):
        with pytest.raises(ValueError):
            LLMEngine(session, kv_bytes_per_token=0)
        with pytest.raises(ValueError):
            LLMEngine(session, ops_per_token=0.0)


class TestOwnershipTransfer:
    def test_pooled_rack_handover_is_zero_copy(self, session):
        define_pd_pools(session.cluster)
        engine = LLMEngine(session, prefix_caching=False)
        result = engine.serve(stream(6))
        # Both pools address the CXL pool: the P->D handover moves
        # ownership, not bytes.
        assert result.kv_bytes_moved == 0

    def test_compute_centric_handover_moves_ownership_not_bytes(self):
        # Figure 1a: even without a shared pool, declarative placement
        # sees decode as an observer of prefill's output *before*
        # allocating it, so the KV region lands where both accelerators
        # can address it and the handover is still a pure ownership
        # move — the paper's point about planning placements around
        # transfers instead of copying after the fact.
        with connect("compute-centric", seed=11) as session:
            session.register_tenant("chat", weight=2.0,
                                    priority="interactive")
            define_pd_pools(session.cluster)
            engine = LLMEngine(session, prefix_caching=False)
            result = engine.serve(stream(6))
            transfers = session.rts.handover.stats.zero_copy
        assert result.completed == 6
        assert transfers >= 6  # one P->D move per request
        assert result.kv_bytes_moved == 0


class TestLegacyPath:
    @pytest.fixture(autouse=True)
    def fresh_warning_registry(self):
        from repro import _compat
        _compat.reset_warnings()
        yield
        _compat.reset_warnings()

    def test_bare_rts_spelling_warns_and_serves(self):
        rts = RuntimeSystem(Cluster.preset("pooled-rack", seed=11))
        with pytest.warns(DeprecationWarning, match="^repro\\."):
            engine = LLMEngine(rts)
        result = engine.serve(stream(6))
        assert result.completed == 6
        assert result.leaked == {}
