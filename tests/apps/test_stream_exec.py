"""Tests for the pipelined streaming executor."""

import pytest

from repro.apps import build_hospital_job
from repro.apps.stream_exec import StreamExecutor, StreamStats, WindowRecord
from repro.hardware import Cluster
from repro.runtime import RuntimeSystem

KiB = 1024


def hospital_template(index: int):
    job = build_hospital_job(n_frames=8)
    job.name = f"window-{index}"
    return job


@pytest.fixture
def rts():
    return RuntimeSystem(Cluster.preset("pooled-rack", seed=83))


class TestStreamExecutor:
    def test_all_windows_complete_with_queueing(self, rts):
        executor = StreamExecutor(rts, hospital_template, max_in_flight=2)
        stats = executor.run(n_windows=10, interval_ns=50_000.0)
        assert stats.completed == 10
        assert stats.dropped == 0
        assert rts.memory.live_regions() == []

    def test_pipelining_beats_serial_throughput(self):
        horizons = {}
        for in_flight in (1, 3):
            rts = RuntimeSystem(Cluster.preset("pooled-rack", seed=84))
            executor = StreamExecutor(
                rts, hospital_template, max_in_flight=in_flight)
            executor.run(n_windows=8, interval_ns=10_000.0)
            horizons[in_flight] = rts.cluster.engine.now
        assert horizons[3] < horizons[1]

    def test_queue_policy_latency_grows_under_overload(self, rts):
        """Arrivals faster than service: queued windows wait longer and
        longer — the textbook backpressure signature."""
        executor = StreamExecutor(rts, hospital_template, max_in_flight=1,
                                  backpressure="queue")
        stats = executor.run(n_windows=8, interval_ns=20_000.0)
        assert stats.completed == 8
        latencies = [w.latency for w in stats.windows]
        assert latencies[-1] > latencies[0] * 2

    def test_drop_policy_bounds_latency(self, rts):
        executor = StreamExecutor(rts, hospital_template, max_in_flight=1,
                                  backpressure="drop")
        stats = executor.run(n_windows=12, interval_ns=20_000.0)
        assert stats.dropped > 0
        assert stats.completed + stats.dropped == 12
        # Completed windows never waited in a queue.
        max_latency = max(w.latency for w in stats.windows if w.completed)
        queueing = StreamExecutor(
            RuntimeSystem(Cluster.preset("pooled-rack", seed=83)),
            hospital_template, max_in_flight=1, backpressure="queue")
        q_stats = queueing.run(n_windows=12, interval_ns=20_000.0)
        assert max_latency < max(w.latency for w in q_stats.windows if w.completed)

    def test_percentiles(self):
        stats = StreamStats()
        for i, latency in enumerate([10.0, 20.0, 30.0, 40.0]):
            record = WindowRecord(i, arrived_at=0.0)
            record.finished_at = latency
            stats.windows.append(record)
        assert stats.percentile(0) == 10.0
        assert stats.percentile(100) == 40.0
        assert stats.percentile(50) == pytest.approx(25.0)
        with pytest.raises(ValueError):
            stats.percentile(120)

    def test_empty_stats(self):
        stats = StreamStats()
        assert stats.percentile(50) == 0.0
        assert stats.throughput_per_s(1e9) == 0.0

    def test_validation(self, rts):
        with pytest.raises(ValueError):
            StreamExecutor(rts, hospital_template, max_in_flight=0)
        with pytest.raises(ValueError):
            StreamExecutor(rts, hospital_template, backpressure="explode")
        executor = StreamExecutor(rts, hospital_template)
        with pytest.raises(ValueError):
            executor.run(n_windows=0, interval_ns=100.0)
