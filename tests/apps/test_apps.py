"""Integration tests: the four Table 3 application classes end to end."""

import numpy as np
import pytest

from repro.apps import (
    MiniDB,
    build_hospital_job,
    build_query_job,
    build_stencil_job,
    build_training_job,
    region_census,
)
from repro.hardware import Cluster
from repro.hardware.spec import ComputeKind
from repro.memory.regions import RegionType
from repro.runtime import RuntimeSystem
from repro.workloads import synthetic_table

KiB = 1024
MiB = 1024 * KiB


@pytest.fixture
def rts():
    return RuntimeSystem(Cluster.preset("pooled-rack"))


class TestHospitalJob:
    def test_structure_matches_figure2(self):
        job = build_hospital_job()
        assert set(job.tasks) == {
            "preprocessing", "face_recognition", "track_hours",
            "compute_utilization", "alert_caregivers",
        }
        assert [t.name for t in job.sources()] == ["preprocessing"]
        downstream = {t.name for t in job.tasks["face_recognition"].downstream()}
        assert downstream == {"track_hours", "compute_utilization", "alert_caregivers"}

    def test_property_cards_match_figure2c(self):
        job = build_hospital_job()
        t = job.tasks
        assert t["preprocessing"].properties.compute is ComputeKind.GPU
        assert t["preprocessing"].properties.confidential
        assert not t["preprocessing"].properties.persistent
        assert not t["compute_utilization"].properties.confidential
        assert t["alert_caregivers"].properties.persistent
        assert t["alert_caregivers"].properties.confidential

    def test_runs_end_to_end(self, rts):
        stats = rts.run_job(build_hospital_job(n_frames=16))
        assert stats.ok
        assert rts.cluster.compute[stats.assignment["preprocessing"]].kind is ComputeKind.GPU
        assert rts.cluster.compute[stats.assignment["track_hours"]].kind is ComputeKind.CPU
        assert rts.memory.live_regions() == []

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            build_hospital_job(n_frames=0)


class TestQueryJob:
    def test_structure(self):
        job = build_query_job()
        order = [t.name for t in job.topological_order()]
        assert order.index("scan") < order.index("filter") < order.index("aggregate")
        assert order.index("aggregate") < order.index("join-probe")

    def test_runs_and_uses_table3_regions(self, rts):
        stats = rts.run_job(build_query_job(n_rows=100_000))
        assert stats.ok
        census = region_census(rts.cluster.trace)
        # Table 3 row 'DBMS': operator state in private scratch, latches
        # in global state, the hash index in global scratch.
        assert census.get(RegionType.PRIVATE_SCRATCH, 0) >= 2
        assert census.get(RegionType.GLOBAL_STATE, 0) >= 1
        assert census.get(RegionType.GLOBAL_SCRATCH, 0) >= 1
        assert census.get(RegionType.OUTPUT, 0) >= 3

    def test_selectivity_validated(self):
        with pytest.raises(ValueError):
            build_query_job(selectivity=0.0)


class TestMiniDB:
    def test_filter_and_group(self):
        rng = np.random.default_rng(0)
        db = MiniDB()
        db.create_table("t", synthetic_table(rng, 1000, key_cardinality=10))
        table = db.scan("t")
        filtered = db.filter(table, "c0", "<", 5)
        assert np.all(filtered["c0"] < 5)
        counts = db.group_count(table, "c0")
        assert sum(counts.values()) == 1000

    def test_hash_join_correctness(self):
        rng = np.random.default_rng(1)
        db = MiniDB()
        left = synthetic_table(rng, 200, key_cardinality=20)
        right = synthetic_table(rng, 300, key_cardinality=20)
        pairs = db.hash_join(left, right, on="c0")
        # Verify against the nested-loop reference.
        expected = {
            (i, j)
            for i in range(len(left))
            for j in range(len(right))
            if left["c0"][i] == right["c0"][j]
        }
        assert set(pairs) == expected

    def test_invalid_usage(self):
        db = MiniDB()
        with pytest.raises(KeyError):
            db.scan("ghost")
        rng = np.random.default_rng(2)
        db.create_table("t", synthetic_table(rng, 10))
        with pytest.raises(KeyError):
            db.create_table("t", synthetic_table(rng, 10))
        with pytest.raises(ValueError):
            db.filter(db.scan("t"), "c0", "~", 1)
        with pytest.raises(TypeError):
            db.create_table("bad", np.zeros(10))


class TestTrainingJob:
    def test_epochs_chain(self):
        job = build_training_job(epochs=3)
        order = [t.name for t in job.topological_order()]
        assert order.index("train-epoch0") < order.index("train-epoch1")
        assert order[-1] == "checkpoint"

    def test_runs_with_cachew_region_mix(self, rts):
        stats = rts.run_job(build_training_job(
            n_samples=10_000, model_bytes=4 * MiB, epochs=2,
        ))
        assert stats.ok
        # Training epochs must land on the requested accelerator class.
        assert rts.cluster.compute[stats.assignment["train-epoch0"]].kind is ComputeKind.GPU
        census = region_census(rts.cluster.trace)
        assert census.get(RegionType.GLOBAL_SCRATCH, 0) >= 1  # transformed cache
        assert census.get(RegionType.GLOBAL_STATE, 0) >= 1  # dispatcher state

    def test_tpu_variant(self, rts):
        job = build_training_job(
            n_samples=5_000, model_bytes=2 * MiB, epochs=1,
            accelerator=ComputeKind.TPU,
        )
        stats = rts.run_job(job)
        assert rts.cluster.compute[stats.assignment["train-epoch0"]].kind is ComputeKind.TPU

    def test_epoch_validation(self):
        with pytest.raises(ValueError):
            build_training_job(epochs=0)


class TestStencilJob:
    def test_structure_scales_with_workers_and_iterations(self):
        job = build_stencil_job(n_workers=3, iterations=2)
        workers = [n for n in job.tasks if n.startswith("worker")]
        assert len(workers) == 6
        barriers = [n for n in job.tasks if n.startswith("barrier")]
        assert len(barriers) == 2

    def test_runs_end_to_end(self, rts):
        stats = rts.run_job(build_stencil_job(
            n_workers=3, grid_bytes=8 * MiB, iterations=2,
        ))
        assert stats.ok
        assert rts.memory.live_regions() == []

    def test_workers_parallel_within_iteration(self, rts):
        stats = rts.run_job(build_stencil_job(
            n_workers=4, grid_bytes=32 * MiB, iterations=1,
        ))
        workers = [s for name, s in stats.tasks.items() if name.startswith("worker")]
        # At least two workers overlap in time.
        workers.sort(key=lambda s: s.started_at)
        assert workers[1].started_at < workers[0].finished_at

    def test_validation(self):
        with pytest.raises(ValueError):
            build_stencil_job(n_workers=0)
