"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_presets_lists_all(self, capsys):
        assert main(["presets"]) == 0
        out = capsys.readouterr().out
        for preset in ("pooled-rack", "table1-host", "two-socket-numa"):
            assert preset in out

    def test_info_renders_live_table1(self, capsys):
        assert main(["info", "table1-host"]) == 0
        out = capsys.readouterr().out
        assert "Memory pool (live Table 1)" in out
        assert "dram0" in out and "far0" in out and "hdd0" in out
        assert "Compute pool" in out

    def test_demo_runs_clean(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "demo job finished" in out
        assert "zero-copy" in out
        assert "leaked regions: 0" in out

    def test_demo_on_other_preset(self, capsys):
        assert main(["demo", "compute-centric"]) == 0
        assert "demo job finished" in capsys.readouterr().out

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            main(["info", "atlantis"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestTopoCommand:
    def test_topo_lists_links_and_roles(self, capsys):
        from repro.__main__ import main

        assert main(["topo", "two-socket-numa"]) == 0
        out = capsys.readouterr().out
        assert "cxl" in out  # the UPI link's technology class
        assert "ddr" in out
        assert "compute: cpu0, cpu1" in out
        assert "memory: dram0, dram1" in out
