"""Tests for the federated session (repro.federation.session).

``connect(racks=N)`` must behave like N copies of the single-rack
session behind one front door: tenants span racks, the drive loop
terminates, and racks join/drain elastically without job-level
failures.
"""

import pytest

from repro.api import connect
from repro.dataflow import Job, RegionUsage, Task, WorkSpec
from repro.federation import FederatedSession, RackState

MiB = 1 << 20


def pipeline(name, ops=1e5, payload=2 * MiB):
    job = Job(name)
    a = job.add_task(Task("a", work=WorkSpec(
        ops=ops, output=RegionUsage(payload))))
    b = job.add_task(Task("b", work=WorkSpec(
        ops=ops, input_usage=RegionUsage(0))))
    job.connect(a, b)
    return job


class TestConnect:
    def test_connect_racks_returns_federated_session(self):
        fed = connect("pooled-rack", racks=2, seed=9)
        assert isinstance(fed, FederatedSession)
        assert [r.name for r in fed.racks] == ["rack0", "rack1"]
        # One engine, N clusters: every rack shares the clock.
        assert all(r.cluster.engine is fed.engine for r in fed.racks)
        clusters = {id(r.cluster) for r in fed.racks}
        assert len(clusters) == 2

    def test_racks_rejects_conflicting_arguments(self):
        from repro.hardware import Cluster

        with pytest.raises(ValueError):
            connect(racks=2, cluster=Cluster.preset("pooled-rack"))
        with pytest.raises(ValueError):
            from repro.runtime import TenantRegistry

            connect(racks=2, tenants=TenantRegistry())

    def test_single_job_runs_to_stats(self):
        fed = connect("pooled-rack", racks=2, seed=9)
        stats = fed.run(pipeline("solo"))
        assert stats.ok
        assert not fed.job_failures()

    def test_run_trace_accounts_every_arrival(self):
        fed = connect("pooled-rack", racks=3, seed=9, max_concurrent=4)
        fed.register_tenant("web", weight=2.0)
        arrivals = [
            (10_000.0 * i, f"j{i}", (lambda i=i: pipeline(f"j{i}")), "web")
            for i in range(9)
        ]
        handles = fed.run_trace(arrivals)
        assert len(handles) == 9
        assert all(h.accounted for h in handles)
        assert not fed.job_failures()
        # Round-robin default: the load spread over all three racks.
        spread = {h.rack for h in handles}
        assert spread == {"rack0", "rack1", "rack2"}


class TestTenancy:
    def test_tenants_span_all_racks(self):
        fed = connect("pooled-rack", racks=2, seed=9)
        fed.register_tenant("web", weight=3.0, priority="interactive",
                            slo_target_ns=1e6)
        for rack in fed.racks:
            assert "web" in rack.driver.tenants
            assert "tenant:web" in rack.obs.slo
        report = fed.tenant_report()
        assert set(report) == {"rack0", "rack1"}
        assert all("web" in per_rack for per_rack in report.values())

    def test_late_joining_rack_inherits_tenants(self):
        fed = connect("pooled-rack", racks=1, seed=9)
        fed.register_tenant("web", weight=2.0, slo_target_ns=1e6)
        newcomer = fed.add_rack()
        assert newcomer.name == "rack1"
        assert "web" in newcomer.driver.tenants
        assert "tenant:web" in newcomer.obs.slo


class TestElasticity:
    def test_add_rack_becomes_routable(self):
        fed = connect("pooled-rack", racks=1, seed=9)
        assert len(fed.registry.routable_racks()) == 1
        fed.add_rack()
        assert len(fed.registry.routable_racks()) == 2

    def test_drain_completes_under_load_without_failures(self):
        fed = connect("pooled-rack", racks=2, seed=9, max_concurrent=2)
        fed.register_tenant("web")
        drained = {}

        def chaos():
            yield fed.engine.timeout(20_000.0)
            done = fed.drain_rack("rack0")
            drained["at"] = yield done

        fed.engine.process(chaos(), name="chaos")
        arrivals = [
            (5_000.0 * i, f"j{i}", (lambda i=i: pipeline(f"j{i}", ops=3e5)),
             "web")
            for i in range(10)
        ]
        handles = fed.run_trace(arrivals)
        # The drain finished, the rack left the registry, and not one
        # job — including those already on rack0 — failed.
        assert drained["at"] == "rack0"
        assert "rack0" not in fed.registry
        assert all(h.accounted for h in handles)
        assert not fed.job_failures()
        assert fed.registry.stats.drains_completed == 1
        # The drained rack's nodes went through the graceful machinery.
        rack0 = next(r for r in fed._all_racks if r.name == "rack0")
        assert rack0.monitor.stats.drains_started >= 1

    def test_draining_rack_receives_no_new_routes(self):
        fed = connect("pooled-rack", racks=2, seed=9)
        fed.registry.begin_drain("rack0")
        assert fed.registry.state("rack0") is RackState.DRAINING
        for i in range(4):
            handle = fed.submit(pipeline(f"j{i}"))
            assert handle.rack == "rack1"
        fed.run()
        assert not fed.job_failures()


class TestReporting:
    def test_report_covers_router_registry_and_racks(self):
        fed = connect("pooled-rack", racks=2, seed=9)
        fed.run(pipeline("j"))
        report = fed.report()
        assert report["router"]["routed"] == 1
        assert report["registry"]["registered"] == 2
        assert set(report["racks"]) == {"rack0", "rack1"}
        total = sum(r["completed"] for r in report["racks"].values())
        assert total == 1

    def test_dashboard_renders_federation_sections(self):
        fed = connect("pooled-rack", racks=2, seed=9)
        fed.run(pipeline("j"))
        text = fed.dashboard()
        assert "Federation racks" in text
        assert "Federation routing decisions" in text
        assert "rack0" in text and "rack1" in text
