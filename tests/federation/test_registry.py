"""Tests for federation service discovery (repro.federation.registry).

The registry's liveness view must be *derived*: it never probes devices
itself, it reads each rack's HealthMonitor — immediately on health
transitions (on_change hooks) and periodically via the heartbeat.
"""

import pytest

from repro.federation import RackState, federate
from repro.sim.faults import FaultKind

#: pooled-rack has 18 tracked devices; mem-shelf holds 4 of them, so a
#: shelf crash drops the health fraction to 14/18 ~ 0.78.
SHELF_FRACTION = 14 / 18


def build(racks=2, **kwargs):
    kwargs.setdefault("heartbeat_ns", 1_000.0)
    return federate(racks, "pooled-rack", seed=5, **kwargs)


class TestMembership:
    def test_racks_start_up_and_routable(self):
        fed = build()
        assert [r.name for r in fed.registry.racks()] == ["rack0", "rack1"]
        assert all(
            fed.registry.state(r.name) is RackState.UP
            for r in fed.registry.racks()
        )
        assert len(fed.registry.routable_racks()) == 2

    def test_duplicate_name_rejected(self):
        fed = build()
        with pytest.raises(ValueError):
            fed.registry.register(fed.registry.get("rack0"))

    def test_deregister_forgets_the_rack(self):
        fed = build()
        fed.registry.deregister("rack1")
        assert "rack1" not in fed.registry
        assert [r.name for r in fed.registry.routable_racks()] == ["rack0"]

    def test_validation(self):
        with pytest.raises(ValueError):
            build(heartbeat_ns=0.0)
        with pytest.raises(ValueError):
            build(degraded_below=0.3, down_below=0.7)  # inverted
        with pytest.raises(ValueError):
            federate(0)


class TestLiveness:
    def test_crash_degrades_via_on_change_hook(self):
        fed = build(degraded_below=0.9, down_below=0.2,
                    detection_delay_ns=0.0)
        rack0 = fed.registry.get("rack0")
        rack0.cluster.crash_node("mem-shelf")
        # No heartbeat ran: the monitor's on_change hook alone must
        # have refreshed the registry state.
        assert rack0.health_fraction() == pytest.approx(SHELF_FRACTION)
        assert fed.registry.state("rack0") is RackState.DEGRADED
        # Degraded is still routable — capacity shrank, not vanished.
        assert rack0 in fed.registry.routable_racks()

    def test_degraded_recovers_to_up(self):
        fed = build(degraded_below=0.9, detection_delay_ns=0.0)
        rack0 = fed.registry.get("rack0")
        rack0.cluster.crash_node("mem-shelf")
        assert fed.registry.state("rack0") is RackState.DEGRADED
        rack0.cluster.faults.inject_now(FaultKind.NODE_RESTART, "mem-shelf")
        fed.engine.run()
        assert fed.registry.state("rack0") is RackState.UP
        assert fed.registry.stats.transitions >= 2

    def test_down_rack_is_not_routable(self):
        fed = build(degraded_below=0.9, down_below=0.7,
                    detection_delay_ns=0.0)
        rack0 = fed.registry.get("rack0")
        rack0.cluster.crash_node("mem-shelf")     # 14/18 ~ 0.78
        rack0.cluster.crash_node("blade-cpu1")    # 12/18 ~ 0.67 < 0.7
        assert fed.registry.state("rack0") is RackState.DOWN
        assert [r.name for r in fed.registry.routable_racks()] == ["rack1"]

    def test_one_racks_faults_do_not_touch_siblings(self):
        fed = build(degraded_below=0.9, detection_delay_ns=0.0)
        fed.registry.get("rack0").cluster.crash_node("mem-shelf")
        assert fed.registry.state("rack1") is RackState.UP
        assert fed.registry.get("rack1").health_fraction() == 1.0


class TestDrainState:
    def test_begin_drain_is_sticky_and_unroutable(self):
        fed = build()
        fed.registry.begin_drain("rack0")
        assert fed.registry.state("rack0") is RackState.DRAINING
        assert [r.name for r in fed.registry.routable_racks()] == ["rack1"]
        # Idempotent.
        fed.registry.begin_drain("rack0")
        assert fed.registry.stats.drains_started == 1


class TestHeartbeat:
    def test_heartbeat_samples_every_racks_window(self):
        fed = build(heartbeat_ns=500.0)
        fed.registry.start_heartbeat()
        fed.engine.run(until=2_600.0)
        for rack in fed.registry.racks():
            assert len(rack.window) >= 5
        assert fed.registry.stats.heartbeats >= 5
        fed.registry.stop_heartbeat()
        # With the heartbeat dead the queue drains — run() returns.
        fed.engine.run()

    def test_start_heartbeat_is_idempotent(self):
        fed = build()
        proc = fed.registry.start_heartbeat()
        assert fed.registry.start_heartbeat() is proc
        fed.registry.stop_heartbeat()

    def test_gauges_exported_per_rack(self):
        fed = build()
        fed.registry.pulse()
        metrics = fed.obs.data()["metrics"]
        for name in ("rack0", "rack1"):
            assert f"fed.rack.state/{name}" in metrics
            assert metrics[f"fed.rack.health/{name}"]["value"] == 1.0
            assert f"fed.rack.load/{name}" in metrics
