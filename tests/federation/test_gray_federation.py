"""Tests for gray-failure awareness at the federation layer.

Two derived behaviours: a rack's ``health_fraction`` half-weights
members its own HealthMonitor has flagged fail-slow (so enough slow
devices tip the registry state to DEGRADED without any crash), and the
router treats DEGRADED racks as a last resort — it spills jobs around
them while any fully-UP rack is routable, but never sheds work that a
slow rack could still carry.
"""

import pytest

from repro.dataflow import Job, RegionUsage, Task, WorkSpec
from repro.federation import RackState, federate
from repro.runtime.health import DegradationPolicy

MiB = 1 << 20

#: pooled-rack has 18 tracked devices.
DEVICE_TOTAL = 18

#: Evidence-only detection with the peer gate short-circuited so a
#: single slow sample flags a device (tests drive the ratios by hand).
EAGER = DegradationPolicy(min_samples=1, min_peers=99)


def build(racks=2, **kwargs):
    kwargs.setdefault("heartbeat_ns", 1_000.0)
    kwargs.setdefault("degraded_below", 0.9)
    kwargs.setdefault("detection_delay_ns", 0.0)
    return federate(racks, "pooled-rack", seed=5, **kwargs)


def slow_down(rack, count):
    """Feed fail-slow evidence for ``count`` of the rack's devices."""
    rack.monitor.degradation = EAGER
    victims = sorted(rack.monitor.up_devices())[:count]
    for name in victims:
        rack.monitor.observe_latency(name, 300.0, 100.0)
    return victims


def pipeline(name, ops=1e5, payload=2 * MiB):
    job = Job(name)
    a = job.add_task(Task("a", work=WorkSpec(
        ops=ops, output=RegionUsage(payload))))
    b = job.add_task(Task("b", work=WorkSpec(
        ops=ops, input_usage=RegionUsage(0))))
    job.connect(a, b)
    return job


class TestHealthFraction:
    def test_degraded_members_count_half(self):
        fed = build()
        rack0 = fed.registry.get("rack0")
        assert rack0.health_fraction() == pytest.approx(1.0)
        victims = slow_down(rack0, 3)
        assert len(rack0.monitor.degraded_devices()) == len(victims)
        assert rack0.health_fraction() == pytest.approx(
            (DEVICE_TOTAL - 0.5 * len(victims)) / DEVICE_TOTAL
        )

    def test_degraded_members_remain_usable(self):
        # Half-weighting is a routing signal, not an eviction: the
        # monitor still admits the slow devices.
        fed = build()
        rack0 = fed.registry.get("rack0")
        victims = slow_down(rack0, 2)
        for name in victims:
            assert rack0.monitor.can_use(name)


class TestRegistryDerivation:
    def test_enough_slow_members_tip_the_rack_to_degraded(self):
        fed = build()
        rack0 = fed.registry.get("rack0")
        # degraded_below=0.9 needs health_fraction < 0.9: with 18
        # devices at half-weight that takes ceil(1.8 / 0.5) = 4 slow
        # members; mark 5 for margin.
        slow_down(rack0, 5)
        assert fed.registry.state("rack0") is RackState.DEGRADED
        # Degraded is still routable — slow, not gone.
        assert rack0 in fed.registry.routable_racks()
        assert fed.registry.state("rack1") is RackState.UP

    def test_cleared_evidence_recovers_the_rack(self):
        fed = build()
        rack0 = fed.registry.get("rack0")
        victims = slow_down(rack0, 5)
        assert fed.registry.state("rack0") is RackState.DEGRADED
        # Healthy ratios push every score back under clear_ratio.
        for name in victims:
            for _ in range(8):
                rack0.monitor.observe_latency(name, 100.0, 100.0)
        assert not rack0.monitor.degraded_devices()
        assert fed.registry.state("rack0") is RackState.UP


class TestRouterAvoidance:
    def test_jobs_spill_around_a_degraded_rack(self):
        fed = build(routing="round_robin")
        slow_down(fed.registry.get("rack0"), 5)
        for i in range(4):
            fed.submit(pipeline(f"j{i}"))
        assert [j.rack for j in fed.jobs] == ["rack1"] * 4
        assert fed.router.stats.degraded_avoided == 4
        assert fed.obs.counter("fed.degraded_avoided").value == 4
        fed.run()
        assert not fed.job_failures()

    def test_degraded_rack_is_the_last_resort_not_a_shed(self):
        # Every rack slow: route anyway instead of shedding.
        fed = build(routing="round_robin")
        for name in ("rack0", "rack1"):
            slow_down(fed.registry.get(name), 5)
        handle = fed.submit(pipeline("j"))
        assert not handle.shed
        assert handle.rack in ("rack0", "rack1")
        assert fed.router.stats.degraded_avoided == 0
        fed.run()
        assert not fed.job_failures()

    def test_recovered_rack_rejoins_the_rotation(self):
        fed = build(routing="round_robin")
        rack0 = fed.registry.get("rack0")
        victims = slow_down(rack0, 5)
        fed.submit(pipeline("j0"))
        assert fed.jobs[0].rack == "rack1"
        for name in victims:
            for _ in range(8):
                rack0.monitor.observe_latency(name, 100.0, 100.0)
        assert fed.registry.state("rack0") is RackState.UP
        before = fed.router.stats.degraded_avoided
        for i in range(1, 5):
            fed.submit(pipeline(f"j{i}"))
        assert {j.rack for j in fed.jobs[1:]} == {"rack0", "rack1"}
        assert fed.router.stats.degraded_avoided == before
        fed.run()
        assert not fed.job_failures()
