"""Tests for the watermark overload detector (repro.federation.overload)."""

import types

import pytest

from repro.federation import OverloadDetector
from repro.obs.slo import SloTracker


def fake_rack(queued=0, slo=None):
    """The minimal duck the detector reads: ``queued`` + ``obs.slo``."""
    return types.SimpleNamespace(
        queued=queued,
        obs=types.SimpleNamespace(slo=slo if slo is not None else SloTracker()),
    )


def burning_slo(miss_every=2, objective=0.5, n=20):
    """An SLO tracker whose workload misses half its deadlines."""
    slo = SloTracker()
    slo.set_policy("w", target_ns=100.0, objective=objective)
    for i in range(n):
        slo.record("w", 1_000.0 if i % miss_every == 0 else 10.0)
    return slo


class TestWatermarks:
    def test_healthy_rack_is_not_overloaded(self):
        detector = OverloadDetector(queue_watermark=4, burn_watermark=2.0)
        rack = fake_rack(queued=3)
        assert not detector.is_overloaded(rack)
        assert detector.reason(rack) is None

    def test_deep_queue_trips(self):
        detector = OverloadDetector(queue_watermark=4)
        assert detector.reason(fake_rack(queued=4)) == "queue"
        assert detector.is_overloaded(fake_rack(queued=10))

    def test_slo_burn_trips_even_with_empty_queues(self):
        # Objective 0.5 => budget 0.5; missing ~half the deadlines puts
        # the burn rate near 1.0, so a 0.9 watermark trips.
        detector = OverloadDetector(queue_watermark=100, burn_watermark=0.9)
        rack = fake_rack(queued=0, slo=burning_slo())
        assert detector.max_burn(rack) >= 0.9
        assert detector.reason(rack) == "slo_burn"

    def test_workloads_without_policies_never_burn(self):
        slo = SloTracker()
        slo.record("untracked", 1e9)  # latency recorded, no objective
        detector = OverloadDetector(burn_watermark=0.1)
        assert detector.max_burn(fake_rack(slo=slo)) == 0.0
        assert not detector.is_overloaded(fake_rack(slo=slo))

    def test_validation(self):
        with pytest.raises(ValueError):
            OverloadDetector(queue_watermark=0)
        with pytest.raises(ValueError):
            OverloadDetector(burn_watermark=0.0)
