"""Tests for federation routing (repro.federation.router).

Policy decisions are tested over synthetic rack stand-ins (they are
duck-typed over ``name``/``load_score``); the router itself — overload
spill/shed, the dataset catalog, and simulated cross-rack fetches — is
tested against real two/three-rack federations.
"""

import pytest

from repro.dataflow import Job, RegionUsage, Task, WorkSpec
from repro.federation import (
    AffinityPolicy,
    LeastLoadedPolicy,
    PrefixAffinityPolicy,
    RoundRobinPolicy,
    federate,
)

MiB = 1 << 20


class FakeRack:
    """A synthetic stats-window reading: just a name and a load score."""

    def __init__(self, name, score):
        self.name = name
        self._score = score

    def load_score(self, now):
        return self._score


def pipeline(name, ops=1e5, payload=2 * MiB):
    job = Job(name)
    a = job.add_task(Task("a", work=WorkSpec(
        ops=ops, output=RegionUsage(payload))))
    b = job.add_task(Task("b", work=WorkSpec(
        ops=ops, input_usage=RegionUsage(0))))
    job.connect(a, b)
    return job


class TestPolicies:
    def test_round_robin_cycles_in_order(self):
        racks = [FakeRack("a", 0.0), FakeRack("b", 0.0), FakeRack("c", 0.0)]
        policy = RoundRobinPolicy()
        picks = [policy.choose(racks, 0.0, None, set()).name
                 for _ in range(6)]
        assert picks == ["a", "b", "c", "a", "b", "c"]

    def test_round_robin_adapts_to_membership_changes(self):
        policy = RoundRobinPolicy()
        three = [FakeRack("a", 0.0), FakeRack("b", 0.0), FakeRack("c", 0.0)]
        policy.choose(three, 0.0, None, set())  # a
        policy.choose(three, 0.0, None, set())  # b
        two = three[:2]  # c left the federation
        assert policy.choose(two, 0.0, None, set()).name in ("a", "b")

    def test_least_loaded_picks_minimum_score(self):
        racks = [FakeRack("a", 2.5), FakeRack("b", 0.25), FakeRack("c", 1.0)]
        assert LeastLoadedPolicy().choose(
            racks, 0.0, None, set()).name == "b"

    def test_least_loaded_breaks_ties_by_name(self):
        racks = [FakeRack("b", 1.0), FakeRack("a", 1.0)]
        assert LeastLoadedPolicy().choose(
            racks, 0.0, None, set()).name == "a"

    def test_affinity_prefers_resident_rack_even_when_loaded(self):
        racks = [FakeRack("a", 9.0), FakeRack("b", 0.0)]
        pick = AffinityPolicy().choose(racks, 0.0, "s1", {"a"})
        assert pick.name == "a"

    def test_affinity_with_replicas_picks_least_loaded_replica(self):
        racks = [FakeRack("a", 9.0), FakeRack("b", 1.0), FakeRack("c", 0.0)]
        pick = AffinityPolicy().choose(racks, 0.0, "s1", {"a", "b"})
        assert pick.name == "b"

    def test_affinity_fallback_is_sticky(self):
        policy = AffinityPolicy()
        racks = [FakeRack("a", 5.0), FakeRack("b", 1.0)]
        first = policy.choose(racks, 0.0, "s1", set())
        assert first.name == "b"  # least-loaded fallback
        # Load inverts, but the session sticks where it landed.
        racks[0]._score, racks[1]._score = 0.0, 9.0
        assert policy.choose(racks, 0.0, "s1", set()).name == "b"
        # A different session is free to pick the now-idle rack.
        assert policy.choose(racks, 0.0, "s2", set()).name == "a"

    def test_affinity_ignores_residency_outside_candidates(self):
        racks = [FakeRack("a", 1.0)]
        pick = AffinityPolicy().choose(racks, 0.0, "s1", {"gone-rack"})
        assert pick.name == "a"


class TestPrefixAffinity:
    def test_routes_to_longest_resident_prefix(self):
        fed = federate(2, "pooled-rack", seed=3, routing="prefix_affinity")
        # The shared template's KV blocks live on rack1; a request keyed
        # by a deeper path should land there even though nothing is
        # resident under its exact key.
        fed.pin_dataset("sys0/sys1", "rack1", 1 * MiB)
        racks = fed.registry.routable_racks()
        pick = fed.router.policy.choose(
            racks, 0.0, "sys0/sys1/t3b0/tail42", set())
        assert pick.name == "rack1"

    def test_falls_back_to_affinity_without_prefix_residency(self):
        fed = federate(2, "pooled-rack", seed=3, routing="prefix_affinity")
        racks = fed.registry.routable_racks()
        first = fed.router.policy.choose(racks, 0.0, "nowhere/else", set())
        # Sticky like plain affinity: the same session stays put.
        again = fed.router.policy.choose(racks, 0.0, "nowhere/else", set())
        assert first.name == again.name

    def test_exact_residency_still_wins(self):
        # `resident` (the exact-key holders) takes precedence over any
        # ancestor lookup, matching AffinityPolicy semantics.
        fed = federate(2, "pooled-rack", seed=3, routing="prefix_affinity")
        fed.pin_dataset("sys0", "rack1", 1 * MiB)
        racks = fed.registry.routable_racks()
        pick = fed.router.policy.choose(
            racks, 0.0, "sys0/deeper", {"rack0"})
        assert pick.name == "rack0"

    def test_registered_in_policy_table(self):
        from repro.federation import POLICIES
        assert POLICIES["prefix_affinity"] is PrefixAffinityPolicy


class TestRouterCatalog:
    def test_pin_dataset_validates_rack(self):
        fed = federate(2, "pooled-rack", seed=3)
        with pytest.raises(KeyError):
            fed.pin_dataset("d", "no-such-rack", 1 * MiB)
        with pytest.raises(ValueError):
            fed.pin_dataset("d", "rack0", -1.0)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            federate(2, "pooled-rack", routing="teleport")


class TestCrossRackFetch:
    def test_local_jobs_pay_no_fetch(self):
        fed = federate(2, "pooled-rack", seed=3, routing="affinity")
        fed.pin_dataset("d", "rack0", 8 * MiB)
        stats = fed.run(pipeline("j"), session="d")
        assert stats.ok
        assert fed.router.stats.cross_rack_fetches == 0
        assert fed.jobs[0].rack == "rack0"
        assert fed.jobs[0].fetched_bytes == 0.0

    def test_remote_jobs_pay_fetch_then_replicate(self):
        # Round-robin ping-pongs the session across both racks: the
        # first landing on rack1 fetches; once the replica exists,
        # later rack1 landings start immediately.
        fed = federate(
            2, "pooled-rack", seed=3, routing="round_robin",
            interrack_bandwidth=1.0, interrack_latency_ns=1_000.0,
        )
        fed.pin_dataset("d", "rack0", 8 * MiB)
        first = fed.run(pipeline("j0"), pipeline("j1"), session="d")
        assert all(r is not None and r.ok for r in first)
        assert fed.router.stats.cross_rack_fetches == 1
        assert fed.router.stats.cross_rack_bytes == 8 * MiB
        assert fed.router.resident_racks("d") == {"rack0", "rack1"}
        # Second wave: rack1 already holds the replica — no new fetch.
        second = fed.run(pipeline("j2"), pipeline("j3"), session="d")
        assert all(r is not None and r.ok for r in second)
        assert fed.router.stats.cross_rack_fetches == 1
        fetched = [j for j in fed.jobs if j.fetched_bytes]
        assert len(fetched) == 1 and fetched[0].rack == "rack1"

    def test_fetch_delays_submission_on_the_shared_clock(self):
        fed = federate(
        2, "pooled-rack", seed=3, routing="round_robin",
            interrack_bandwidth=1.0, interrack_latency_ns=500.0,
        )
        fed.pin_dataset("d", "rack0", 1 * MiB)
        fed.run(pipeline("j0"), pipeline("j1"), session="d")
        remote = next(j for j in fed.jobs if j.rack == "rack1")
        # Arrived at the rack only after latency + bytes/bandwidth.
        assert remote.admitted.arrived_at == pytest.approx(500.0 + 1 * MiB)


class TestOverloadRouting:
    def test_spill_to_least_loaded_sibling(self):
        fed = federate(
            2, "pooled-rack", seed=3, routing="affinity",
            max_concurrent=1, queue_watermark=2,
        )
        fed.pin_dataset("d", "rack0", 0.0)
        for i in range(4):
            fed.submit(pipeline(f"j{i}"), session="d")
        # j0 runs, j1/j2 queue on rack0; j3 finds rack0 at the
        # watermark and spills to rack1.
        assert [j.rack for j in fed.jobs] == [
            "rack0", "rack0", "rack0", "rack1",
        ]
        assert fed.jobs[3].spilled
        assert fed.router.stats.spills == 1
        assert fed.obs.counter("fed.spills").value == 1
        fed.run()
        assert not fed.job_failures()

    def test_shed_when_every_rack_is_overloaded(self):
        fed = federate(
            2, "pooled-rack", seed=3, routing="round_robin",
            max_concurrent=1, queue_watermark=1,
        )
        for i in range(6):
            fed.submit(pipeline(f"j{i}"))
        shed = [j for j in fed.jobs if j.shed]
        assert shed and all(j.rack is None for j in shed)
        assert fed.router.stats.sheds == len(shed)
        fed.run()
        # Shed jobs are failures by definition; routed ones completed.
        assert {j.name for j in fed.job_failures()} == {
            j.name for j in shed
        }

    def test_shed_when_no_rack_is_routable(self):
        fed = federate(2, "pooled-rack", seed=3)
        fed.registry.begin_drain("rack0")
        fed.registry.begin_drain("rack1")
        handle = fed.submit(pipeline("j"))
        assert handle.shed and handle.rack is None
