"""Regression tests for failure-path runtime statistics and cleanup.

Two historical bugs are pinned here: a failed job never stamped
``JobStats.finished_at`` (``_finalize`` returns early on failure), so
its makespan was negative; and tasks that failed before starting kept
``0.0`` timestamps, so ``duration``/``queue_delay`` were garbage.
"""

import pytest

from repro.dataflow import Job, RegionUsage, Task, WorkSpec, task
from repro.hardware import Cluster
from repro.runtime import RuntimeSystem

KiB = 1024


@pytest.fixture
def rts():
    return RuntimeSystem(Cluster.preset("pooled-rack"))


def failing_chain_job(name="chain"):
    """upstream (fails mid-run) -> downstream (never starts)."""
    job = Job(name)

    @task(job, name="upstream", work=WorkSpec(output=RegionUsage(4 * KiB)))
    def upstream(ctx):
        yield from ctx.sleep(25.0)
        raise RuntimeError("mid-task crash")

    @task(job, name="downstream", after=upstream,
          work=WorkSpec(input_usage=RegionUsage(0)))
    def downstream(ctx):
        yield from ctx.sleep(1.0)

    return job


class TestFailedJobStats:
    def test_failed_job_has_nonnegative_makespan(self, rts):
        rts.cluster.engine.timeout(1000.0)
        rts.cluster.engine.run()  # submit at t>0 so the bug would show
        with pytest.raises(RuntimeError, match="mid-task crash"):
            rts.run_job(failing_chain_job())
        stats = rts.executions[-1].stats
        assert not stats.ok
        assert stats.finished_at >= stats.submitted_at > 0
        assert stats.makespan >= 25.0

    def test_finished_at_stamped_at_failure_time(self, rts):
        with pytest.raises(RuntimeError):
            rts.run_job(failing_chain_job())
        stats = rts.executions[-1].stats
        assert stats.finished_at == rts.cluster.engine.now

    def test_in_flight_job_reports_zero_makespan(self, rts):
        job = Job("slow")

        @task(job, name="long", work=WorkSpec())
        def long_task(ctx):
            yield from ctx.sleep(1e6)

        execution = rts.submit(job)
        rts.run(until=10.0)  # mid-run: no finish time yet
        assert execution.stats.makespan == 0.0


class TestNeverStartedTaskStats:
    def test_downstream_of_failure_reports_zero_duration(self, rts):
        with pytest.raises(RuntimeError):
            rts.run_job(failing_chain_job())
        rts.cluster.engine.run()  # drain the cascade
        downstream = rts.executions[-1].stats.tasks["downstream"]
        assert downstream.started_at is None
        assert not downstream.started
        assert downstream.duration == 0.0
        assert downstream.queue_delay is None

    def test_failed_running_task_keeps_real_duration(self, rts):
        with pytest.raises(RuntimeError):
            rts.run_job(failing_chain_job())
        upstream = rts.executions[-1].stats.tasks["upstream"]
        assert upstream.started
        assert upstream.duration == pytest.approx(25.0)
        assert upstream.queue_delay is not None

    def test_successful_tasks_have_full_timestamps(self, rts):
        job = Job("fine")
        job.add_task(Task("only", work=WorkSpec(ops=1e4)))
        stats = rts.run_job(job)
        only = stats.tasks["only"]
        assert only.ready_at is not None
        assert only.finished_at >= only.started_at >= only.ready_at
        assert only.duration > 0


class TestAbortCleanup:
    def test_abort_after_mid_task_crash_frees_all_regions(self, rts):
        job = Job("leaky", global_state_size=8 * KiB)

        @task(job, name="crasher", work=WorkSpec(output=RegionUsage(4 * KiB)))
        def crasher(ctx):
            ctx.private_scratch(16 * KiB)
            out = ctx.output()
            yield from ctx.write(out, nbytes=1 * KiB)
            raise RuntimeError("crash with regions live")

        @task(job, name="waiter", after=crasher,
              work=WorkSpec(input_usage=RegionUsage(0)))
        def waiter(ctx):
            yield from ctx.sleep(1.0)

        with pytest.raises(RuntimeError):
            rts.run_job(job)
        rts.cluster.engine.run()  # drain stragglers
        execution = rts.executions[-1]
        assert rts.memory.live_regions()  # the crash leaked regions...
        execution.abort()
        assert rts.memory.live_regions() == []  # ...and abort reclaims them
        for device in rts.cluster.memory.values():
            assert device.used == 0
