"""Tests for the cost model (offers, access times, transfer estimates)."""

import pytest

from repro.dataflow import RegionUsage, Task, WorkSpec
from repro.hardware import Cluster
from repro.hardware.spec import OpClass
from repro.memory.interfaces import AccessPattern
from repro.memory.properties import BandwidthClass, LatencyClass
from repro.runtime import CostModel


@pytest.fixture
def pooled():
    cluster = Cluster.preset("pooled-rack")
    return cluster, CostModel(cluster)


@pytest.fixture
def host():
    cluster = Cluster.preset("table1-host")
    return cluster, CostModel(cluster)


class TestOffers:
    def test_figure3_offers_depend_on_observer(self, pooled):
        """The same physical device offers different classes to different
        compute devices — the core of Figure 3."""
        cluster, cm = pooled
        gddr = cluster.memory["gddr1"]
        from_gpu = cm.offered("gpu1", gddr)
        from_cpu = cm.offered("cpu1", gddr)
        assert from_gpu.rtt_ns < from_cpu.rtt_ns
        assert from_gpu.latency is LatencyClass.LOW

    def test_far_memory_offers_no_sync(self, host):
        cluster, cm = host
        offer = cm.offered("cpu0", cluster.memory["far0"])
        assert not offer.sync
        assert not offer.coherent
        assert not offer.isolated  # NIC-attached: not for confidential data

    def test_dram_offer_from_cpu(self, host):
        cluster, cm = host
        offer = cm.offered("cpu0", cluster.memory["dram0"])
        assert offer.sync and offer.coherent and offer.isolated
        assert offer.latency is LatencyClass.LOW
        assert offer.bandwidth is BandwidthClass.HIGH

    def test_offer_cache_and_invalidate(self, host):
        cluster, cm = host
        first = cm.offered("cpu0", cluster.memory["dram0"])
        assert cm.offered("cpu0", cluster.memory["dram0"]) is first
        cm.invalidate()
        assert cm.offered("cpu0", cluster.memory["dram0"]) is not first

    def test_unreachable_device_offer_is_infinite(self):
        cluster = Cluster(seed=0)
        from repro.hardware import calibration as cal

        cluster.add_compute(cal.make_cpu("cpu0"))
        cluster.add_memory(cal.make_dram("island"))
        cm = CostModel(cluster)
        offer = cm.offered("cpu0", cluster.memory["island"])
        assert offer.rtt_ns == float("inf")
        assert offer.bytes_per_ns == 0.0


class TestAccessTimes:
    def test_near_beats_far(self, host):
        cluster, cm = host
        usage = RegionUsage(1024 * 1024)
        t_dram = cm.access_time("cpu0", cluster.memory["dram0"], usage)
        t_cxl = cm.access_time("cpu0", cluster.memory["cxl0"], usage)
        t_far = cm.access_time("cpu0", cluster.memory["far0"], usage)
        assert t_dram < t_cxl < t_far

    def test_random_costs_more_than_sequential(self, host):
        cluster, cm = host
        seq = RegionUsage(64 * 1024, pattern=AccessPattern.SEQUENTIAL)
        rand = RegionUsage(64 * 1024, pattern=AccessPattern.RANDOM)
        dram = cluster.memory["dram0"]
        assert cm.access_time("cpu0", dram, rand) > cm.access_time("cpu0", dram, seq)

    def test_zero_usage_is_free(self, host):
        cluster, cm = host
        assert cm.access_time("cpu0", cluster.memory["dram0"], RegionUsage(0)) == 0.0

    def test_transfer_time_scales_and_respects_topology(self, host):
        cluster, cm = host
        near = cm.transfer_time(cluster.memory["dram0"], cluster.memory["cxl0"], 1 << 20)
        far = cm.transfer_time(cluster.memory["dram0"], cluster.memory["far0"], 1 << 20)
        assert far > near
        small = cm.transfer_time(cluster.memory["dram0"], cluster.memory["cxl0"], 1 << 10)
        assert small < near

    def test_same_device_transfer_double_cost(self, host):
        cluster, cm = host
        dram = cluster.memory["dram0"]
        t = cm.transfer_time(dram, dram, 1000)
        assert t == pytest.approx(2 * 1000 / dram.spec.bandwidth)


class TestTaskEstimates:
    def test_compute_time_prefers_matching_device(self, pooled):
        cluster, cm = pooled
        task = Task("t", work=WorkSpec(op_class=OpClass.MATMUL, ops=1e6))
        assert cm.compute_time(task, "gpu1") < cm.compute_time(task, "cpu1")

    def test_unsupported_op_is_infinite(self, pooled):
        cluster, cm = pooled
        task = Task("t", work=WorkSpec(op_class=OpClass.SCALAR, ops=1e6))
        assert cm.compute_time(task, "tpu1") == float("inf")

    def test_task_estimate_includes_memory_phases(self, pooled):
        cluster, cm = pooled
        light = Task("light", work=WorkSpec(op_class=OpClass.SCALAR, ops=1e4))
        heavy = Task(
            "heavy",
            work=WorkSpec(
                op_class=OpClass.SCALAR, ops=1e4,
                scratch=RegionUsage(16 * 1024 * 1024, touches=4.0),
            ),
        )
        scratch = cm.best_scratch_device("cpu1")
        t_light = cm.task_time_estimate(light, "cpu1", lambda role: scratch)
        t_heavy = cm.task_time_estimate(heavy, "cpu1", lambda role: scratch)
        assert t_heavy > t_light

    def test_best_scratch_device_is_sync_addressable(self, pooled):
        cluster, cm = pooled
        best = cm.best_scratch_device("gpu1")
        assert best is not None
        offer = cm.offered("gpu1", best)
        assert offer.sync
        # For a GPU the on-board GDDR should win (Figure 3).
        assert best.name == "gddr1"

    def test_best_scratch_for_cpu_is_local(self, pooled):
        cluster, cm = pooled
        best = cm.best_scratch_device("cpu1")
        assert best.name in ("dram-local1", "dram-local2")
