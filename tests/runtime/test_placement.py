"""Tests for placement policies (declarative, naive, static)."""

import pytest

from repro.hardware import Cluster
from repro.hardware.spec import MemoryKind
from repro.memory.manager import MemoryManager, PlacementError
from repro.memory.properties import LatencyClass, MemoryProperties
from repro.memory.regions import RegionType, region_properties
from repro.runtime import CostModel, DeclarativePlacement, NaivePlacement, PlacementRequest
from repro.runtime.placement import StaticKindPlacement

KiB = 1024
MiB = 1024 * KiB


@pytest.fixture
def env():
    cluster = Cluster.preset("pooled-rack")
    mm = MemoryManager(cluster)
    cm = CostModel(cluster)
    return cluster, mm, cm


def request(size=1 * MiB, properties=None, observers=("cpu1",), **kwargs):
    return PlacementRequest(
        size=size,
        properties=properties if properties is not None else MemoryProperties(),
        owner="t1",
        observers=observers,
        **kwargs,
    )


class TestDeclarative:
    def test_low_latency_scratch_lands_local(self, env):
        cluster, mm, cm = env
        policy = DeclarativePlacement(cluster, mm, cm)
        region = policy.place(request(
            properties=MemoryProperties(latency=LatencyClass.LOW, sync=True),
            observers=("cpu1",),
        ))
        offer = cm.offered("cpu1", region.device)
        assert offer.latency is LatencyClass.LOW

    def test_figure3_same_request_different_device_per_observer(self, env):
        """Figure 3: the identical logical request maps to DRAM for a CPU
        task and to GDDR for a GPU task."""
        cluster, mm, cm = env
        policy = DeclarativePlacement(cluster, mm, cm)
        props = MemoryProperties(latency=LatencyClass.LOW, sync=True)
        for_cpu = policy.place(request(properties=props, observers=("cpu1",)))
        for_gpu = policy.place(request(properties=props, observers=("gpu1",)))
        assert for_cpu.device.kind is MemoryKind.DRAM
        assert for_gpu.device.kind is MemoryKind.GDDR

    def test_persistent_request_lands_on_persistent_device(self, env):
        cluster, mm, cm = env
        policy = DeclarativePlacement(cluster, mm, cm)
        region = policy.place(request(
            properties=MemoryProperties(persistent=True), observers=("cpu1",)
        ))
        assert region.device.spec.persistent

    def test_confidential_avoids_nic_attached_pool(self, env):
        cluster, mm, cm = env
        policy = DeclarativePlacement(cluster, mm, cm)
        props = MemoryProperties(confidential=True, latency=LatencyClass.ANY)
        region = policy.place(request(properties=props))
        from repro.hardware.spec import Attachment

        assert region.device.spec.attachment is not Attachment.NIC

    def test_multi_observer_must_satisfy_all(self, env):
        """A region shared by a CPU task and a GPU task must be coherent
        from both — on the pooled rack that is the CXL pool, not GDDR."""
        cluster, mm, cm = env
        policy = DeclarativePlacement(cluster, mm, cm)
        region = policy.place(request(
            properties=region_properties(RegionType.GLOBAL_STATE),
            observers=("cpu1", "gpu2"),
        ))
        for observer in ("cpu1", "gpu2"):
            assert cm.offered(observer, region.device).satisfies(
                region_properties(RegionType.GLOBAL_STATE)
            )

    def test_unsatisfiable_raises(self, env):
        cluster, mm, cm = env
        policy = DeclarativePlacement(cluster, mm, cm)
        impossible = MemoryProperties(
            latency=LatencyClass.LOW, persistent=True, confidential=True, sync=True
        )
        with pytest.raises(PlacementError):
            policy.place(request(properties=impossible, observers=("cpu1",)))
        assert policy.rejections == 1

    def test_capacity_pressure_spills_to_next_tier(self, env):
        """When the favourite device fills up, later requests must go
        somewhere else instead of failing."""
        cluster, mm, cm = env
        policy = DeclarativePlacement(cluster, mm, cm)
        props = MemoryProperties(latency=LatencyClass.LOW, sync=True)
        local = cluster.memory["dram-local1"]
        filler = policy.place(request(
            size=local.capacity - 1 * MiB, properties=props, observers=("cpu1",)
        ))
        assert filler.device.name == "dram-local1"
        spill = policy.place(request(size=8 * MiB, properties=props, observers=("cpu1",)))
        assert spill.device.name != "dram-local1"

    def test_score_prefers_cheap_media_on_tie(self, env):
        cluster, mm, cm = env
        policy = DeclarativePlacement(cluster, mm, cm)
        relaxed = request(properties=MemoryProperties())
        candidates = policy.candidates(relaxed)
        assert len(candidates) > 3  # plenty of devices qualify
        chosen = policy.choose_device(relaxed)
        assert chosen in candidates

    def test_failed_device_excluded(self, env):
        cluster, mm, cm = env
        policy = DeclarativePlacement(cluster, mm, cm)
        cluster.memory["dram-local1"].fail()
        props = MemoryProperties(latency=LatencyClass.LOW, sync=True)
        region = policy.place(request(properties=props, observers=("cpu1",)))
        assert region.device.name != "dram-local1"


class TestNaive:
    def test_naive_is_deterministic_per_seed(self):
        results = []
        for _ in range(2):
            cluster = Cluster.preset("pooled-rack", seed=7)
            mm, cm = MemoryManager(cluster), CostModel(cluster)
            policy = NaivePlacement(cluster, mm, cm)
            results.append(
                [policy.place(request()).device.name for _ in range(10)]
            )
        assert results[0] == results[1]

    def test_naive_respects_persistence(self, env):
        cluster, mm, cm = env
        policy = NaivePlacement(cluster, mm, cm)
        for _ in range(10):
            region = policy.place(request(
                properties=MemoryProperties(persistent=True)
            ))
            assert region.device.spec.persistent

    def test_naive_spreads_over_many_devices(self, env):
        cluster, mm, cm = env
        policy = NaivePlacement(cluster, mm, cm)
        devices = {policy.place(request(size=64 * KiB)).device.name for _ in range(40)}
        assert len(devices) >= 3


class TestStatic:
    def test_static_uses_kind_map(self, env):
        cluster, mm, cm = env
        policy = StaticKindPlacement(cluster, mm, cm)
        region = policy.place(request(region_type=RegionType.PRIVATE_SCRATCH))
        assert region.device.kind is MemoryKind.DRAM

    def test_static_custom_map(self, env):
        cluster, mm, cm = env
        policy = StaticKindPlacement(
            cluster, mm, cm,
            kind_map={RegionType.PRIVATE_SCRATCH: MemoryKind.PMEM},
        )
        region = policy.place(request(region_type=RegionType.PRIVATE_SCRATCH))
        assert region.device.kind is MemoryKind.PMEM

    def test_static_falls_back_when_kind_full(self, env):
        cluster, mm, cm = env
        policy = StaticKindPlacement(
            cluster, mm, cm,
            kind_map={RegionType.PRIVATE_SCRATCH: MemoryKind.HBM},
        )
        hbm = cluster.memory["hbm_tpu"]
        policy.place(request(size=hbm.capacity, region_type=RegionType.PRIVATE_SCRATCH))
        spill = policy.place(request(size=1 * MiB, region_type=RegionType.PRIVATE_SCRATCH))
        assert spill.device.kind is not MemoryKind.HBM


class TestRequestValidation:
    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            PlacementRequest(
                size=0, properties=MemoryProperties(), owner="t", observers=("cpu1",)
            )

    def test_no_observers_rejected(self):
        with pytest.raises(ValueError):
            PlacementRequest(
                size=1, properties=MemoryProperties(), owner="t", observers=()
            )
