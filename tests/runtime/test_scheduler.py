"""Tests for the HEFT scheduler and its baselines."""

import pytest

from repro.dataflow import Job, Task, TaskProperties, WorkSpec, RegionUsage
from repro.hardware import Cluster
from repro.hardware.spec import ComputeKind, OpClass
from repro.runtime import (
    CostModel,
    HeftScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    SchedulingError,
)
from repro.runtime.scheduler import FixedScheduler

MiB = 1024 * 1024


@pytest.fixture
def env():
    cluster = Cluster.preset("pooled-rack")
    return cluster, CostModel(cluster)


def diamond_job():
    job = Job("diamond")
    a = job.add_task(Task("a", work=WorkSpec(ops=1e5, output=RegionUsage(1 * MiB))))
    b = job.add_task(Task("b", work=WorkSpec(
        op_class=OpClass.MATMUL, ops=1e7,
        input_usage=RegionUsage(0), output=RegionUsage(1 * MiB))))
    c = job.add_task(Task("c", work=WorkSpec(
        op_class=OpClass.VECTOR, ops=1e6,
        input_usage=RegionUsage(0), output=RegionUsage(1 * MiB))))
    d = job.add_task(Task("d", work=WorkSpec(ops=1e4, input_usage=RegionUsage(0))))
    job.connect(a, b)
    job.connect(a, c)
    job.connect(b, d)
    job.connect(c, d)
    return job


class TestHeft:
    def test_assigns_every_task(self, env):
        cluster, cm = env
        assignment = HeftScheduler().assign(diamond_job(), cluster, cm)
        assert set(assignment) == {"a", "b", "c", "d"}
        valid = set(cluster.compute)
        assert all(dev in valid for dev in assignment.values())

    def test_matmul_heavy_task_goes_to_accelerator(self, env):
        cluster, cm = env
        assignment = HeftScheduler().assign(diamond_job(), cluster, cm)
        assert cluster.compute[assignment["b"]].kind in (
            ComputeKind.GPU, ComputeKind.TPU
        )

    def test_compute_kind_constraint_respected(self, env):
        cluster, cm = env
        job = Job("pinned")
        job.add_task(Task(
            "t", work=WorkSpec(op_class=OpClass.VECTOR, ops=1e6),
            properties=TaskProperties(compute=ComputeKind.FPGA),
        ))
        assignment = HeftScheduler().assign(job, cluster, cm)
        assert cluster.compute[assignment["t"]].kind is ComputeKind.FPGA

    def test_impossible_kind_raises(self, env):
        cluster, cm = env
        job = Job("impossible")
        job.add_task(Task(
            "t", work=WorkSpec(op_class=OpClass.SCALAR, ops=1e6),
            properties=TaskProperties(compute=ComputeKind.TPU),  # TPU: no scalar
        ))
        with pytest.raises(SchedulingError):
            HeftScheduler().assign(job, cluster, cm)

    def test_parallel_tasks_spread_when_slots_contended(self, env):
        """With a single-slot device, HEFT must spill siblings elsewhere."""
        cluster = Cluster(seed=0)
        from repro.hardware import calibration as cal
        from repro.hardware.spec import LinkKind

        cluster.add_compute(cal.make_cpu("cpu-a", slots=1), node="n")
        cluster.add_compute(cal.make_cpu("cpu-b", slots=1), node="n")
        cluster.add_memory(cal.make_dram("dram"), node="n")
        cluster.connect("cpu-a", "dram", LinkKind.DDR)
        cluster.connect("cpu-b", "dram", LinkKind.DDR)
        cluster.connect("cpu-a", "cpu-b", LinkKind.CXL)
        cm = CostModel(cluster)

        job = Job("fanout")
        src = job.add_task(Task("src", work=WorkSpec(ops=1e3, output=RegionUsage(1024))))
        for i in range(4):
            sink = job.add_task(Task(
                f"w{i}", work=WorkSpec(ops=1e7, input_usage=RegionUsage(0))
            ))
            job.connect(src, sink)
        assignment = HeftScheduler().assign(job, cluster, cm)
        used = {assignment[f"w{i}"] for i in range(4)}
        assert used == {"cpu-a", "cpu-b"}

    def test_deterministic(self, env):
        cluster, cm = env
        a1 = HeftScheduler().assign(diamond_job(), cluster, cm)
        a2 = HeftScheduler().assign(diamond_job(), cluster, cm)
        assert a1 == a2


class TestStateDomain:
    """Jobs with Global State must schedule inside one coherence domain."""

    def make_state_job(self, compute=None):
        job = Job("stateful", global_state_size=64 * 1024)
        from repro.dataflow import TaskProperties

        for i in range(3):
            job.add_task(Task(
                f"t{i}", work=WorkSpec(ops=1e4),
                properties=TaskProperties(compute=compute),
            ))
        return job

    def test_pooled_rack_domain_spans_everything(self, env):
        cluster, cm = env
        from repro.runtime.scheduler import Scheduler

        domain = Scheduler.state_domain(self.make_state_job(), cluster, cm)
        assert domain == set(cluster.compute)

    def test_compute_centric_restricts_to_one_coherent_island(self):
        """Figure 1a: CPUs and PCIe accelerators share no coherent memory,
        so a stateful job must stay on one island."""
        cluster = Cluster.preset("compute-centric")
        cm = CostModel(cluster)
        assignment = HeftScheduler().assign(self.make_state_job(), cluster, cm)
        used = {assignment[t] for t in assignment}
        # All tasks on one CPU (the only devices coherent with some DRAM).
        assert len(used) == 1
        assert cluster.compute[next(iter(used))].kind is ComputeKind.CPU

    def test_gpu_task_with_state_infeasible_on_figure1a(self):
        """A GPU-pinned task in a stateful job cannot run on Fig. 1a —
        and the error says why."""
        cluster = Cluster.preset("compute-centric")
        cm = CostModel(cluster)
        job = self.make_state_job(compute=ComputeKind.GPU)
        with pytest.raises(SchedulingError, match="coherence domain"):
            HeftScheduler().assign(job, cluster, cm)

    def test_same_job_without_state_is_fine_on_figure1a(self):
        cluster = Cluster.preset("compute-centric")
        cm = CostModel(cluster)
        job = Job("stateless")
        from repro.dataflow import TaskProperties

        job.add_task(Task("t", work=WorkSpec(op_class=OpClass.MATMUL, ops=1e5),
                          properties=TaskProperties(compute=ComputeKind.GPU)))
        assignment = HeftScheduler().assign(job, cluster, cm)
        assert cluster.compute[assignment["t"]].kind is ComputeKind.GPU


class TestBaselines:
    def test_round_robin_cycles(self, env):
        cluster, cm = env
        job = Job("rr")
        for i in range(6):
            job.add_task(Task(f"t{i}", work=WorkSpec(op_class=OpClass.VECTOR, ops=1e4)))
        assignment = RoundRobinScheduler().assign(job, cluster, cm)
        assert len(set(assignment.values())) > 1

    def test_random_is_seed_deterministic(self):
        picks = []
        for _ in range(2):
            cluster = Cluster.preset("pooled-rack", seed=3)
            cm = CostModel(cluster)
            job = Job("rand")
            for i in range(6):
                job.add_task(Task(f"t{i}", work=WorkSpec(ops=1e4)))
            picks.append(RandomScheduler().assign(job, cluster, cm))
        assert picks[0] == picks[1]

    def test_fixed_mapping(self, env):
        cluster, cm = env
        job = Job("fixed")
        job.add_task(Task("t0", work=WorkSpec(ops=1e4)))
        assignment = FixedScheduler({"t0": "cpu2"}).assign(job, cluster, cm)
        assert assignment == {"t0": "cpu2"}

    def test_fixed_missing_task_raises(self, env):
        cluster, cm = env
        job = Job("fixed2")
        job.add_task(Task("t0", work=WorkSpec(ops=1e4)))
        with pytest.raises(SchedulingError):
            FixedScheduler({}).assign(job, cluster, cm)

    def test_fixed_unknown_device_raises(self, env):
        cluster, cm = env
        job = Job("fixed3")
        job.add_task(Task("t0", work=WorkSpec(ops=1e4)))
        with pytest.raises(SchedulingError):
            FixedScheduler({"t0": "ghost"}).assign(job, cluster, cm)
