"""Tests for the LingoDB-style cost-model calibration loop."""

import pytest

from repro.apps import build_query_job
from repro.hardware import Cluster
from repro.metrics import Profile
from repro.runtime import CalibratedCostModel, RuntimeSystem


def run_round(rts, cm, cluster, tag, n_jobs=4):
    """Run n concurrent queries, feed their profiles to the model.

    Returns this round's (raw, corrected) mean error.
    """
    jobs = [build_query_job(n_rows=200_000) for _ in range(n_jobs)]
    for i, job in enumerate(jobs):
        job.name = f"{tag}{i}"
    samples0 = cm.stats.samples
    raw0, corrected0 = cm.stats.raw_error_sum, cm.stats.corrected_error_sum
    for stats in rts.run_jobs(jobs):
        cm.observe(Profile.from_run(cluster, stats), stats)
    n = cm.stats.samples - samples0
    assert n > 0
    return (
        (cm.stats.raw_error_sum - raw0) / n,
        (cm.stats.corrected_error_sum - corrected0) / n,
    )


@pytest.fixture
def env():
    cluster = Cluster.preset("pooled-rack", trace_categories={"profile"})
    rts = RuntimeSystem(cluster)
    return cluster, rts, CalibratedCostModel(cluster)


class TestCalibration:
    def test_uncontended_predictions_are_nearly_exact(self, env):
        """Single job: model and simulator share access_plan, so the raw
        error is small — the baseline sanity check."""
        cluster, rts, cm = env
        stats = rts.run_job(build_query_job(n_rows=200_000))
        cm.observe(Profile.from_run(cluster, stats), stats)
        assert cm.stats.raw_mape < 0.15

    def test_contention_learned_within_one_round(self, env):
        """Four concurrent queries quadruple the shared port's load; the
        corrected error must collapse while the raw error stays high."""
        cluster, rts, cm = env
        run_round(rts, cm, cluster, "warm")
        raw, corrected = run_round(rts, cm, cluster, "steady")
        assert raw > 0.3  # contention makes the raw model wrong
        assert corrected < 0.1  # ...and the calibrated model right
        assert corrected < raw / 3

    def test_corrections_separate_patterns(self, env):
        """Bandwidth-bound sequential phases contend; latency-bound
        random phases do not.  The factors must reflect that split."""
        cluster, rts, cm = env
        run_round(rts, cm, cluster, "w")
        sequential = [
            factor for key, factor in cm.corrections().items()
            if key[-1] == "sequential"
        ]
        random_factors = [
            factor for key, factor in cm.corrections().items()
            if key[-1] == "random"
        ]
        assert sequential and random_factors
        assert max(sequential) > 2.0
        assert all(f == pytest.approx(1.0, abs=0.2) for f in random_factors)

    def test_corrected_estimates_feed_through_api(self, env):
        """access_time() reflects the learned factor."""
        from repro.dataflow.workspec import RegionUsage
        from repro.memory.interfaces import AccessPattern

        cluster, rts, cm = env
        device = cluster.memory["dram-local1"]
        usage = RegionUsage(1 << 20, pattern=AccessPattern.SEQUENTIAL)
        before = cm.access_time("cpu1", device, usage)
        run_round(rts, cm, cluster, "x")
        after = cm.access_time("cpu1", device, usage)
        key = ("memory", "cpu1", "dram-local1", "sequential")
        if key in cm.corrections():
            assert after == pytest.approx(before * cm.corrections()[key])

    def test_alpha_validated(self, env):
        cluster, _rts, _cm = env
        with pytest.raises(ValueError):
            CalibratedCostModel(cluster, alpha=0.0)
        with pytest.raises(ValueError):
            CalibratedCostModel(cluster, alpha=1.5)

    def test_observe_ignores_foreign_and_empty_phases(self, env):
        cluster, rts, cm = env
        stats = rts.run_job(build_query_job(n_rows=100_000))
        profile = Profile.from_run(cluster, stats)
        # Corrupt a phase to reference an unknown task: must be skipped.
        profile.phases[0].task = "ghost"
        consumed = cm.observe(profile, stats)
        assert consumed < len([p for p in profile.phases
                               if p.kind in ("read", "write")]) + 1
