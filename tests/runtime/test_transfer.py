"""Focused tests for the handover manager (Figure 4 machinery)."""

import pytest

from repro.hardware import Cluster
from repro.memory.manager import MemoryManager
from repro.memory.properties import LatencyClass, MemoryProperties
from repro.memory.region import RegionState
from repro.runtime import CostModel, DeclarativePlacement, HandoverManager

KiB = 1024
MiB = 1024 * KiB


@pytest.fixture
def env():
    cluster = Cluster.preset("pooled-rack", seed=113)
    mm = MemoryManager(cluster)
    cm = CostModel(cluster)
    placement = DeclarativePlacement(cluster, mm, cm)
    handover = HandoverManager(cluster, mm, cm, placement)
    return cluster, mm, handover


def run(cluster, gen):
    def driver():
        result = yield from gen
        return result

    return cluster.engine.run(until=cluster.engine.process(driver()))


def make_region(mm, device="dram-pool0", size=4 * MiB, owner="producer",
                properties=None):
    return mm.allocate_on(
        device, size, properties or MemoryProperties(), owner=owner)


class TestHandOver:
    def test_addressable_receiver_gets_zero_copy(self, env):
        cluster, mm, handover = env
        region = make_region(mm)
        result = run(cluster, handover.hand_over(
            region, "producer", "consumer", "gpu1"))
        assert result is region  # same region, new owner
        assert region.ownership.is_owner("consumer")
        assert not region.ownership.is_owner("producer")
        assert handover.stats.zero_copy == 1
        assert handover.stats.bytes_copied == 0

    def test_unreachable_receiver_gets_copy_and_original_freed(self, env):
        cluster, mm, handover = env
        # A region whose *properties* the receiver's view cannot satisfy:
        # low-latency-typed data that currently sits on far memory.
        region = make_region(
            mm, device="far0",
            properties=MemoryProperties(latency=LatencyClass.LOW),
        )
        offer = handover.costmodel.offered("tpu1", region.device)
        assert offer.latency is not LatencyClass.LOW  # fixture sanity

        replica = run(cluster, handover.hand_over(
            region, "producer", "consumer", "tpu1"))
        assert replica is not region
        assert region.state is RegionState.FREED  # producer's copy released
        assert replica.ownership.is_owner("consumer")
        assert handover.stats.copies == 1
        assert handover.stats.bytes_copied == region.size
        # The replica satisfies the receiver's view of the properties.
        new_offer = handover.costmodel.offered("tpu1", replica.device)
        assert new_offer.satisfies(region.properties)

    def test_share_out_all_copiers_when_nobody_can_use_it_in_place(self, env):
        cluster, mm, handover = env
        # LOW-typed data stuck on far memory: every receiver needs a copy.
        region = make_region(
            mm, device="far0",
            properties=MemoryProperties(latency=LatencyClass.LOW),
        )
        receivers = [("r0", "cpu1"), ("r1", "gpu1")]
        delivered = run(cluster, handover.share_out(
            region, "producer", receivers))
        assert all(r is not region for r in delivered.values())
        assert region.state is RegionState.FREED  # nobody kept the original
        assert handover.stats.copies == 2
        for owner, compute in receivers:
            replica = delivered[owner]
            assert replica.ownership.is_owner(owner)
            offer = handover.costmodel.offered(compute, replica.device)
            assert offer.latency is LatencyClass.LOW

    def test_share_out_all_sharers_frees_once_after_all_drop(self, env):
        cluster, mm, handover = env
        region = make_region(mm)
        receivers = [(f"r{i}", "cpu1") for i in range(3)]
        delivered = run(cluster, handover.share_out(
            region, "producer", receivers))
        assert all(r is region for r in delivered.values())
        for i in range(3):
            assert region.state is RegionState.ACTIVE
            mm.drop_owner(region, f"r{i}")
        assert region.state is RegionState.FREED

    def test_handover_takes_simulated_time(self, env):
        cluster, mm, handover = env
        region = make_region(mm)
        t0 = cluster.engine.now
        run(cluster, handover.hand_over(region, "producer", "c", "cpu1"))
        zero_copy_time = cluster.engine.now - t0
        from repro.runtime.costmodel import OWNERSHIP_TRANSFER_NS

        assert zero_copy_time == pytest.approx(OWNERSHIP_TRANSFER_NS)

    def test_zero_copy_ratio(self, env):
        cluster, mm, handover = env
        for _ in range(3):
            region = make_region(mm)
            run(cluster, handover.hand_over(region, "producer", "c", "cpu1"))
        assert handover.stats.zero_copy_ratio == 1.0
        empty = type(handover.stats)()
        assert empty.zero_copy_ratio == 0.0
