"""Tests for evidence-based gray-failure detection and mitigation.

The DEGRADED health state must be reached *only* from observed
latencies — never by peeking at the fault injector — and mitigation
(degraded-last placement/scheduling, retry budgets, decorrelated
jitter) must bound the blast radius of fail-slow devices.
"""

import pytest

from repro.dataflow import Job, WorkSpec, task
from repro.hardware import Cluster
from repro.runtime import (
    DegradationPolicy,
    HealthMonitor,
    HealthState,
    LatencyScorecard,
    RecoveryPolicy,
    RetryBudget,
    RuntimeSystem,
)
from repro.runtime.health import MONITOR_UNHANDLED_KINDS
from repro.sim.faults import FaultKind
from repro.sim.rand import RandomStreams

#: Detector tuned for unit tests: judge fast, no peer quorum needed.
FAST_DETECT = DegradationPolicy(min_samples=3, min_peers=99)


@pytest.fixture
def cluster():
    return Cluster.preset("pooled-rack")


def feed(monitor, target, ratio, n=4):
    for _ in range(n):
        monitor.observe_latency(target, ratio * 100.0, 100.0)


class TestScorecard:
    def test_window_rolls(self):
        card = LatencyScorecard(window=4)
        for ratio in (1.0, 1.0, 1.0, 1.0, 9.0, 9.0, 9.0, 9.0):
            card.observe("d", ratio * 10.0, 10.0)
        assert card.score("d") == pytest.approx(9.0)
        assert card.samples("d") == 4

    def test_bad_samples_ignored(self):
        card = LatencyScorecard()
        card.observe("d", 10.0, 0.0)  # zero expectation
        card.observe("d", -1.0, 10.0)  # negative observation
        assert card.score("d") is None

    def test_quantiles_interpolate(self):
        card = LatencyScorecard()
        for ratio in (1.0, 2.0, 3.0, 4.0):
            card.observe("d", ratio, 1.0)
        assert card.ratio_quantile("d", 0.0) == 1.0
        assert card.ratio_quantile("d", 1.0) == 4.0
        assert card.ratio_quantile("d", 0.5) == pytest.approx(2.5)
        assert card.ratio_quantile("missing", 0.5) is None

    def test_window_validation(self):
        with pytest.raises(ValueError):
            LatencyScorecard(window=0)


class TestDetection:
    def test_slow_evidence_marks_degraded(self, cluster):
        monitor = HealthMonitor(cluster, degradation=FAST_DETECT)
        feed(monitor, "dram-pool0", ratio=4.0)
        assert monitor.state("dram-pool0") is HealthState.DEGRADED
        assert monitor.is_degraded("dram-pool0")
        assert monitor.stats.degraded_detected == 1
        assert cluster.obs.counter("health.degraded_events").value == 1

    def test_detection_needs_min_samples(self, cluster):
        monitor = HealthMonitor(cluster, degradation=FAST_DETECT)
        feed(monitor, "dram-pool0", ratio=4.0, n=2)  # below min_samples=3
        assert monitor.state("dram-pool0") is HealthState.UP

    def test_healthy_ratios_never_flag(self, cluster):
        monitor = HealthMonitor(cluster, degradation=FAST_DETECT)
        feed(monitor, "dram-pool0", ratio=1.2, n=50)
        assert monitor.state("dram-pool0") is HealthState.UP

    def test_clears_with_hysteresis(self, cluster):
        monitor = HealthMonitor(cluster, degradation=FAST_DETECT)
        feed(monitor, "dram-pool0", ratio=4.0)
        assert monitor.is_degraded("dram-pool0")
        # Ratios between clear (1.5) and degrade (2.5): still flagged.
        feed(monitor, "dram-pool0", ratio=2.0, n=FAST_DETECT.window)
        assert monitor.is_degraded("dram-pool0")
        feed(monitor, "dram-pool0", ratio=1.0, n=FAST_DETECT.window)
        assert not monitor.is_degraded("dram-pool0")
        assert monitor.stats.degradations_cleared == 1

    def test_peer_outlier_gate_spares_uniform_slowness(self, cluster):
        """Congestion, not gray failure: once a slow *cohort* is
        established, an equally-slow newcomer is no outlier under the
        MAD gate and stays UP.  (The first crossers of min_samples have
        no judged peers yet, so the absolute threshold governs them —
        the gate's guarantee is peer-relative, not global.)"""
        policy = DegradationPolicy(min_samples=3, min_peers=4)
        monitor = HealthMonitor(cluster, degradation=policy)
        for name in ("dram-pool1", "cxl-exp0", "pmem-pool0", "far0",
                     "ssd0"):
            feed(monitor, name, ratio=4.0)
        feed(monitor, "dram-pool0", ratio=4.0)
        assert not monitor.is_degraded("dram-pool0")

    def test_true_outlier_is_flagged_among_healthy_peers(self, cluster):
        policy = DegradationPolicy(min_samples=3, min_peers=4)
        monitor = HealthMonitor(cluster, degradation=policy)
        for name in ("dram-pool1", "cxl-exp0", "pmem-pool0", "far0", "ssd0"):
            feed(monitor, name, ratio=1.1)
        feed(monitor, "dram-pool0", ratio=4.0)
        assert monitor.degraded_devices() == ["dram-pool0"]

    def test_transfer_evidence_charges_ports_to_devices(self, cluster):
        monitor = HealthMonitor(cluster, degradation=FAST_DETECT)
        route, effective = cluster.transfer_route(
            "dram-pool0", "dram-pool1", 1024.0)
        for _ in range(4):
            monitor.observe_transfer(route, 400.0, 100.0)
        # Port links resolve to their owning devices...
        assert monitor.is_degraded("dram-pool0")
        assert monitor.is_degraded("dram-pool1")
        # ...while pure fabric links are flagged as links.
        assert monitor.degraded_links()

    def test_degraded_outranked_by_real_failures(self, cluster):
        monitor = HealthMonitor(cluster, detection_delay_ns=0.0,
                                degradation=FAST_DETECT)
        cluster.crash_node("mem-shelf")
        assert monitor.state("dram-pool0") is HealthState.DOWN
        feed(monitor, "dram-pool0", ratio=4.0)
        assert monitor.state("dram-pool0") is HealthState.DOWN  # unchanged

    def test_degraded_devices_stay_usable_but_last(self, cluster):
        monitor = HealthMonitor(cluster, degradation=FAST_DETECT)
        feed(monitor, "dram-pool0", ratio=4.0)
        assert monitor.can_use("dram-pool0")
        assert "dram-pool0" in monitor.up_devices()

    def test_detection_off_by_default(self, cluster):
        monitor = HealthMonitor(cluster)
        feed(monitor, "dram-pool0", ratio=100.0, n=50)
        assert monitor.state("dram-pool0") is HealthState.UP
        assert monitor.latency_ratio_quantile("dram-pool0", 0.99) is None


class TestNoCheating:
    def test_monitor_handles_or_disclaims_every_fault_kind(self, cluster):
        """Exhaustiveness matrix: every FaultKind is either handled by
        the HealthMonitor or explicitly allow-listed, so adding a kind
        without deciding is a test failure, not a silent no-op."""
        monitor = HealthMonitor(cluster)
        handled = {
            kind
            for kind, handlers in cluster.faults._handlers.items()
            if any(
                getattr(h, "__self__", None) is monitor for h in handlers
            )
        }
        assert handled.isdisjoint(MONITOR_UNHANDLED_KINDS)
        missing = set(FaultKind) - handled - MONITOR_UNHANDLED_KINDS
        assert not missing, f"undecided FaultKinds: {sorted(m.value for m in missing)}"

    def test_gray_kinds_never_reach_the_monitor(self, cluster):
        """Injecting fail-slow faults must not move health state: only
        observed latency evidence may."""
        monitor = HealthMonitor(cluster, degradation=FAST_DETECT)
        cluster.faults.inject_now(FaultKind.DEVICE_SLOW, "dram-pool0",
                                  factor=0.001)
        cluster.faults.inject_now(FaultKind.DEVICE_SLOW, "cpu1",
                                  factor=0.001)
        assert monitor.degraded_devices() == []
        assert monitor.state("dram-pool0") is HealthState.UP
        assert monitor.state("cpu1") is HealthState.UP


class TestDegradedLastPreference:
    def test_placement_avoids_degraded_devices(self, cluster):
        from repro.memory.manager import MemoryManager
        from repro.memory.properties import MemoryProperties
        from repro.runtime import CostModel, DeclarativePlacement
        from repro.runtime.placement import PlacementRequest

        monitor = HealthMonitor(cluster, degradation=FAST_DETECT)
        manager = MemoryManager(cluster)
        placement = DeclarativePlacement(
            cluster, manager, CostModel(cluster))
        request = PlacementRequest(
            size=1024, properties=MemoryProperties(),
            owner="t", observers=("cpu1",), name="r")
        baseline = placement.choose_device(request).name
        feed(monitor, baseline, ratio=4.0)
        assert placement.choose_device(request).name != baseline
        # Clears -> back to the cost-optimal winner.
        feed(monitor, baseline, ratio=1.0, n=FAST_DETECT.window)
        assert placement.choose_device(request).name == baseline

    def test_scheduler_avoids_degraded_compute(self, cluster):
        from repro.dataflow.graph import Task
        from repro.runtime import Scheduler

        monitor = HealthMonitor(cluster, degradation=FAST_DETECT)
        probe = Task("t", work=WorkSpec(ops=1e4))
        names = {d.name for d in Scheduler.candidates(probe, cluster)}
        victim = sorted(names)[0]
        feed(monitor, victim, ratio=4.0)
        assert victim not in {
            d.name for d in Scheduler.candidates(probe, cluster)
        }
        # Degrade everything: the preference collapses rather than
        # leaving the scheduler with nothing.
        for name in names:
            feed(monitor, name, ratio=4.0)
        assert {d.name for d in Scheduler.candidates(probe, cluster)} == names


class TestRetryBudget:
    def test_tokens_bound_spending(self):
        budget = RetryBudget(2)
        assert budget.try_spend(0.0)
        assert budget.try_spend(10.0)
        assert not budget.try_spend(20.0)
        assert budget.spent == 2
        assert budget.denied == 1

    def test_refill_restores_tokens(self):
        budget = RetryBudget(1, refill_per_ns=0.001)
        assert budget.try_spend(0.0)
        assert not budget.try_spend(1.0)
        assert budget.try_spend(2000.0)  # 2 ns x 0.001 tokens/ns >= 1

    def test_deadline_denies_everything_after(self):
        budget = RetryBudget(100, deadline_ns=1_000.0)
        assert budget.try_spend(999.0)
        assert not budget.try_spend(1_000.0)
        assert budget.tokens == pytest.approx(99.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryBudget(-1)
        with pytest.raises(ValueError):
            RetryBudget(1, refill_per_ns=-0.1)

    def test_policy_factory(self):
        assert RecoveryPolicy().make_retry_budget() is None
        budget = RecoveryPolicy(
            retry_budget_tokens=3, retry_deadline_ns=50.0,
        ).make_retry_budget()
        assert budget.capacity == 3
        assert budget.deadline_ns == 50.0

    def test_exhausted_budget_fails_the_job(self):
        cluster = Cluster.preset("pooled-rack")
        HealthMonitor(cluster, detection_delay_ns=1_000.0)
        rts = RuntimeSystem(cluster, recovery=RecoveryPolicy(
            max_task_attempts=10, backoff_base_ns=10.0,
            retry_budget_tokens=2.0,
        ))
        job = Job("stormy")

        @task(job, name="t0", work=WorkSpec(ops=1e4))
        def t0(ctx):
            yield from ctx.sleep(10.0)
            from repro.sim.flows import TransferTimeout
            raise TransferTimeout(1.0, 1.0)  # recoverable every time

        execution = rts.submit(job)
        with pytest.raises(BaseException):
            cluster.engine.run(until=execution.done)
        # 1 initial + 2 budgeted retries, then the denial fails the job
        # well short of max_task_attempts.
        assert execution.stats.tasks["t0"].attempts == 3
        assert cluster.obs.counter("recovery.budget_denied").value == 1


class TestDecorrelatedJitter:
    def test_jitter_off_reproduces_legacy_schedule(self):
        policy = RecoveryPolicy(jitter=False, backoff_base_ns=100.0)
        rng = RandomStreams(1).stream("x")
        assert policy.jittered_backoff_ns(1, rng) == policy.backoff_ns(1)
        assert policy.jittered_backoff_ns(3, rng) == policy.backoff_ns(3)

    def test_jitter_bounded_by_base_and_cap(self):
        policy = RecoveryPolicy(backoff_base_ns=100.0, max_backoff_ns=500.0)
        rng = RandomStreams(2).stream("x")
        prev = 0.0
        for attempt in range(1, 20):
            delay = policy.jittered_backoff_ns(attempt, rng, prev)
            assert 100.0 <= delay <= 500.0
            prev = delay

    def test_cofailed_jobs_wake_on_distinct_ticks(self):
        """Regression: pre-jitter, two tasks failed by one fault would
        back off identically and collide on the same wake tick (then
        re-collide on the same recovering device).  Per-job seeded
        streams must decorrelate them while staying deterministic."""
        policy = RecoveryPolicy(backoff_base_ns=1_000.0)

        def delays(seed):
            streams = RandomStreams(seed)
            return [
                policy.jittered_backoff_ns(
                    1, streams.stream(f"retry-jitter:{job}"))
                for job in ("left", "right", "up", "down")
            ]

        first = delays(7)
        assert len(set(first)) == len(first)  # no collisions
        assert first == delays(7)  # deterministic per seed

    def test_rts_records_jittered_backoff_per_job(self):
        """End to end: two jobs co-failed by one node crash sleep
        different backoffs (TaskStats.last_backoff_ns)."""
        cluster = Cluster.preset("pooled-rack")
        HealthMonitor(cluster, detection_delay_ns=1_000.0)
        rts = RuntimeSystem(cluster, recovery=RecoveryPolicy(
            backoff_base_ns=5_000.0))

        def sleeper(name):
            job = Job(name)

            @task(job, name="t0", work=WorkSpec(ops=1e4))
            def t0(ctx):
                yield from ctx.sleep(200_000.0)

            return job

        left = rts.submit(sleeper("left"))
        right = rts.submit(sleeper("right"))
        victims = {left.assignment["t0"], right.assignment["t0"]}
        nodes = {cluster.node_of(v) for v in victims}
        for node in nodes:
            cluster.faults.inject_at(50_000.0, FaultKind.NODE_CRASH, node)
        cluster.engine.run(
            until=cluster.engine.all_of([left.done, right.done]))
        backoffs = {
            left.stats.tasks["t0"].last_backoff_ns,
            right.stats.tasks["t0"].last_backoff_ns,
        }
        assert all(b > 0.0 for b in backoffs)
        assert len(backoffs) == 2  # decorrelated wake ticks
