"""Attribution under chaos: the sum-to-makespan identity must survive
retries, re-placement, and degraded reads.

The causal DAG's core claim is unconditional: for every *finished* job,
``sum(attribution buckets) == finished_at - submitted_at`` within float
tolerance — no matter how many recovery detours the execution took.
These tests inject the same faults as ``test_inflight_recovery.py`` and
check the identity (plus path validity and the presence of the
``recovery_retry`` bucket) on the graphs the runtime recorded.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow import Job, RegionUsage, Task, WorkSpec, task
from repro.ft import OutputBackupStore
from repro.hardware import Cluster
from repro.obs.causal import attribute_job, validate_path
from repro.runtime import HealthMonitor, RecoveryPolicy, RuntimeSystem
from repro.sim.faults import FaultKind

KiB = 1024
MiB = 1024 * KiB

REL_TOL = 1e-6


def recovery_rts(cluster, **policy_kwargs):
    monitor = HealthMonitor(cluster, detection_delay_ns=1_000.0)
    rts = RuntimeSystem(cluster, recovery=RecoveryPolicy(**policy_kwargs))
    rts.backups = OutputBackupStore(cluster, rts.memory)
    return rts, monitor


def assert_attribution_identity(graph):
    """The unconditional invariants every finished graph must satisfy."""
    att = attribute_job(graph)
    assert att is not None, f"{graph.key} never finished"
    total = sum(att["buckets"].values())
    assert total == pytest.approx(att["makespan"], rel=REL_TOL), (
        f"{graph.key}: buckets sum to {total}, makespan {att['makespan']}"
    )
    assert validate_path(graph, att["path"])
    for src, dst, _kind in graph.edge_list():
        assert src < dst
    return att


class TestRetryAttribution:
    def make_sleeper_job(self, duration_ns=200_000.0):
        job = Job("sleeper")

        @task(job, name="t0", work=WorkSpec(ops=1e4))
        def t0(ctx):
            yield from ctx.sleep(duration_ns)

        return job

    def test_node_crash_retry_shows_up_as_recovery_time(self):
        cluster = Cluster.preset("pooled-rack")
        rts, _monitor = recovery_rts(cluster, backoff_base_ns=100.0)
        execution = rts.submit(self.make_sleeper_job())
        victim = execution.assignment["t0"]
        cluster.faults.inject_at(
            50_000.0, FaultKind.NODE_CRASH, cluster.node_of(victim)
        )
        stats = cluster.engine.run(until=execution.done)
        assert stats.ok and stats.task_retries == 1

        [graph] = cluster.obs.causal.jobs.values()
        att = assert_attribution_identity(graph)
        assert att["ok"] is True
        # The retry detour is charged, not silently folded into compute.
        assert att["buckets"]["recovery_retry"] > 0.0
        kinds = {kind for _s, _d, kind in graph.edge_list()}
        assert "retry" in kinds

    def test_recovery_node_records_cause_and_replacement(self):
        cluster = Cluster.preset("pooled-rack")
        rts, _monitor = recovery_rts(cluster, backoff_base_ns=100.0)
        execution = rts.submit(self.make_sleeper_job())
        victim = execution.assignment["t0"]
        cluster.faults.inject_at(
            50_000.0, FaultKind.NODE_CRASH, cluster.node_of(victim)
        )
        assert cluster.engine.run(until=execution.done).ok

        [graph] = cluster.obs.causal.jobs.values()
        recoveries = [n for n in graph.nodes.values()
                      if n.kind == "recovery"]
        assert recoveries
        node = recoveries[0]
        assert node.bucket == "recovery_retry"
        assert node.fields["attempt"] == 2
        assert node.fields.get("replaced_by") == execution.assignment["t0"]
        # The health monitor's fault detection is cited as the cause.
        assert node.fields.get("cause") in ("device_down", "drain")

    def test_failed_job_graph_still_sums(self):
        cluster = Cluster.preset("pooled-rack")
        HealthMonitor(cluster, detection_delay_ns=1_000.0)
        rts = RuntimeSystem(cluster)  # no RecoveryPolicy: crash is fatal
        execution = rts.submit(self.make_sleeper_job())
        victim = execution.assignment["t0"]
        cluster.faults.inject_at(
            50_000.0, FaultKind.NODE_CRASH, cluster.node_of(victim)
        )
        with pytest.raises(BaseException):
            cluster.engine.run(until=execution.done)
        assert not execution.stats.ok

        [graph] = cluster.obs.causal.jobs.values()
        att = assert_attribution_identity(graph)
        assert att["ok"] is False


class TestDegradedReadAttribution:
    def make_pipeline_job(self, consumer_delay_ns):
        job = Job("pipeline")

        @task(job, name="producer",
              work=WorkSpec(ops=1e4, output=RegionUsage(256 * KiB)))
        def producer(ctx):
            out = ctx.output()
            yield from ctx.write(out)

        @task(job, name="consumer", after=producer,
              work=WorkSpec(ops=1e4, input_usage=RegionUsage(0, touches=1.0)))
        def consumer(ctx):
            yield from ctx.sleep(consumer_delay_ns)
            yield from ctx.read(ctx.input())

        return job

    def test_backup_restore_retry_keeps_the_identity(self):
        cluster = Cluster.preset("pooled-rack")
        rts, _monitor = recovery_rts(cluster, backoff_base_ns=100.0)
        execution = rts.submit(self.make_pipeline_job(500_000.0))
        engine = cluster.engine
        while not execution._inboxes["consumer"]:
            engine.step()
        handle = execution._inboxes["consumer"][0]
        while not rts.backups.has_backup(handle.region):
            engine.step()
        cluster.faults.inject_now(
            FaultKind.NODE_CRASH, cluster.node_of(handle.region.device.name)
        )
        stats = engine.run(until=execution.done)
        assert stats.ok and stats.degraded_reads >= 1

        [graph] = cluster.obs.causal.jobs.values()
        att = assert_attribution_identity(graph)
        assert att["buckets"]["recovery_retry"] > 0.0
        recoveries = [n for n in graph.nodes.values()
                      if n.kind == "recovery"]
        assert any(n.fields.get("degraded_reads") for n in recoveries)


class TestChaosSweepAttribution:
    """Randomized fault schedules: the identity holds for every graph."""

    @settings(max_examples=20, deadline=None)
    @given(
        crash_at=st.floats(10_000.0, 150_000.0),
        node=st.sampled_from(["mem-shelf", "memnode0", "stornode0"]),
        seed=st.integers(0, 20),
        width=st.integers(1, 3),
    )
    def test_every_finished_graph_sums_to_its_makespan(
        self, crash_at, node, seed, width
    ):
        cluster = Cluster.preset("pooled-rack", seed=seed)
        rts, _monitor = recovery_rts(cluster, backoff_base_ns=100.0)
        job = Job("chaos")
        source = job.add_task(Task("src", work=WorkSpec(
            ops=1e5, output=RegionUsage(4 * MiB))))
        sink = job.add_task(Task("sink", work=WorkSpec(
            ops=1e4, input_usage=RegionUsage(0, touches=1.0))))
        for i in range(width):
            mid = job.add_task(Task(f"mid{i}", work=WorkSpec(
                ops=5e4, input_usage=RegionUsage(0, touches=1.0),
                output=RegionUsage(1 * MiB))))
            job.connect(source, mid)
            job.connect(mid, sink)
        execution = rts.submit(job)
        cluster.faults.inject_at(crash_at, FaultKind.NODE_CRASH, node)
        cluster.faults.inject_at(
            crash_at + 300_000.0, FaultKind.NODE_RESTART, node
        )
        try:
            cluster.engine.run(until=execution.done)
        except BaseException:
            pass  # a failed job must still close its graph

        for graph in cluster.obs.causal.jobs.values():
            if graph.finished_at is None:
                continue
            assert_attribution_identity(graph)
