"""Tests for job-level fault tolerance (retries + checkpoint pruning)."""

import pytest

from repro.dataflow import Job, RegionUsage, Task, TaskProperties, WorkSpec
from repro.hardware import Cluster
from repro.runtime import (
    JobAbandoned,
    ResilientRuntime,
    RuntimeSystem,
    prune_with_checkpoints,
)

KiB = 1024
MiB = 1024 * KiB


def chain_job(persist_middle=True, bomb=None, fuse=None):
    """a -> b(persistent) -> c; ``bomb`` names a task that raises.

    ``fuse`` is a mutable list: the bomb only detonates while it is
    non-empty, so retries can succeed after popping it.
    """
    job = Job("chain")

    def exploding(ctx):
        yield from ctx.sleep(10.0)
        if fuse:
            fuse.pop()
            raise RuntimeError(f"bomb in {ctx.task.name}")
        if ctx.task.work.output is not None:
            out = ctx.output()
            yield from ctx.write(out)

    def make(name, persistent=False, has_input=True, has_output=True):
        work = WorkSpec(
            ops=1e5,
            input_usage=RegionUsage(0) if has_input else None,
            output=RegionUsage(2 * MiB) if has_output else None,
        )
        fn = exploding if bomb == name else None
        return Task(name, work=work, fn=fn,
                    properties=TaskProperties(persistent=persistent))

    a = job.add_task(make("a", has_input=False))
    b = job.add_task(make("b", persistent=persist_middle))
    c = job.add_task(make("c", has_output=False))
    job.connect(a, b)
    job.connect(b, c)
    return job


class TestRetries:
    def test_transient_failure_retried_to_success(self):
        cluster = Cluster.preset("pooled-rack", seed=1)
        resilient = ResilientRuntime(RuntimeSystem(cluster), max_attempts=3)
        fuse = [1]  # fail exactly once
        stats = resilient.run_job(
            lambda: chain_job(bomb="c", fuse=fuse)
        )
        assert stats.ok
        assert resilient.stats.attempts == 2
        assert resilient.stats.failures == 1
        assert resilient.stats.wasted_time_ns > 0

    def test_permanent_failure_abandoned(self):
        cluster = Cluster.preset("pooled-rack", seed=2)
        resilient = ResilientRuntime(RuntimeSystem(cluster), max_attempts=3)
        fuse = [1, 1, 1, 1]
        with pytest.raises(JobAbandoned) as excinfo:
            resilient.run_job(lambda: chain_job(bomb="c", fuse=fuse))
        assert excinfo.value.attempts == 3

    def test_failed_attempts_leak_nothing(self):
        cluster = Cluster.preset("pooled-rack", seed=3)
        rts = RuntimeSystem(cluster)
        resilient = ResilientRuntime(rts, max_attempts=3)
        fuse = [1, 1]
        stats = resilient.run_job(lambda: chain_job(bomb="c", fuse=fuse))
        assert stats.ok
        assert rts.memory.live_regions() == []
        assert sum(d.used for d in cluster.memory.values()) == 0

    def test_max_attempts_validated(self):
        cluster = Cluster.preset("pooled-rack", seed=4)
        with pytest.raises(ValueError):
            ResilientRuntime(RuntimeSystem(cluster), max_attempts=0)


class TestCheckpointPruning:
    def test_checkpoint_skips_completed_prefix(self):
        """b persisted before c exploded -> the retry restores b instead
        of recomputing a and b."""
        cluster = Cluster.preset("pooled-rack", seed=5)
        resilient = ResilientRuntime(RuntimeSystem(cluster), max_attempts=3)
        fuse = [1]
        stats = resilient.run_job(lambda: chain_job(bomb="c", fuse=fuse))
        assert stats.ok
        assert resilient.stats.tasks_skipped_by_checkpoints >= 1  # task a
        assert resilient.stats.checkpoints_used >= 1  # restore of b
        # The retry's job contained a restore task named b but no a.
        assert set(stats.tasks) == {"b", "c"}

    def test_no_checkpoint_means_full_rerun(self):
        cluster = Cluster.preset("pooled-rack", seed=6)
        resilient = ResilientRuntime(RuntimeSystem(cluster), max_attempts=3)
        fuse = [1]
        stats = resilient.run_job(
            lambda: chain_job(persist_middle=False, bomb="c", fuse=fuse)
        )
        assert stats.ok
        assert set(stats.tasks) == {"a", "b", "c"}
        assert resilient.stats.checkpoints_used == 0

    def test_prune_function_drops_dead_lineage(self):
        job = chain_job()
        pruned, skipped = prune_with_checkpoints(job, {"b": 2 * MiB})
        assert skipped == 1
        assert set(pruned.tasks) == {"b", "c"}
        assert [t.name for t in pruned.sources()] == ["b"]
        pruned.validate()

    def test_prune_keeps_branches_not_covered_by_checkpoint(self):
        """a feeds both the checkpointed b and an unchecked d: a must
        still re-run for d's sake."""
        job = Job("branchy")
        a = job.add_task(Task("a", work=WorkSpec(ops=1, output=RegionUsage(KiB))))
        b = job.add_task(Task(
            "b", work=WorkSpec(ops=1, input_usage=RegionUsage(0),
                               output=RegionUsage(KiB)),
            properties=TaskProperties(persistent=True)))
        c = job.add_task(Task("c", work=WorkSpec(ops=1, input_usage=RegionUsage(0))))
        d = job.add_task(Task("d", work=WorkSpec(ops=1, input_usage=RegionUsage(0))))
        job.connect(a, b)
        job.connect(b, c)
        job.connect(a, d)
        pruned, skipped = prune_with_checkpoints(job, {"b": KiB})
        assert skipped == 0
        assert set(pruned.tasks) == {"a", "b", "c", "d"}
        # But the b->restore has no in-edge from a anymore.
        assert pruned.tasks["b"].upstream() == []

    def test_prune_noop_without_matching_checkpoints(self):
        job = chain_job()
        same, skipped = prune_with_checkpoints(job, {"ghost": KiB})
        assert same is job
        assert skipped == 0


class TestNodeCrashRecovery:
    def test_job_survives_node_crash_via_retry(self):
        """Crash the memory shelf mid-run: the attempt dies with lost
        regions, the node restarts, the retry succeeds."""
        from repro.sim.faults import FaultKind

        cluster = Cluster.preset("pooled-rack", seed=7)
        rts = RuntimeSystem(cluster)
        resilient = ResilientRuntime(rts, max_attempts=4)

        def crash_then_restore():
            # Crash whichever node backs the producer's output while the
            # consumer is streaming it; restore before the retry arrives.
            yield cluster.engine.timeout(900_000.0)
            victims = [
                r for r in rts.memory.live_regions() if "a#out" in r.name
            ]
            assert victims, "expected the producer output to be live"
            node = cluster.node_of(victims[0].device.name)
            cluster.crash_node(node)
            yield cluster.engine.timeout(600_000.0)
            cluster.faults.inject_now(FaultKind.NODE_RESTART, node)
            rts.costmodel.invalidate()

        cluster.engine.process(crash_then_restore())

        GiB = 1024 * MiB

        def factory():
            job = Job("survivor", global_state_size=64 * KiB)
            a = job.add_task(Task("a", work=WorkSpec(
                ops=1e6, output=RegionUsage(32 * MiB))))
            b = job.add_task(Task("b", work=WorkSpec(
                ops=1e6, input_usage=RegionUsage(0, touches=2.0),
                scratch=RegionUsage(20 * GiB, touches=0.01))))
            job.connect(a, b)
            return job

        stats = resilient.run_job(factory)
        assert stats.ok
        assert resilient.stats.failures >= 1
        assert rts.memory.live_regions() == []
