"""Integration tests: the full runtime executing dataflow jobs."""

import pytest

from repro.dataflow import Job, RegionUsage, Task, TaskProperties, WorkSpec, task
from repro.hardware import Cluster
from repro.hardware.spec import ComputeKind, OpClass
from repro.memory.interfaces import AccessPattern
from repro.memory.properties import LatencyClass
from repro.memory.regions import RegionType
from repro.runtime import RuntimeSystem, baselines

KiB = 1024
MiB = 1024 * KiB


@pytest.fixture
def rts():
    return RuntimeSystem(Cluster.preset("pooled-rack"))


def pipeline_job(name="pipe", payload=4 * MiB):
    job = Job(name, global_state_size=64 * KiB)
    a = job.add_task(Task("produce", work=WorkSpec(
        ops=1e5, output=RegionUsage(payload))))
    b = job.add_task(Task("transform", work=WorkSpec(
        op_class=OpClass.VECTOR, ops=1e6,
        input_usage=RegionUsage(0),
        scratch=RegionUsage(1 * MiB, touches=2.0),
        output=RegionUsage(payload // 2))))
    c = job.add_task(Task("sink", work=WorkSpec(
        ops=1e4, input_usage=RegionUsage(0),
        state_usage=RegionUsage(4 * KiB, pattern=AccessPattern.RANDOM))))
    job.connect(a, b)
    job.connect(b, c)
    return job


class TestExecution:
    def test_pipeline_completes(self, rts):
        stats = rts.run_job(pipeline_job())
        assert stats.ok
        assert stats.makespan > 0
        assert set(stats.tasks) == {"produce", "transform", "sink"}

    def test_tasks_respect_dag_order(self, rts):
        stats = rts.run_job(pipeline_job())
        assert stats.tasks["produce"].finished_at <= stats.tasks["transform"].started_at
        assert stats.tasks["transform"].finished_at <= stats.tasks["sink"].started_at

    def test_no_region_leaks_after_job(self, rts):
        rts.run_job(pipeline_job())
        assert rts.memory.live_regions() == []
        for device in rts.cluster.memory.values():
            assert device.used == 0

    def test_no_leaks_across_many_jobs(self, rts):
        for i in range(20):
            stats = rts.run_job(pipeline_job(name=f"pipe{i}"))
            assert stats.ok
        assert rts.memory.live_regions() == []
        assert rts.memory.freed_regions > 0

    def test_zero_copy_handover_on_pooled_rack(self, rts):
        """On the pooled rack every device can address the pool, so the
        whole pipeline should hand over without copying."""
        stats = rts.run_job(pipeline_job())
        assert stats.zero_copy_handover >= 2
        assert stats.copy_handover == 0

    def test_fan_out_shares_output(self, rts):
        job = Job("fanout")
        src = job.add_task(Task("src", work=WorkSpec(ops=1e4, output=RegionUsage(1 * MiB))))
        for i in range(3):
            sink = job.add_task(Task(
                f"sink{i}", work=WorkSpec(ops=1e4, input_usage=RegionUsage(0))))
            job.connect(src, sink)
        stats = rts.run_job(job)
        assert stats.ok
        assert rts.memory.live_regions() == []

    def test_fan_in_collects_inputs(self, rts):
        job = Job("fanin")
        sinks = []
        for i in range(3):
            sinks.append(job.add_task(Task(
                f"src{i}", work=WorkSpec(ops=1e4, output=RegionUsage(512 * KiB)))))
        join = job.add_task(Task("join", work=WorkSpec(
            ops=1e4, input_usage=RegionUsage(0))))
        for s in sinks:
            job.connect(s, join)
        stats = rts.run_job(job)
        assert stats.ok

    def test_global_scratch_slots_flow_between_unconnected_tasks(self, rts):
        """Table 2's Global Scratch: a bloom filter published by one task
        and consumed by a task not connected to it."""
        job = Job("bloom")
        builder = job.add_task(Task("builder", work=WorkSpec(
            ops=1e4, scratch_puts={"bloom": RegionUsage(256 * KiB)})))
        prober = job.add_task(Task("prober", work=WorkSpec(
            ops=1e4, scratch_gets=("bloom",))))
        # No edge between them: synchronized only through the slot.
        stats = rts.run_job(job)
        assert stats.ok
        assert rts.memory.live_regions() == []

    def test_concurrent_jobs_contend_but_complete(self, rts):
        jobs = [pipeline_job(name=f"job{i}") for i in range(4)]
        all_stats = rts.run_jobs(jobs)
        assert all(s.ok for s in all_stats)
        assert rts.memory.live_regions() == []

    def test_compute_kind_honored_at_execution(self, rts):
        job = Job("gpu-job")
        job.add_task(Task(
            "t", work=WorkSpec(op_class=OpClass.MATMUL, ops=1e6,
                               scratch=RegionUsage(1 * MiB)),
            properties=TaskProperties(compute=ComputeKind.GPU,
                                      mem_latency=LatencyClass.LOW),
        ))
        stats = rts.run_job(job)
        assert rts.cluster.compute[stats.assignment["t"]].kind is ComputeKind.GPU

    def test_confidential_task_regions_stay_isolated(self, rts):
        placed = []
        original_place = rts.placement.place

        def spy(request):
            region = original_place(request)
            placed.append(region)
            return region

        rts.placement.place = spy
        job = Job("secret")
        job.add_task(Task(
            "t", work=WorkSpec(ops=1e4, scratch=RegionUsage(1 * MiB)),
            properties=TaskProperties(confidential=True),
        ))
        assert rts.run_job(job).ok
        from repro.hardware.spec import Attachment

        scratch_regions = [r for r in placed if r.region_type is RegionType.PRIVATE_SCRATCH]
        assert scratch_regions
        for region in scratch_regions:
            assert region.device.spec.attachment is not Attachment.NIC

    def test_persistent_output_lands_on_persistent_media(self, rts):
        placed = []
        original_place = rts.placement.place

        def spy(request):
            region = original_place(request)
            placed.append((request, region))
            return region

        rts.placement.place = spy
        job = Job("durable")
        a = job.add_task(Task("a", work=WorkSpec(ops=1e4, output=RegionUsage(1 * MiB)),
                              properties=TaskProperties(persistent=True)))
        b = job.add_task(Task("b", work=WorkSpec(ops=1e3, input_usage=RegionUsage(0))))
        job.connect(a, b)
        assert rts.run_job(job).ok
        outs = [r for req, r in placed if req.region_type is RegionType.OUTPUT]
        assert outs and all(r.device.spec.persistent for r in outs)


class TestCustomBehaviour:
    def test_user_function_with_context(self, rts):
        job = Job("custom")
        events = []

        @task(job, work=WorkSpec(ops=0, output=RegionUsage(1 * MiB)))
        def producer(ctx):
            out = ctx.output()
            yield from ctx.write(out)
            events.append(("produced", ctx.now))

        @task(job, after=producer, work=WorkSpec(input_usage=RegionUsage(0)))
        def consumer(ctx):
            data = ctx.input()
            duration = yield from ctx.read(data, pattern=AccessPattern.RANDOM)
            events.append(("consumed", duration))

        stats = rts.run_job(job)
        assert stats.ok
        assert [e[0] for e in events] == ["produced", "consumed"]
        assert events[1][1] > 0

    def test_failing_task_fails_job_with_cause(self, rts):
        job = Job("boom")

        @task(job, work=WorkSpec())
        def bad(ctx):
            yield from ctx.sleep(10.0)
            raise RuntimeError("intentional")

        with pytest.raises(RuntimeError, match="intentional"):
            rts.run_job(job)
        execution = rts.executions[-1]
        assert not execution.stats.ok

    def test_downstream_of_failed_task_does_not_run(self, rts):
        job = Job("cascade")
        ran = []

        @task(job, work=WorkSpec(output=RegionUsage(1 * KiB)))
        def first(ctx):
            yield from ctx.sleep(1.0)
            raise RuntimeError("die")

        @task(job, after=first, work=WorkSpec(input_usage=RegionUsage(0)))
        def second(ctx):
            ran.append(True)
            yield from ctx.sleep(1.0)

        with pytest.raises(RuntimeError):
            rts.run_job(job)
        rts.cluster.engine.run()  # drain
        assert not ran


class TestBaselineFactories:
    def test_baseline_registry_produces_working_runtimes(self):
        for name, factory in baselines.REGISTRY.items():
            cluster = Cluster.preset("pooled-rack", seed=11)
            rts = factory(cluster)
            stats = rts.run_job(pipeline_job(name=f"bl-{name}"))
            assert stats.ok, name

    def test_declarative_not_slower_than_naive(self):
        """The headline comparison: declarative placement should beat (or
        match) topology-oblivious placement on the same workload."""
        times = {}
        for name in ("declarative", "naive"):
            cluster = Cluster.preset("pooled-rack", seed=5)
            rts = baselines.REGISTRY[name](cluster)
            times[name] = rts.run_job(pipeline_job(payload=16 * MiB)).makespan
        assert times["declarative"] <= times["naive"]

    def test_local_only_baseline_runs(self):
        cluster = Cluster.preset("pooled-rack", seed=1)
        rts = baselines.local_only(cluster, "dram-local1")
        stats = rts.run_job(pipeline_job(name="pinned"))
        assert stats.ok
