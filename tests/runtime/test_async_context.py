"""Tests for asynchronous prefetch/writeback in the task API (§2.2(3))."""

import pytest

from repro.dataflow import Job, RegionUsage, Task, WorkSpec, task
from repro.hardware import Cluster
from repro.runtime import RuntimeSystem

KiB = 1024
MiB = 1024 * KiB


@pytest.fixture
def rts():
    return RuntimeSystem(Cluster.preset("pooled-rack", seed=51))


def two_stage(consumer_fn):
    job = Job("async-api")
    producer = job.add_task(Task("produce", work=WorkSpec(
        ops=1e3, output=RegionUsage(64 * MiB))))
    consumer = job.add_task(Task(
        "consume", fn=consumer_fn,
        work=WorkSpec(input_usage=RegionUsage(0)),
    ))
    job.connect(producer, consumer)
    return job


class TestAsyncContext:
    def test_overlap_beats_serial(self, rts):
        """Prefetch + compute must finish in ~max of the two, not the sum."""
        durations = {}
        OPS = 1e6  # sized so fetch time and compute time are comparable

        def serial(ctx):
            t0 = ctx.now
            yield from ctx.read(ctx.input())
            durations["read"] = ctx.now - t0
            yield from ctx.compute_ops(OPS)
            durations["compute"] = ctx.now - t0 - durations["read"]
            durations["serial"] = ctx.now - t0

        def overlapped(ctx):
            t0 = ctx.now
            pending = ctx.read_async(ctx.input())
            yield from ctx.compute_ops(OPS)
            yield pending
            durations["overlapped"] = ctx.now - t0

        rts.run_job(two_stage(serial))
        rts2 = RuntimeSystem(Cluster.preset("pooled-rack", seed=51))
        rts2.run_job(two_stage(overlapped))

        assert durations["overlapped"] < durations["serial"]
        # The overlapped run hides (most of) the smaller component.
        hidden = durations["serial"] - durations["overlapped"]
        assert hidden > 0.5 * min(durations["read"], durations["compute"])

    def test_async_write_overlaps_too(self, rts):
        durations = {}

        def writer(ctx):
            out = ctx.output(size=32 * MiB)
            t0 = ctx.now
            pending = ctx.write_async(out)
            yield from ctx.compute_ops(5e6)
            yield pending
            durations["overlap"] = ctx.now - t0

        job = Job("writeback")
        job.add_task(Task("w", fn=writer, work=WorkSpec(
            output=RegionUsage(32 * MiB))))
        stats = rts.run_job(job)
        assert stats.ok
        assert durations["overlap"] > 0

    def test_prefetch_event_returns_duration(self, rts):
        seen = {}

        def consumer(ctx):
            pending = ctx.read_async(ctx.input())
            duration = yield pending
            seen["duration"] = duration

        stats = rts.run_job(two_stage(consumer))
        assert stats.ok
        assert seen["duration"] > 0

    def test_stale_handle_fails_inside_prefetch(self, rts):
        """Ownership rules still apply on the async path."""
        from repro.memory.ownership import UseAfterTransferError

        def consumer(ctx):
            handle = ctx.input()
            # Simulate a buggy handoff: drop our ownership mid-flight.
            pending = ctx.read_async(handle)
            ctx._rts.memory.transfer_ownership(
                handle.region, ctx.owner, "thief"
            )
            try:
                yield pending
            except UseAfterTransferError:
                return
            raise AssertionError("stale prefetch should have failed")

        stats = rts.run_job(two_stage(consumer))
        assert stats.ok
