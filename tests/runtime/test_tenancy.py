"""Tests for multi-tenant QoS: priorities, quotas, fair queueing,
preemption (the PR-5 tenancy layer over the rack driver)."""

import pytest

from repro.dataflow import Job, RegionUsage, Task, WorkSpec
from repro.hardware import Cluster
from repro.runtime import RuntimeSystem
from repro.runtime.admission import RackDriver
from repro.runtime.tenancy import (
    DEFAULT_TENANT,
    Preempted,
    PriorityClass,
    Tenant,
    TenantQuota,
    TenantRegistry,
    coerce_priority,
    estimate_job_footprint,
)

KiB = 1024
MiB = 1024 * KiB


def small_job(name: str, payload=2 * MiB, ops=1e5):
    def factory():
        job = Job(name)
        a = job.add_task(Task("a", work=WorkSpec(
            ops=ops, output=RegionUsage(payload))))
        b = job.add_task(Task("b", work=WorkSpec(
            ops=ops, input_usage=RegionUsage(0))))
        job.connect(a, b)
        return job

    return factory


@pytest.fixture
def rts():
    return RuntimeSystem(Cluster.preset("pooled-rack", seed=41))


class TestPriorityClass:
    def test_order_is_strict(self):
        assert PriorityClass.INTERACTIVE < PriorityClass.BATCH
        assert PriorityClass.BATCH < PriorityClass.BEST_EFFORT

    def test_coerce_accepts_enum_str_int(self):
        assert coerce_priority(PriorityClass.BATCH) is PriorityClass.BATCH
        assert coerce_priority("interactive") is PriorityClass.INTERACTIVE
        assert coerce_priority("BEST_EFFORT") is PriorityClass.BEST_EFFORT
        assert coerce_priority("best-effort") is PriorityClass.BEST_EFFORT
        assert coerce_priority(" batch ") is PriorityClass.BATCH
        assert coerce_priority(0) is PriorityClass.INTERACTIVE

    @pytest.mark.parametrize("bad", ["urgent", 7, 2.5, None])
    def test_coerce_rejects_nonsense(self, bad):
        with pytest.raises(ValueError):
            coerce_priority(bad)

    def test_preempted_carries_the_winner(self):
        exc = Preempted(by="web-1")
        assert exc.by == "web-1"


class TestTenantQuota:
    def test_defaults_are_unlimited(self):
        quota = TenantQuota()
        assert quota.memory_bytes is None
        assert quota.compute_share is None
        assert quota.max_running is None

    @pytest.mark.parametrize("kwargs", [
        {"memory_bytes": 0}, {"memory_bytes": -1.0},
        {"compute_share": 0.0}, {"compute_share": -0.5},
        {"max_running": 0},
        {"burst_ns": -1.0},
        {"bucket_cap_ns": -1.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TenantQuota(**kwargs)

    def test_bucket_refills_at_share_and_caps(self):
        tenant = Tenant("t", quota=TenantQuota(
            compute_share=0.5, bucket_cap_ns=100.0))
        tenant.refill(1000.0)
        assert tenant.bucket_ns == pytest.approx(100.0)  # capped, not 500
        tenant.spend(400.0)
        assert tenant.bucket_ns == pytest.approx(-300.0)
        tenant.refill(1200.0)  # +0.5 * 200
        assert tenant.bucket_ns == pytest.approx(-200.0)

    def test_bucket_noop_without_share(self):
        tenant = Tenant("t")
        tenant.refill(1e9)
        tenant.spend(1e9)
        assert tenant.bucket_ns == 0.0


class TestTenantRegistry:
    def test_default_tenant_prewired(self):
        registry = TenantRegistry()
        assert DEFAULT_TENANT in registry
        assert registry.get(None).name == DEFAULT_TENANT

    def test_register_rejects_duplicates(self):
        registry = TenantRegistry()
        registry.register("web", weight=2.0)
        with pytest.raises(ValueError):
            registry.register("web")

    def test_get_autocreates_with_defaults(self):
        registry = TenantRegistry()
        tenant = registry.get("walkin")
        assert tenant.weight == 1.0
        assert tenant.priority is PriorityClass.BATCH
        assert registry.get("walkin") is tenant

    def test_iteration_is_name_sorted(self):
        registry = TenantRegistry()
        registry.register("zeta")
        registry.register("alpha")
        assert [t.name for t in registry] == ["alpha", "default", "zeta"]

    def test_tenant_validation(self):
        with pytest.raises(ValueError):
            Tenant("")
        with pytest.raises(ValueError):
            Tenant("t", weight=0.0)


class TestFootprint:
    def test_sums_state_scratch_and_outputs(self):
        job = Job("fp", global_state_size=64 * KiB)
        job.add_task(Task("a", work=WorkSpec(
            ops=1e5, scratch=RegionUsage(1 * MiB),
            output=RegionUsage(2 * MiB))))
        job.add_task(Task("b", work=WorkSpec(
            ops=1e5, input_usage=RegionUsage(8 * MiB),  # not charged
            output=RegionUsage(4 * MiB))))
        assert estimate_job_footprint(job) == 64 * KiB + 7 * MiB


class TestWeightedFairQueueing:
    def test_weights_shape_admission_order(self, rts):
        registry = TenantRegistry()
        registry.register("heavy", weight=3.0)
        registry.register("light", weight=1.0)
        driver = RackDriver(rts, max_concurrent=1, tenants=registry)
        arrivals = []
        for i in range(8):
            arrivals.append((0.0, f"h{i}", small_job(f"h{i}"), "heavy"))
        for i in range(4):
            arrivals.append((0.0, f"l{i}", small_job(f"l{i}"), "light"))
        stats = driver._run_trace(arrivals)
        assert stats.completed == 12
        first8 = sorted(stats.jobs, key=lambda j: j.admission_index)[:8]
        heavy = sum(1 for j in first8 if j.tenant == "heavy")
        # 3:1 weights => ~6 of the first 8 slots go to the heavy tenant.
        assert heavy >= 5

    def test_single_tenant_degenerates_to_fifo(self, rts):
        driver = RackDriver(rts, max_concurrent=1)
        arrivals = [(i * 1000.0, f"j{i}", small_job(f"j{i}"))
                    for i in range(6)]
        stats = driver._run_trace(arrivals)
        order = sorted(stats.jobs, key=lambda j: j.admission_index)
        assert [j.name for j in order] == [f"j{i}" for i in range(6)]

    def test_strict_priority_jumps_the_backlog(self, rts):
        registry = TenantRegistry()
        registry.register("bulk", priority="best_effort")
        registry.register("web", priority="interactive")
        driver = RackDriver(rts, max_concurrent=1,
                            enable_preemption=False, tenants=registry)
        arrivals = [(0.0, f"bulk{i}", small_job(f"bulk{i}"), "bulk")
                    for i in range(5)]
        arrivals.append((1000.0, "web0", small_job("web0"), "web"))
        stats = driver._run_trace(arrivals)
        web = next(j for j in stats.jobs if j.name == "web0")
        order = sorted(stats.jobs, key=lambda j: j.admission_index)
        # One bulk job was already running; the web job takes the very
        # next slot despite four queued bulk arrivals ahead of it.
        assert order[1] is web

    def test_fifo_policy_ignores_priority(self, rts):
        registry = TenantRegistry()
        registry.register("bulk", priority="best_effort")
        registry.register("web", priority="interactive")
        driver = RackDriver(rts, max_concurrent=1, policy="fifo",
                            enable_preemption=False, tenants=registry)
        arrivals = [(0.0, f"bulk{i}", small_job(f"bulk{i}"), "bulk")
                    for i in range(5)]
        arrivals.append((1000.0, "web0", small_job("web0"), "web"))
        stats = driver._run_trace(arrivals)
        web = next(j for j in stats.jobs if j.name == "web0")
        assert web.admission_index == 5  # strict arrival order


class TestQuotas:
    def test_max_running_capped(self, rts):
        registry = TenantRegistry()
        registry.register("capped", quota=TenantQuota(max_running=1))
        driver = RackDriver(rts, max_concurrent=8, tenants=registry)
        arrivals = [(0.0, f"j{i}", small_job(f"j{i}"), "capped")
                    for i in range(4)]
        stats = driver._run_trace(arrivals)
        assert stats.completed == 4
        assert registry.get("capped").quota_deferrals > 0
        # With the cap the jobs serialized: each admission follows the
        # previous job's finish.
        order = sorted(stats.jobs, key=lambda j: j.admission_index)
        for prev, cur in zip(order, order[1:]):
            assert cur.admitted_at >= prev.finished_at

    def test_impossible_memory_quota_sheds(self, rts):
        registry = TenantRegistry()
        registry.register("tiny", quota=TenantQuota(memory_bytes=1 * KiB))
        driver = RackDriver(rts, max_concurrent=8, tenants=registry)
        handle = driver.submit_job("huge", small_job("huge", payload=8 * MiB),
                                   tenant="tiny")
        rts.cluster.engine.run()
        assert handle.shed
        assert registry.get("tiny").shed == 1

    def test_compute_share_throttles_followup(self, rts):
        registry = TenantRegistry()
        registry.register("metered", quota=TenantQuota(compute_share=0.05))
        driver = RackDriver(rts, max_concurrent=8, tenants=registry,
                            quota_retry_ns=10_000.0)
        # The bucket is debited at completion, so arrive after the
        # first (heavy) job has finished and booked its debt.
        arrivals = [
            (0.0, "j0", small_job("j0", ops=1e6), "metered"),
            (500_000.0, "j1", small_job("j1"), "metered"),
        ]
        stats = driver._run_trace(arrivals)
        assert stats.completed == 2
        metered = registry.get("metered")
        assert metered.quota_deferrals > 0
        order = sorted(stats.jobs, key=lambda j: j.admission_index)
        # Job 2 had to wait for the bucket to amortize job 1's debt.
        assert order[1].admitted_at > order[1].arrived_at

    def test_tenant_report_shape(self, rts):
        driver = RackDriver(rts, max_concurrent=2)
        driver._run_trace([(0.0, "j0", small_job("j0"))])
        report = driver.tenant_report()
        assert DEFAULT_TENANT in report
        row = report[DEFAULT_TENANT]
        assert row["submitted"] == row["admitted"] == row["completed"] == 1
        assert row["share"] == pytest.approx(1.0)


class TestPreemption:
    @staticmethod
    def _registry():
        registry = TenantRegistry()
        registry.register("bulk", priority="best_effort")
        registry.register("web", weight=2.0, priority="interactive")
        return registry

    def test_interactive_arrival_preempts_best_effort(self, rts):
        registry = self._registry()
        driver = RackDriver(rts, max_concurrent=1, tenants=registry)
        arrivals = [
            (0.0, "bulk0", small_job("bulk0", ops=5e6), "bulk"),
            (50_000.0, "web0", small_job("web0"), "web"),
        ]
        stats = driver._run_trace(arrivals)
        assert stats.completed == 2  # the victim still finishes
        bulk = next(j for j in stats.jobs if j.name == "bulk0")
        web = next(j for j in stats.jobs if j.name == "web0")
        assert stats.preemptions == 1
        assert bulk.preemptions == 1
        assert bulk.execution.stats.preemptions == 1
        assert registry.get("bulk").preempted == 1
        assert registry.get("web").preemptions_won == 1
        # The web job did not wait for the long bulk job to drain.
        assert web.admitted_at == pytest.approx(50_000.0)
        assert web.finished_at < bulk.finished_at

    def test_preemption_disabled_means_waiting(self, rts):
        registry = self._registry()
        driver = RackDriver(rts, max_concurrent=1, tenants=registry,
                            enable_preemption=False)
        arrivals = [
            (0.0, "bulk0", small_job("bulk0", ops=5e6), "bulk"),
            (50_000.0, "web0", small_job("web0"), "web"),
        ]
        stats = driver._run_trace(arrivals)
        web = next(j for j in stats.jobs if j.name == "web0")
        bulk = next(j for j in stats.jobs if j.name == "bulk0")
        assert stats.preemptions == 0
        assert web.admitted_at >= bulk.finished_at

    def test_victim_preemptions_bounded(self, rts):
        registry = self._registry()
        driver = RackDriver(rts, max_concurrent=1, tenants=registry,
                            max_preemptions_per_job=1)
        arrivals = [(0.0, "bulk0", small_job("bulk0", ops=2e7), "bulk")]
        arrivals += [
            (30_000.0 * (i + 1), f"web{i}", small_job(f"web{i}"), "web")
            for i in range(4)
        ]
        stats = driver._run_trace(arrivals)
        bulk = next(j for j in stats.jobs if j.name == "bulk0")
        assert stats.completed == 5
        assert bulk.preemptions <= 1

    def test_batch_never_preempted(self, rts):
        registry = TenantRegistry()
        registry.register("steady", priority="batch")
        registry.register("web", priority="interactive")
        driver = RackDriver(rts, max_concurrent=1, tenants=registry)
        arrivals = [
            (0.0, "steady0", small_job("steady0", ops=5e6), "steady"),
            (50_000.0, "web0", small_job("web0"), "web"),
        ]
        stats = driver._run_trace(arrivals)
        assert stats.preemptions == 0
        web = next(j for j in stats.jobs if j.name == "web0")
        steady = next(j for j in stats.jobs if j.name == "steady0")
        assert web.admitted_at >= steady.finished_at
