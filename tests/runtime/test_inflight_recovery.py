"""In-flight recovery: task retries, re-placement, degraded reads,
transfer retries, and capacity-aware load shedding.

These are the data-plane halves of the recovery ladder: a job with a
:class:`RecoveryPolicy` must survive infrastructure faults by retrying
*only* the affected tasks — whole-job re-execution
(:class:`ResilientRuntime`) is the rung below, exercised elsewhere.
"""

import pytest

from repro.dataflow import Job, RegionUsage, Task, WorkSpec, task
from repro.ft import OutputBackupStore
from repro.hardware import Cluster
from repro.runtime import (
    HealthMonitor,
    RackDriver,
    RecoveryPolicy,
    RuntimeSystem,
)
from repro.sim.faults import FaultKind
from repro.sim.flows import LinkDown, TransferTimeout

KiB = 1024
MiB = 1024 * KiB


def recovery_rts(cluster, **policy_kwargs):
    monitor = HealthMonitor(cluster, detection_delay_ns=1_000.0)
    rts = RuntimeSystem(
        cluster, recovery=RecoveryPolicy(**policy_kwargs),
    )
    rts.backups = OutputBackupStore(cluster, rts.memory)
    return rts, monitor


class TestTaskRetry:
    def make_sleeper_job(self, duration_ns=200_000.0):
        job = Job("sleeper")

        @task(job, name="t0", work=WorkSpec(ops=1e4))
        def t0(ctx):
            yield from ctx.sleep(duration_ns)

        return job

    def test_node_crash_mid_task_retries_on_another_device(self):
        cluster = Cluster.preset("pooled-rack")
        rts, monitor = recovery_rts(cluster, backoff_base_ns=100.0)
        execution = rts.submit(self.make_sleeper_job())
        victim = execution.assignment["t0"]
        node = cluster.node_of(victim)
        cluster.faults.inject_at(50_000.0, FaultKind.NODE_CRASH, node)
        stats = cluster.engine.run(until=execution.done)
        assert stats.ok
        assert stats.tasks["t0"].attempts == 2
        assert stats.task_retries == 1
        assert stats.replacements == 1
        assert execution.assignment["t0"] != victim
        assert monitor.stats.tasks_interrupted == 1

    def test_without_policy_the_crash_fails_the_job(self):
        cluster = Cluster.preset("pooled-rack")
        HealthMonitor(cluster, detection_delay_ns=1_000.0)
        rts = RuntimeSystem(cluster)  # no RecoveryPolicy: pre-health path
        execution = rts.submit(self.make_sleeper_job())
        victim = execution.assignment["t0"]
        cluster.faults.inject_at(
            50_000.0, FaultKind.NODE_CRASH, cluster.node_of(victim)
        )
        with pytest.raises(BaseException):
            cluster.engine.run(until=execution.done)
        assert not execution.stats.ok

    def test_application_bugs_are_never_retried(self):
        cluster = Cluster.preset("pooled-rack")
        rts, _monitor = recovery_rts(cluster)
        job = Job("buggy")

        @task(job, name="t0", work=WorkSpec(ops=1e4))
        def t0(ctx):
            yield from ctx.sleep(10.0)
            raise RuntimeError("application bug")

        execution = rts.submit(job)
        with pytest.raises(RuntimeError, match="application bug"):
            cluster.engine.run(until=execution.done)
        assert execution.stats.tasks["t0"].attempts == 1
        assert execution.stats.task_retries == 0

    def test_retry_budget_is_finite(self):
        cluster = Cluster.preset("pooled-rack")
        rts, _monitor = recovery_rts(cluster, max_task_attempts=2,
                                     backoff_base_ns=10.0)
        job = Job("cursed")

        @task(job, name="t0", work=WorkSpec(ops=1e4))
        def t0(ctx):
            yield from ctx.sleep(10.0)
            from repro.sim.flows import TransferTimeout

            raise TransferTimeout(1.0, 1.0)  # recoverable every time

        execution = rts.submit(job)
        with pytest.raises(BaseException):
            cluster.engine.run(until=execution.done)
        assert execution.stats.tasks["t0"].attempts == 2


class TestDegradedRead:
    def make_pipeline_job(self, consumer_delay_ns):
        job = Job("pipeline")

        @task(job, name="producer",
              work=WorkSpec(ops=1e4, output=RegionUsage(256 * KiB)))
        def producer(ctx):
            out = ctx.output()
            yield from ctx.write(out)

        @task(job, name="consumer", after=producer,
              work=WorkSpec(ops=1e4, input_usage=RegionUsage(0, touches=1.0)))
        def consumer(ctx):
            yield from ctx.sleep(consumer_delay_ns)
            yield from ctx.read(ctx.input())

        return job

    def test_lost_input_is_restored_from_backup(self):
        cluster = Cluster.preset("pooled-rack")
        rts, _monitor = recovery_rts(cluster, backoff_base_ns=100.0)
        execution = rts.submit(self.make_pipeline_job(500_000.0))

        # Run until the consumer is sleeping on its delivered input and
        # the (asynchronous) backup copy has landed, then crash the node
        # backing the input region.
        engine = cluster.engine
        while not execution._inboxes["consumer"]:
            engine.step()
        handle = execution._inboxes["consumer"][0]
        while not rts.backups.has_backup(handle.region):
            engine.step()
        victim = cluster.node_of(handle.region.device.name)
        cluster.faults.inject_now(FaultKind.NODE_CRASH, victim)
        assert not handle.region.alive

        stats = engine.run(until=execution.done)
        assert stats.ok
        assert stats.degraded_reads >= 1
        assert rts.backups.stats.restores >= 1
        assert stats.tasks["consumer"].attempts >= 2

    def test_lost_input_without_backup_fails_the_job(self):
        cluster = Cluster.preset("pooled-rack")
        monitor = HealthMonitor(cluster, detection_delay_ns=1_000.0)
        rts = RuntimeSystem(
            cluster, recovery=RecoveryPolicy(backoff_base_ns=100.0),
        )  # note: no backup store
        execution = rts.submit(self.make_pipeline_job(500_000.0))
        engine = cluster.engine
        while not execution._inboxes["consumer"]:
            engine.step()
        handle = execution._inboxes["consumer"][0]
        victim = cluster.node_of(handle.region.device.name)
        cluster.faults.inject_now(FaultKind.NODE_CRASH, victim)
        with pytest.raises(BaseException):
            engine.run(until=execution.done)
        assert not execution.stats.ok


class TestReliableTransfer:
    def test_link_flap_mid_transfer_is_retried(self):
        cluster = Cluster.preset("pooled-rack")
        engine = cluster.engine
        result = []

        def mover():
            duration = yield from cluster.reliable_transfer(
                "dram-pool0", "far0", 64 * MiB, retries=3,
                backoff_ns=150_000.0,
            )
            result.append(duration)

        engine.process(mover(), name="mover")
        cluster.faults.inject_at(5_000.0, FaultKind.LINK_DOWN, "far0--tor")
        cluster.faults.inject_at(200_000.0, FaultKind.LINK_UP, "far0--tor")
        engine.run()
        assert len(result) == 1
        assert cluster.obs.counter("transfer.retries").value >= 1
        assert cluster.flownet.active_flows == 0

    def test_exhausted_retries_raise_link_down(self):
        cluster = Cluster.preset("pooled-rack")
        engine = cluster.engine
        errors = []

        def mover():
            try:
                yield from cluster.reliable_transfer(
                    "dram-pool0", "far0", 64 * MiB, retries=1,
                    backoff_ns=100.0,
                )
            except (LinkDown, Exception) as exc:  # noqa: B014
                errors.append(exc)

        engine.process(mover(), name="mover")
        cluster.faults.inject_at(5_000.0, FaultKind.LINK_DOWN, "far0--tor")
        engine.run()  # the link never comes back
        assert len(errors) == 1

    def test_timeout_cancels_the_flow_and_raises(self):
        cluster = Cluster.preset("pooled-rack")
        engine = cluster.engine
        errors = []

        def mover():
            try:
                yield from cluster.reliable_transfer(
                    "dram-pool0", "far0", 1024 * MiB, retries=0,
                    timeout_ns=1_000.0,  # far too tight for a GiB
                )
            except TransferTimeout as exc:
                errors.append(exc)

        engine.process(mover(), name="mover")
        engine.run()
        assert len(errors) == 1
        assert cluster.flownet.active_flows == 0  # cancelled, not leaked

    def test_zero_retries_without_timeout_matches_plain_transfer(self):
        cluster = Cluster.preset("pooled-rack")
        engine = cluster.engine
        durations = []

        def mover():
            duration = yield from cluster.reliable_transfer(
                "dram-pool0", "far0", 8 * MiB, retries=0,
            )
            durations.append(duration)

        engine.process(mover(), name="mover")
        engine.run()

        other = Cluster.preset("pooled-rack")

        def plain():
            duration = yield other.transfer("dram-pool0", "far0", 8 * MiB)
            durations.append(duration)

        other.engine.process(plain(), name="plain")
        other.engine.run()
        assert durations[0] == pytest.approx(durations[1])


class TestLoadShedding:
    @staticmethod
    def arrivals(n):
        def factory(i):
            def make():
                job = Job(f"j{i}")
                job.add_task(Task("t", work=WorkSpec(ops=1e4)))
                return job
            return make
        return [(float(i) * 10.0, f"j{i}", factory(i)) for i in range(n)]

    def test_jobs_shed_below_surviving_capacity_watermark(self):
        cluster = Cluster.preset("pooled-rack")
        HealthMonitor(cluster, detection_delay_ns=0.0)
        rts = RuntimeSystem(cluster)
        driver = RackDriver(rts, shed_below_capacity_fraction=0.5)
        # The storage node holds ~90% of the rack's raw capacity; losing
        # it drops the surviving fraction far below the watermark.
        cluster.crash_node("stornode0")
        stats = driver.run_trace(self.arrivals(3))
        assert stats.shed == 3
        assert stats.completed == 0
        assert cluster.obs.counter("rack.shed").value == 3

    def test_no_watermark_means_no_shedding(self):
        cluster = Cluster.preset("pooled-rack")
        HealthMonitor(cluster, detection_delay_ns=0.0)
        rts = RuntimeSystem(cluster)
        driver = RackDriver(rts)  # shedding disabled by default
        cluster.crash_node("stornode0")
        stats = driver.run_trace(self.arrivals(3))
        assert stats.shed == 0
        assert stats.completed == 3

    def test_healthy_rack_never_sheds(self):
        cluster = Cluster.preset("pooled-rack")
        HealthMonitor(cluster, detection_delay_ns=0.0)
        rts = RuntimeSystem(cluster)
        driver = RackDriver(rts, shed_below_capacity_fraction=0.5)
        stats = driver.run_trace(self.arrivals(3))
        assert stats.shed == 0
        assert stats.completed == 3
