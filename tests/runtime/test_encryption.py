"""Tests for encrypted placement of confidential data on shared media."""

import pytest

from repro.hardware import Cluster
from repro.hardware.spec import Attachment
from repro.memory.interfaces import Accessor, encryption_time
from repro.memory.manager import MemoryManager, PlacementError
from repro.memory.properties import LatencyClass, MemoryProperties
from repro.runtime import CostModel, DeclarativePlacement, PlacementRequest
from repro.runtime.placement import EncryptingPlacement

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB


@pytest.fixture
def env():
    cluster = Cluster.preset("table1-host")
    mm = MemoryManager(cluster)
    cm = CostModel(cluster)
    return cluster, mm, cm


def run(cluster, gen):
    def driver():
        result = yield from gen
        return result

    return cluster.engine.run(until=cluster.engine.process(driver()))


def confidential_request(size=1 * MiB, observers=("cpu0",), **kw):
    from repro.memory.properties import BandwidthClass

    # bandwidth>=MEDIUM keeps storage (SSD/HDD) out of the running, so
    # under memory pressure the only fallback is NIC-attached far memory.
    return PlacementRequest(
        size=size,
        properties=MemoryProperties(confidential=True,
                                    bandwidth=BandwidthClass.MEDIUM),
        owner="t1", observers=observers, **kw,
    )


class TestEncryptionTime:
    def test_cpu_uses_crypto_units(self, env):
        cluster, _mm, _cm = env
        # CPU crypto throughput is 16 ops/ns (= bytes/ns here).
        assert encryption_time(cluster, "cpu0", 16 * KiB) == pytest.approx(KiB)

    def test_unknown_observer_falls_back_to_software(self, env):
        cluster, _mm, _cm = env
        assert encryption_time(cluster, "dram0", 1024) == pytest.approx(1024.0)

    def test_zero_bytes_free(self, env):
        cluster, _mm, _cm = env
        assert encryption_time(cluster, "cpu0", 0) == 0.0


class TestEncryptingPlacement:
    def test_prefers_isolated_when_available(self, env):
        cluster, mm, cm = env
        policy = EncryptingPlacement(cluster, mm, cm)
        region = policy.place(confidential_request())
        assert region.device.spec.attachment is not Attachment.NIC
        assert not region.encrypted

    def test_spills_to_encrypted_far_memory_under_pressure(self, env):
        """Fill every isolated byte-addressable tier; a confidential
        request must land on far memory, encrypted — where the strict
        policy simply fails."""
        cluster, mm, cm = env
        # Occupy all isolated sync tiers.
        for name in ("cache0", "hbm0", "dram0", "pmem0", "cxl0"):
            device = cluster.memory[name]
            mm.allocate_on(name, device.capacity, MemoryProperties(), owner="hog")

        strict = DeclarativePlacement(cluster, mm, cm)
        with pytest.raises(PlacementError):
            strict.place(confidential_request())

        encrypting = EncryptingPlacement(cluster, mm, cm)
        region = encrypting.place(confidential_request())
        assert region.device.name == "far0"
        assert region.encrypted

    def test_non_confidential_requests_unchanged(self, env):
        cluster, mm, cm = env
        policy = EncryptingPlacement(cluster, mm, cm)
        region = policy.place(PlacementRequest(
            size=1 * MiB, properties=MemoryProperties(),
            owner="t1", observers=("cpu0",),
        ))
        assert not region.encrypted

    def test_encrypted_access_pays_crypto_cycles(self, env):
        cluster, mm, cm = env
        for name in ("cache0", "hbm0", "dram0", "pmem0", "cxl0"):
            device = cluster.memory[name]
            mm.allocate_on(name, device.capacity, MemoryProperties(), owner="hog")
        policy = EncryptingPlacement(cluster, mm, cm)
        encrypted = policy.place(confidential_request(size=4 * MiB))

        plain = mm.allocate_on("far0", 4 * MiB, MemoryProperties(), owner="p")

        from repro.memory.interfaces import AccessPattern

        acc_encrypted = Accessor(cluster, encrypted.handle("t1"), "cpu0")
        acc_plain = Accessor(cluster, plain.handle("p"), "cpu0")

        # Random access: latency-bound, so the crypto term is visible.
        # (On bandwidth-bound streams the decryption pipelines with the
        # transfer — an encrypted stream costs nothing extra as long as
        # the crypto units outrun the network.)
        def read_all(accessor):
            return accessor.read(pattern=AccessPattern.RANDOM,
                                 access_size=4096)

        t0 = cluster.engine.now
        run(cluster, read_all(acc_plain))
        plain_time = cluster.engine.now - t0
        t0 = cluster.engine.now
        run(cluster, read_all(acc_encrypted))
        encrypted_time = cluster.engine.now - t0

        expected_overhead = encryption_time(cluster, "cpu0", 4 * MiB)
        assert encrypted_time > plain_time
        # Part of the crypto time still overlaps with the wire transfer,
        # so the visible overhead is a large fraction of, but not more
        # than, the full crypto cost.
        observed = encrypted_time - plain_time
        assert 0.5 * expected_overhead <= observed <= 1.05 * expected_overhead

    def test_scoring_still_prefers_isolated_over_encrypted(self, env):
        """With both options open, the crypto surcharge keeps confidential
        data on isolated media."""
        cluster, mm, cm = env
        policy = EncryptingPlacement(cluster, mm, cm)
        # far0 would be 'free' without the crypto surcharge for big data.
        region = policy.place(confidential_request(size=64 * MiB))
        assert not region.encrypted
