"""Tests for the dry-run planner (rts.plan)."""

import pytest

from repro.apps import build_hospital_job, build_query_job
from repro.hardware import Cluster
from repro.hardware.spec import ComputeKind, MemoryKind
from repro.runtime import RuntimeSystem

KiB = 1024
MiB = 1024 * KiB


@pytest.fixture
def rts():
    return RuntimeSystem(Cluster.preset("pooled-rack", seed=103))


class TestPlanner:
    def test_plan_has_no_side_effects(self, rts):
        plan = rts.plan(build_hospital_job())
        assert plan.tasks
        assert rts.memory.live_regions() == []
        assert all(d.used == 0 for d in rts.cluster.memory.values())
        assert rts.cluster.engine.now == 0.0

    def test_plan_matches_actual_assignment(self, rts):
        job_for_plan = build_hospital_job()
        plan = rts.plan(job_for_plan)
        stats = rts.run_job(build_hospital_job())
        assert plan.assignment == stats.assignment

    def test_planned_regions_match_actual_placements(self, rts):
        rts.cluster.trace.enabled = None
        plan = rts.plan(build_hospital_job())
        stats = rts.run_job(build_hospital_job())
        actual = {
            (str(e.fields["region"]), str(e.fields["device"]))
            for e in rts.cluster.trace.by_name("allocate")
        }
        for task_name, task_plan in plan.tasks.items():
            for region in task_plan.regions:
                expected_name = f"hospital/{task_name}#{'scratch' if region.role == 'scratch' else 'out'}"
                assert (expected_name, region.device) in actual, region

    def test_predicted_makespan_in_right_ballpark(self, rts):
        plan = rts.plan(build_query_job(n_rows=300_000))
        stats = rts.run_job(build_query_job(n_rows=300_000))
        ratio = stats.makespan / plan.predicted_makespan
        assert 0.4 <= ratio <= 3.0, ratio

    def test_dag_order_respected_in_estimates(self, rts):
        plan = rts.plan(build_query_job(n_rows=100_000))
        job = build_query_job(n_rows=100_000)
        for up, down in job.edges():
            assert plan.tasks[up.name].est_finish <= plan.tasks[down.name].est_start + 1e-6

    def test_plan_shows_gpu_scratch_on_gddr(self, rts):
        plan = rts.plan(build_hospital_job())
        face = plan.tasks["face_recognition"]
        assert rts.cluster.compute[face.device].kind is ComputeKind.GPU
        scratch = [r for r in face.regions if r.role == "scratch"]
        assert scratch
        assert rts.cluster.memory[scratch[0].device].kind is MemoryKind.GDDR

    def test_render_and_critical_path(self, rts):
        plan = rts.plan(build_hospital_job())
        text = plan.render()
        assert "Plan for job 'hospital'" in text
        assert "predicted makespan" in text
        spine = plan.critical_path()
        assert spine[0] == "preprocessing"
        assert spine[1] == "face_recognition"
