"""Tests for the multi-tenant rack driver (admission + utilization)."""

import pytest

from repro.dataflow import Job, RegionUsage, Task, WorkSpec
from repro.hardware import Cluster
from repro.runtime import RuntimeSystem
from repro.runtime.admission import RackDriver

KiB = 1024
MiB = 1024 * KiB


def small_job(name: str, payload=2 * MiB):
    def factory():
        job = Job(name)
        a = job.add_task(Task("a", work=WorkSpec(
            ops=1e5, output=RegionUsage(payload))))
        b = job.add_task(Task("b", work=WorkSpec(
            ops=1e5, input_usage=RegionUsage(0))))
        job.connect(a, b)
        return job

    return factory


@pytest.fixture
def rts():
    return RuntimeSystem(Cluster.preset("pooled-rack", seed=37))


class TestRackDriver:
    def test_all_jobs_complete(self, rts):
        driver = RackDriver(rts, max_concurrent=4)
        arrivals = [
            (i * 10_000.0, f"job{i}", small_job(f"job{i}")) for i in range(12)
        ]
        stats = driver.run_trace(arrivals)
        assert stats.completed == 12
        assert rts.memory.live_regions() == []

    def test_concurrency_cap_respected(self, rts):
        driver = RackDriver(rts, max_concurrent=2)
        arrivals = [(0.0, f"job{i}", small_job(f"job{i}")) for i in range(8)]
        stats = driver.run_trace(arrivals)
        assert stats.completed == 8
        assert stats.peak_concurrency <= 2

    def test_queueing_shows_up_as_wait(self, rts):
        tight = RackDriver(rts, max_concurrent=1)
        arrivals = [(0.0, f"job{i}", small_job(f"job{i}")) for i in range(6)]
        stats = tight.run_trace(arrivals)
        assert stats.mean_queue_wait > 0
        # Later arrivals waited longer than the first.
        waits = [j.queue_wait for j in stats.jobs]
        assert waits[-1] > waits[0]

    def test_wider_gate_reduces_wait(self):
        waits = {}
        for cap in (1, 8):
            rts = RuntimeSystem(Cluster.preset("pooled-rack", seed=38))
            driver = RackDriver(rts, max_concurrent=cap)
            arrivals = [(0.0, f"j{i}", small_job(f"j{i}")) for i in range(8)]
            waits[cap] = driver.run_trace(arrivals).mean_queue_wait
        assert waits[8] < waits[1]

    def test_utilization_sampled(self, rts):
        driver = RackDriver(rts, max_concurrent=4, sample_interval_ns=10_000.0)
        arrivals = [(0.0, f"job{i}", small_job(f"job{i}", payload=64 * MiB))
                    for i in range(4)]
        stats = driver.run_trace(arrivals)
        until = rts.cluster.engine.now
        assert stats.memory_utilization.samples > 2
        assert 0.0 <= stats.mean_memory_utilization(until) < 1.0
        assert stats.memory_utilization.maximum > 0.0

    def test_arrival_times_honoured(self, rts):
        driver = RackDriver(rts, max_concurrent=8)
        arrivals = [(500_000.0, "late", small_job("late"))]
        stats = driver.run_trace(arrivals)
        assert stats.jobs[0].arrived_at == pytest.approx(500_000.0)
        assert stats.jobs[0].admitted_at >= 500_000.0

    def test_validation(self, rts):
        with pytest.raises(ValueError):
            RackDriver(rts, max_concurrent=0)
        with pytest.raises(ValueError):
            RackDriver(rts, memory_headroom=1.5)
