"""Tests for the device-health subsystem (repro.runtime.health).

The health monitor is the control plane of in-flight recovery: it must
see faults through the injector, transition device state with the
configured detection delay, interrupt the task processes registered
against dead devices, blacklist repeat offenders, filter placement and
scheduling candidates, and turn planned restarts into graceful drains.
"""

import pytest

from repro.dataflow import Job, Task, WorkSpec
from repro.hardware import Cluster
from repro.runtime import (
    DeviceDown,
    HealthMonitor,
    HealthState,
    RecoveryPolicy,
    RuntimeSystem,
    Scheduler,
)
from repro.sim.events import Interrupt
from repro.sim.faults import FaultKind


@pytest.fixture
def cluster():
    return Cluster.preset("pooled-rack")


class TestStateMachine:
    def test_crash_marks_suspect_then_down_after_delay(self, cluster):
        monitor = HealthMonitor(cluster, detection_delay_ns=500.0)
        cluster.crash_node("mem-shelf")
        # Immediately: control plane stops using the devices (SUSPECT)...
        assert monitor.state("dram-pool0") is HealthState.SUSPECT
        assert not monitor.can_use("dram-pool0")
        # ...but confirmation (and task interrupts) wait for the delay.
        cluster.engine.run(until=499.0)
        assert monitor.state("dram-pool0") is HealthState.SUSPECT
        cluster.engine.run()
        assert monitor.state("dram-pool0") is HealthState.DOWN
        assert monitor.stats.crashes_detected == 1

    def test_zero_delay_confirms_synchronously(self, cluster):
        monitor = HealthMonitor(cluster, detection_delay_ns=0.0)
        cluster.crash_node("mem-shelf")
        assert monitor.state("dram-pool0") is HealthState.DOWN

    def test_reboot_restores_up(self, cluster):
        monitor = HealthMonitor(cluster, detection_delay_ns=0.0)
        cluster.crash_node("memnode0")
        assert monitor.state("far0") is HealthState.DOWN
        # Restarting an already-crashed node has nothing to drain: the
        # power-cycle happens synchronously and brings the device back.
        cluster.faults.inject_now(FaultKind.NODE_RESTART, "memnode0")
        assert monitor.state("far0") is HealthState.UP
        assert monitor.can_use("far0")

    def test_unknown_devices_default_to_up(self, cluster):
        monitor = HealthMonitor(cluster)
        assert monitor.state("no-such-device") is HealthState.UP
        assert monitor.can_use("no-such-device")

    def test_transitions_are_counted_and_observable(self, cluster):
        monitor = HealthMonitor(cluster, detection_delay_ns=0.0)
        seen = []
        monitor.on_change(lambda: seen.append(monitor.state("far0")))
        cluster.crash_node("memnode0")
        assert monitor.stats.transitions >= 2  # SUSPECT then DOWN
        assert seen  # callbacks fired
        assert cluster.obs.counter("health.to_down").value >= 1


class TestBlacklist:
    def test_repeat_offender_is_blacklisted(self, cluster):
        monitor = HealthMonitor(cluster, detection_delay_ns=0.0,
                                blacklist_after=2)
        for _ in range(2):
            cluster.crash_node("memnode0")
            cluster.faults.inject_now(FaultKind.NODE_RESTART, "memnode0")
        assert monitor.is_blacklisted("far0")
        assert "far0" in monitor.blacklist
        # Back UP after the reboot, but still excluded from new work.
        assert monitor.state("far0") is HealthState.UP
        assert not monitor.can_use("far0")
        assert "far0" not in monitor.up_devices()
        assert monitor.stats.blacklisted == 1

    def test_single_failure_is_forgiven(self, cluster):
        monitor = HealthMonitor(cluster, detection_delay_ns=0.0,
                                blacklist_after=3)
        cluster.crash_node("memnode0")
        cluster.faults.inject_now(FaultKind.NODE_RESTART, "memnode0")
        assert not monitor.is_blacklisted("far0")
        assert monitor.can_use("far0")

    def test_blip_repaired_within_detection_window_earns_no_strike(
        self, cluster
    ):
        """Regression: strikes used to fire at SUSPECT time, so a node
        repaired inside the detection window (a transient blip the
        monitor never confirmed dead) still inched toward the
        blacklist.  Strikes must accrue only on confirmed DOWN."""
        monitor = HealthMonitor(cluster, detection_delay_ns=500.0,
                                blacklist_after=1)
        cluster.crash_node("memnode0")
        assert monitor.state("far0") is HealthState.SUSPECT
        # Repaired before the 500ns confirmation fires.
        cluster.faults.inject_at(100.0, FaultKind.NODE_RESTART, "memnode0")
        cluster.engine.run()
        assert monitor.state("far0") is HealthState.UP
        assert not monitor.is_blacklisted("far0")
        assert monitor.can_use("far0")
        assert monitor.stats.blacklisted == 0

    def test_confirmed_death_still_strikes(self, cluster):
        """The counterpart: a crash that outlives the detection window
        is confirmed and must count toward the blacklist."""
        monitor = HealthMonitor(cluster, detection_delay_ns=500.0,
                                blacklist_after=1)
        cluster.crash_node("memnode0")
        cluster.engine.run()
        assert monitor.state("far0") is HealthState.DOWN
        assert monitor.is_blacklisted("far0")
        assert monitor.stats.blacklisted >= 1


class TestWatch:
    def test_watched_process_interrupted_on_confirmed_death(self, cluster):
        monitor = HealthMonitor(cluster, detection_delay_ns=100.0)
        engine = cluster.engine
        outcome = []

        def worker():
            try:
                yield engine.timeout(1e9)
                outcome.append(("finished", engine.now))
            except Interrupt as interrupt:
                outcome.append((interrupt.cause, engine.now))

        process = engine.process(worker(), name="worker")
        monitor.watch("cpu1", process)
        cluster.faults.inject_at(50.0, FaultKind.NODE_CRASH, "blade-cpu1")
        engine.run()
        assert len(outcome) == 1
        cause, interrupted_at = outcome[0]
        assert isinstance(cause, DeviceDown)
        assert cause.device == "cpu1"
        assert monitor.stats.tasks_interrupted == 1
        assert interrupted_at == pytest.approx(150.0)  # crash + delay

    def test_unwatched_process_left_alone(self, cluster):
        monitor = HealthMonitor(cluster, detection_delay_ns=0.0)
        engine = cluster.engine
        outcome = []

        def worker():
            yield engine.timeout(100.0)
            outcome.append("finished")

        process = engine.process(worker(), name="worker")
        monitor.watch("cpu1", process)
        monitor.unwatch("cpu1", process)
        cluster.crash_node("blade-cpu1")
        engine.run()
        assert outcome == ["finished"]
        assert monitor.stats.tasks_interrupted == 0

    def test_unwatch_drops_empty_device_entries(self, cluster):
        """Regression: ``unwatch`` left an empty set per device forever,
        so over a long soak ``_watched`` grew one dead entry for every
        device that ever ran a task."""
        monitor = HealthMonitor(cluster, detection_delay_ns=0.0)
        engine = cluster.engine

        def worker():
            yield engine.timeout(10.0)

        for device in ("cpu1", "cpu2", "gpu1"):
            process = engine.process(worker(), name=f"w:{device}")
            monitor.watch(device, process)
            monitor.unwatch(device, process)
        assert monitor._watched == {}
        # Unwatching a never-watched device must stay a no-op.
        monitor.unwatch("cpu1", engine.process(worker(), name="stray"))
        assert monitor._watched == {}
        engine.run()

    def test_confirmed_death_clears_watch_entry(self, cluster):
        monitor = HealthMonitor(cluster, detection_delay_ns=0.0)
        engine = cluster.engine

        def worker():
            try:
                yield engine.timeout(1e9)
            except Interrupt:
                pass

        monitor.watch("cpu1", engine.process(worker(), name="worker"))
        engine.run(until=1.0)  # let the worker reach its first yield
        cluster.crash_node("blade-cpu1")
        engine.run()
        assert monitor._watched == {}


class TestDrain:
    def test_restart_drains_busy_node_then_reboots(self, cluster):
        monitor = HealthMonitor(cluster, detection_delay_ns=0.0,
                                drain_poll_ns=100.0)
        engine = cluster.engine
        cpu = cluster.compute["cpu1"]

        def busy_task():
            request = cpu.acquire_slot()
            yield request
            try:
                yield engine.timeout(5_000.0)
            finally:
                cpu.release_slot(request)

        engine.process(busy_task(), name="busy")
        engine.run(until=10.0)
        cluster.faults.inject_now(FaultKind.NODE_RESTART, "blade-cpu1")
        # Draining, not dead: the running task is not interrupted.
        assert monitor.state("cpu1") is HealthState.DRAINING
        assert not monitor.can_use("cpu1")
        assert not cpu.failed
        engine.run()
        # The node idled, power-cycled, and is back in service.
        assert monitor.stats.drains_started == 1
        assert monitor.stats.drains_completed == 1
        assert monitor.state("cpu1") is HealthState.UP
        assert any(
            f.kind is FaultKind.NODE_REBOOT and f.target == "blade-cpu1"
            for f in cluster.faults.history
        )

    def test_max_drain_forces_the_reboot(self, cluster):
        monitor = HealthMonitor(cluster, detection_delay_ns=0.0,
                                drain_poll_ns=100.0, max_drain_ns=1_000.0)
        engine = cluster.engine
        cpu = cluster.compute["cpu1"]
        request = cpu.acquire_slot()  # held forever: the node never idles
        engine.run()
        cluster.faults.inject_now(FaultKind.NODE_RESTART, "blade-cpu1")
        engine.run()
        assert monitor.stats.drains_completed == 1
        assert monitor.state("cpu1") is HealthState.UP
        cpu.release_slot(request)

    def test_crash_mid_drain_aborts_the_drain(self, cluster):
        monitor = HealthMonitor(cluster, detection_delay_ns=0.0,
                                drain_poll_ns=100.0)
        engine = cluster.engine
        cpu = cluster.compute["cpu1"]
        request = cpu.acquire_slot()
        engine.run()
        cluster.faults.inject_now(FaultKind.NODE_RESTART, "blade-cpu1")
        assert monitor.state("cpu1") is HealthState.DRAINING
        cluster.faults.inject_at(500.0, FaultKind.NODE_CRASH, "blade-cpu1")
        engine.run()
        assert monitor.stats.drains_started == 1
        assert monitor.stats.drains_completed == 0
        assert monitor.state("cpu1") is HealthState.DOWN
        cpu._slots.release(request)


class TestRecoveryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RecoveryPolicy(backoff_base_ns=100.0, backoff_factor=2.0,
                                max_backoff_ns=350.0)
        assert policy.backoff_ns(1) == pytest.approx(100.0)
        assert policy.backoff_ns(2) == pytest.approx(200.0)
        assert policy.backoff_ns(3) == pytest.approx(350.0)  # capped

    def test_recoverable_classification(self):
        from repro.hardware.interconnect import NoRouteError
        from repro.memory.manager import PlacementError
        from repro.memory.region import RegionLostError
        from repro.sim.flows import TransferTimeout

        policy = RecoveryPolicy()
        assert policy.recoverable(DeviceDown("cpu1"))
        assert policy.recoverable(TransferTimeout(64.0, 10.0))
        assert policy.recoverable(RegionLostError("gone"))
        assert policy.recoverable(PlacementError("full"))
        assert policy.recoverable(NoRouteError("partitioned"))
        assert policy.recoverable(Interrupt(DeviceDown("cpu1")))
        # Application failures must keep failing the job.
        assert not policy.recoverable(RuntimeError("bug"))
        assert not policy.recoverable(Interrupt(None))
        assert not policy.recoverable(KeyError("oops"))


class TestHealthFiltering:
    def test_scheduler_excludes_unhealthy_compute(self, cluster):
        HealthMonitor(cluster, detection_delay_ns=0.0)
        job = Job("probe")
        job.add_task(Task("t", work=WorkSpec(ops=1e4)))
        task = job.tasks["t"]
        before = {d.name for d in Scheduler.candidates(task, cluster)}
        assert "cpu1" in before
        cluster.crash_node("blade-cpu1")
        # The device object is failed AND the monitor excludes it; also
        # exercise the monitor path once the device itself recovered.
        cluster.faults.inject_now(FaultKind.NODE_RESTART, "blade-cpu1")
        cluster.crash_node("blade-cpu2")
        cluster.engine.run()
        after = {d.name for d in Scheduler.candidates(task, cluster)}
        assert "cpu2" not in after

    def test_placement_avoids_suspect_devices(self, cluster):
        monitor = HealthMonitor(cluster, detection_delay_ns=1e6)
        rts = RuntimeSystem(cluster)
        # A long detection window: devices are only SUSPECT, not failed,
        # so without the health filter they would still take placements.
        cluster.crash_node("mem-shelf")
        from repro.memory.regions import RegionType, region_properties
        from repro.runtime.placement import PlacementRequest

        region = rts.placement.place(PlacementRequest(
            size=4096,
            properties=region_properties(RegionType.PRIVATE_SCRATCH),
            owner="probe", observers=("cpu1",), name="probe",
            region_type=RegionType.PRIVATE_SCRATCH,
        ))
        shelf = {"dram-pool0", "dram-pool1", "cxl-exp0", "pmem-pool0"}
        assert region.device.name not in shelf
        assert monitor.state(region.device.name) is HealthState.UP

    def test_filter_waived_when_everything_is_unhealthy(self, cluster):
        monitor = HealthMonitor(cluster, detection_delay_ns=0.0,
                                blacklist_after=1)
        compute_blades = ["blade-cpu1", "blade-cpu2", "blade-gpu1",
                          "blade-gpu2", "blade-tpu", "blade-fpga"]
        for node in compute_blades:
            cluster.faults.inject_now(FaultKind.NODE_CRASH, node)
            cluster.faults.inject_now(FaultKind.NODE_RESTART, node)
        cluster.engine.run()
        # Every compute device is alive but blacklisted.  The filter is
        # waived rather than deadlocking scheduling forever.
        assert all(
            not monitor.can_use(d.name) for d in cluster.compute_devices()
        )
        job = Job("probe")
        job.add_task(Task("t", work=WorkSpec(ops=1e4)))
        assert Scheduler.candidates(job.tasks["t"], cluster)
