"""Tests for workload generators (zipf, traces, arrivals, data)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    ZipfSampler,
    bursty_arrivals,
    mixed_trace,
    poisson_arrivals,
    sequential_trace,
    synthetic_frames,
    synthetic_table,
    synthetic_tensor,
    uniform_trace,
    zipfian_trace,
)


class TestZipf:
    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(100, skew=0.99)
        total = sum(sampler.probability(r) for r in range(100))
        assert total == pytest.approx(1.0)

    def test_rank_zero_is_hottest(self):
        sampler = ZipfSampler(100, skew=1.2)
        assert sampler.probability(0) > sampler.probability(1) > sampler.probability(50)

    def test_skew_concentrates_hot_set(self):
        mild = ZipfSampler(1000, skew=0.5)
        strong = ZipfSampler(1000, skew=1.2)
        assert strong.hot_set_coverage(10) > mild.hot_set_coverage(10)

    def test_zero_skew_is_uniform(self):
        sampler = ZipfSampler(10, skew=0.0)
        for r in range(10):
            assert sampler.probability(r) == pytest.approx(0.1)

    def test_samples_match_distribution_roughly(self):
        sampler = ZipfSampler(100, skew=0.99)
        rng = np.random.default_rng(0)
        draws = sampler.sample(rng, 20_000)
        empirical_top10 = np.mean(draws < 10)
        assert empirical_top10 == pytest.approx(sampler.hot_set_coverage(10), abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(10, skew=-1)
        with pytest.raises(IndexError):
            ZipfSampler(10).probability(10)

    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(1, 500), skew=st.floats(0.0, 3.0), size=st.integers(1, 100))
    def test_samples_always_in_range(self, n, skew, size):
        sampler = ZipfSampler(n, skew)
        draws = sampler.sample(np.random.default_rng(1), size)
        assert np.all((draws >= 0) & (draws < n))


class TestTraces:
    def test_uniform_trace_shape(self):
        rng = np.random.default_rng(0)
        trace = uniform_trace(rng, 100, 10, write_fraction=0.3)
        assert len(trace) == 100
        assert all(0 <= e.key < 10 for e in trace)
        times = [e.time for e in trace]
        assert times == sorted(times)

    def test_zipfian_trace_skewed(self):
        rng = np.random.default_rng(0)
        trace = zipfian_trace(rng, 5000, 100, skew=1.2)
        hot_hits = sum(1 for e in trace if e.key < 5)
        assert hot_hits > len(trace) * 0.4

    def test_sequential_trace_wraps(self):
        trace = sequential_trace(10, 4)
        assert [e.key for e in trace] == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]

    def test_mixed_trace_has_both_kinds(self):
        rng = np.random.default_rng(0)
        trace = mixed_trace(rng, 1000, 50, scan_fraction=0.5)
        assert any(e.is_write for e in trace)
        assert any(not e.is_write for e in trace)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            uniform_trace(rng, -1, 10)
        with pytest.raises(ValueError):
            uniform_trace(rng, 10, 0)
        with pytest.raises(ValueError):
            uniform_trace(rng, 10, 10, write_fraction=1.5)
        with pytest.raises(ValueError):
            mixed_trace(rng, 10, 10, scan_fraction=2.0)


class TestArrivals:
    def test_poisson_mean_rate(self):
        rng = np.random.default_rng(0)
        arrivals = poisson_arrivals(rng, rate_per_ns=0.01, horizon_ns=1e6)
        assert len(arrivals) == pytest.approx(10_000, rel=0.1)
        assert all(0 < t < 1e6 for t in arrivals)
        assert arrivals == sorted(arrivals)

    def test_bursty_has_gaps(self):
        rng = np.random.default_rng(0)
        arrivals = bursty_arrivals(
            rng, rate_per_ns=0.01, horizon_ns=1e6,
            burst_length_ns=1e5, idle_length_ns=1e5,
        )
        in_idle = [t for t in arrivals if 1e5 < t % 2e5 < 2e5]
        assert not in_idle

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            poisson_arrivals(rng, 0.0, 100.0)
        with pytest.raises(ValueError):
            bursty_arrivals(rng, 1.0, 100.0, burst_length_ns=0.0, idle_length_ns=1.0)

    def test_bursty_rejects_bad_rate_like_poisson(self):
        """Regression: a non-positive rate used to blow up with
        ZeroDivisionError (1/rate inside the sampling loop) instead of
        the ValueError ``poisson_arrivals`` raises for the same input."""
        rng = np.random.default_rng(0)
        for bad_rate in (0.0, -0.5):
            with pytest.raises(ValueError):
                bursty_arrivals(rng, bad_rate, 100.0,
                                burst_length_ns=10.0, idle_length_ns=10.0)
        with pytest.raises(ValueError):
            bursty_arrivals(rng, 1.0, -1.0,
                            burst_length_ns=10.0, idle_length_ns=10.0)


class TestDatagen:
    def test_table_schema(self):
        rng = np.random.default_rng(0)
        table = synthetic_table(rng, 100, n_int_cols=3)
        assert table.dtype.names == ("id", "c0", "c1", "c2")
        assert np.array_equal(table["id"], np.arange(100))

    def test_tensor_and_frames(self):
        rng = np.random.default_rng(0)
        assert synthetic_tensor(rng, (4, 8)).shape == (4, 8)
        frames = synthetic_frames(rng, 3, height=16, width=16)
        assert frames.shape == (3, 16, 16)
        assert frames.dtype == np.uint8

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            synthetic_table(rng, -1)
        with pytest.raises(ValueError):
            synthetic_frames(rng, -1)
