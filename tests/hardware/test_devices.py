"""Tests for memory/compute device models."""

import pytest

from repro.hardware import calibration as cal
from repro.hardware.compute import ComputeDevice
from repro.hardware.devices import CapacityError, DeviceFailed, MemoryDevice
from repro.hardware.spec import MemoryKind, OpClass
from repro.sim import Engine


def test_reserve_release_accounting():
    dev = MemoryDevice(cal.make_dram("d0", capacity=1000))
    dev.reserve(400)
    assert dev.used == 400
    assert dev.free == 600
    dev.release(100)
    assert dev.used == 300
    assert dev.utilization == pytest.approx(0.3)


def test_reserve_over_capacity_raises():
    dev = MemoryDevice(cal.make_dram("d0", capacity=1000))
    dev.reserve(900)
    with pytest.raises(CapacityError):
        dev.reserve(200)
    # Failed reservation must not consume capacity.
    assert dev.used == 900


def test_release_more_than_used_raises():
    dev = MemoryDevice(cal.make_dram("d0", capacity=1000))
    dev.reserve(100)
    with pytest.raises(ValueError):
        dev.release(200)


def test_negative_amounts_rejected():
    dev = MemoryDevice(cal.make_dram("d0", capacity=1000))
    with pytest.raises(ValueError):
        dev.reserve(-1)
    with pytest.raises(ValueError):
        dev.release(-1)


def test_failed_device_rejects_reservations():
    dev = MemoryDevice(cal.make_dram("d0", capacity=1000))
    dev.fail()
    with pytest.raises(DeviceFailed):
        dev.reserve(10)
    assert not dev.port.up


def test_volatile_device_loses_contents_on_recover():
    dev = MemoryDevice(cal.make_dram("d0", capacity=1000))
    dev.reserve(500)
    dev.fail()
    dev.recover()
    assert dev.used == 0
    assert dev.port.up


def test_persistent_device_keeps_contents_on_recover():
    dev = MemoryDevice(cal.make_pmem("p0", capacity=1000))
    dev.reserve(500)
    dev.fail()
    dev.recover()
    assert dev.used == 500


def test_granularity_amplification():
    pmem = MemoryDevice(cal.make_pmem("p0"))  # 256 B granularity
    assert pmem.effective_bytes(1) == 256
    assert pmem.effective_bytes(256) == 256
    assert pmem.effective_bytes(257) == 512
    cache = MemoryDevice(cal.make_cache("c0"))  # 1 B granularity
    assert cache.effective_bytes(13) == 13


def test_table1_factories_cover_all_kinds():
    for kind, factory in cal.MEMORY_FACTORIES.items():
        dev = MemoryDevice(factory(f"dev-{kind.value}"))
        assert dev.kind == kind
        assert dev.capacity > 0


def test_table1_bandwidth_ordering():
    """Table 1 'Bw.' column ordering must hold in the calibration."""
    bw = {k: f(f"x-{k.value}").bandwidth for k, f in cal.MEMORY_FACTORIES.items()}
    assert bw[MemoryKind.CACHE] > bw[MemoryKind.HBM] > bw[MemoryKind.DRAM]
    assert bw[MemoryKind.DRAM] > bw[MemoryKind.CXL_DRAM] > bw[MemoryKind.PMEM]
    assert bw[MemoryKind.PMEM] > bw[MemoryKind.SSD] > bw[MemoryKind.HDD]


def test_table1_latency_ordering():
    lat = {k: f(f"x-{k.value}").latency for k, f in cal.MEMORY_FACTORIES.items()}
    assert lat[MemoryKind.CACHE] < lat[MemoryKind.DRAM] < lat[MemoryKind.PMEM]
    assert lat[MemoryKind.DRAM] < lat[MemoryKind.CXL_DRAM] < lat[MemoryKind.FAR_MEMORY]
    assert lat[MemoryKind.FAR_MEMORY] < lat[MemoryKind.SSD] < lat[MemoryKind.HDD]


def test_table1_persistence_column():
    assert not cal.make_dram("d").persistent
    assert cal.make_pmem("p").persistent
    assert cal.make_ssd("s").persistent
    assert cal.make_hdd("h").persistent
    assert not cal.make_far_memory("f").persistent
    assert cal.make_far_memory("f2", persistent=True).persistent


def test_table1_sync_column():
    assert cal.make_dram("d").supports_sync
    assert cal.make_cxl_dram("c").supports_sync
    assert not cal.make_far_memory("f").supports_sync
    assert not cal.make_ssd("s").supports_sync


def test_compute_time_scales_with_throughput():
    engine = Engine()
    cpu = ComputeDevice(cal.make_cpu("cpu0"), engine)
    gpu = ComputeDevice(cal.make_gpu("gpu0", local_memory="gddr0"), engine)
    ops = 1e6
    assert gpu.compute_time(OpClass.MATMUL, ops) < cpu.compute_time(OpClass.MATMUL, ops)
    assert cpu.compute_time(OpClass.SCALAR, ops) < gpu.compute_time(OpClass.SCALAR, ops)


def test_unsupported_op_class_raises():
    engine = Engine()
    tpu = ComputeDevice(cal.make_tpu("tpu0", local_memory="hbm0"), engine)
    assert not tpu.supports(OpClass.SCALAR)
    with pytest.raises(KeyError):
        tpu.compute_time(OpClass.SCALAR, 100)


def test_execute_occupies_slot_for_compute_time():
    engine = Engine()
    cpu = ComputeDevice(cal.make_cpu("cpu0", slots=1), engine)

    def run(ops):
        yield from cpu.execute(OpClass.SCALAR, ops)
        return engine.now

    p1 = engine.process(run(8.0))  # 1 ns at 8 ops/ns
    p2 = engine.process(run(8.0))
    engine.run()
    # Single slot: the second task queues behind the first.
    assert p1.value == pytest.approx(1.0)
    assert p2.value == pytest.approx(2.0)
    assert cpu.tasks_completed == 2


def test_execute_parallel_slots():
    engine = Engine()
    cpu = ComputeDevice(cal.make_cpu("cpu0", slots=4), engine)

    def run():
        yield from cpu.execute(OpClass.SCALAR, 80.0)  # 10 ns

    for _ in range(4):
        engine.process(run())
    engine.run()
    assert engine.now == pytest.approx(10.0)


def test_utilization_tracking():
    engine = Engine()
    cpu = ComputeDevice(cal.make_cpu("cpu0", slots=2), engine)

    def run():
        yield from cpu.execute(OpClass.SCALAR, 80.0)  # 10 ns

    engine.process(run())
    engine.run()
    engine._now = 20.0  # idle tail
    # Busy 1 slot of 2 for 10 of 20 ns -> 25%.
    assert cpu.utilization(until=20.0) == pytest.approx(0.25)
