"""Tests for interconnect topology, routing, and cluster presets."""

import pytest

from repro.hardware import Cluster, NoRouteError, Topology
from repro.hardware import calibration as cal
from repro.hardware.spec import LinkKind, LinkSpec, MemoryKind
from repro.sim.flows import LinkDown


def linkspec(name, kind=LinkKind.CXL, bw=10.0, lat=100.0):
    return LinkSpec(name, kind, bw, lat)


class TestTopology:
    def test_route_prefers_low_latency(self):
        topo = Topology()
        for n in ("a", "b", "mid"):
            topo.add_node(n)
        topo.connect("a", "b", linkspec("slow", lat=1000.0))
        topo.connect("a", "mid", linkspec("h1", lat=10.0))
        topo.connect("mid", "b", linkspec("h2", lat=10.0))
        route = topo.route("a", "b")
        assert [l.name for l in route] == ["h1", "h2"]
        assert topo.path_latency("a", "b") == pytest.approx(20.0)

    def test_route_to_self_is_empty(self):
        topo = Topology()
        topo.add_node("a")
        assert topo.route("a", "a") == []
        assert topo.path_bandwidth("a", "a") == float("inf")

    def test_no_route_raises(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        with pytest.raises(NoRouteError):
            topo.route("a", "b")

    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_node("a")
        with pytest.raises(ValueError):
            topo.add_node("a")

    def test_duplicate_edge_rejected(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        topo.connect("a", "b", linkspec("l"))
        with pytest.raises(ValueError):
            topo.connect("a", "b", linkspec("l2"))

    def test_path_bandwidth_is_bottleneck(self):
        topo = Topology()
        for n in ("a", "m", "b"):
            topo.add_node(n)
        topo.connect("a", "m", linkspec("fat", bw=100.0))
        topo.connect("m", "b", linkspec("thin", bw=5.0))
        assert topo.path_bandwidth("a", "b") == pytest.approx(5.0)

    def test_addressable_and_coherent_classification(self):
        topo = Topology()
        for n in ("cpu", "dram", "cxl", "far", "ssd"):
            topo.add_node(n)
        topo.connect("cpu", "dram", linkspec("ddr", kind=LinkKind.DDR))
        topo.connect("cpu", "cxl", linkspec("cxl", kind=LinkKind.CXL))
        topo.connect("cpu", "far", linkspec("nic", kind=LinkKind.NIC))
        topo.connect("cpu", "ssd", linkspec("pcie", kind=LinkKind.PCIE))
        assert topo.addressable("cpu", "dram") and topo.coherent("cpu", "dram")
        assert topo.addressable("cpu", "cxl") and topo.coherent("cpu", "cxl")
        assert not topo.addressable("cpu", "far")
        assert topo.addressable("cpu", "ssd") and not topo.coherent("cpu", "ssd")
        # Unknown node: addressable is False, not an exception.
        assert not topo.addressable("cpu", "ghost")


class TestClusterPresets:
    @pytest.mark.parametrize(
        "preset", ["table1-host", "compute-centric", "pooled-rack", "two-socket-numa"]
    )
    def test_presets_build_and_route(self, preset):
        cluster = Cluster.preset(preset)
        assert cluster.compute and cluster.memory
        # Every compute device can reach every memory device somehow.
        for cname in cluster.compute:
            for mname in cluster.memory:
                assert cluster.topology.route(cname, mname)

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError):
            Cluster.preset("nope")

    def test_table1_host_attachment_semantics(self):
        cluster = Cluster.preset("table1-host")
        topo = cluster.topology
        assert topo.coherent("cpu0", "dram0")
        assert topo.coherent("cpu0", "cxl0")
        assert not topo.addressable("cpu0", "far0")  # NIC: messages only
        assert not topo.addressable("cpu0", "hdd0")  # SATA
        assert topo.addressable("cpu0", "ssd0")

    def test_pooled_rack_gpu_sees_pool_coherently(self):
        cluster = Cluster.preset("pooled-rack")
        assert cluster.topology.coherent("gpu1", "dram-pool0")
        assert cluster.topology.coherent("cpu1", "gddr1")

    def test_access_latency_from_cpu_reproduces_table1_ordering(self):
        """End-to-end (fabric + media) latency from the CPU follows Table 1."""
        cluster = Cluster.preset("table1-host")

        def rtt(mem):
            dev = cluster.memory[mem]
            return cluster.topology.path_latency("cpu0", mem) + dev.spec.latency

        order = ["cache0", "dram0", "cxl0", "far0", "ssd0", "hdd0"]
        latencies = [rtt(m) for m in order]
        assert latencies == sorted(latencies)


class TestClusterTransfers:
    def test_transfer_moves_bytes_through_both_ports(self):
        cluster = Cluster.preset("table1-host")
        done = cluster.transfer("dram0", "cxl0", 1024.0)
        cluster.engine.run(until=done)
        assert cluster.memory["dram0"].port.bytes_carried == pytest.approx(1024.0)
        assert cluster.memory["cxl0"].port.bytes_carried == pytest.approx(1024.0)

    def test_same_device_copy_costs_double(self):
        cluster = Cluster.preset("table1-host")
        done = cluster.transfer("dram0", "dram0", 1000.0)
        cluster.engine.run(until=done)
        assert cluster.memory["dram0"].port.bytes_carried == pytest.approx(2000.0)

    def test_transfer_slower_to_far_memory(self):
        c1 = Cluster.preset("table1-host")
        d1 = c1.transfer("dram0", "cxl0", 1 * 1024 * 1024)
        c1.engine.run(until=d1)
        t_cxl = c1.engine.now

        c2 = Cluster.preset("table1-host")
        d2 = c2.transfer("dram0", "far0", 1 * 1024 * 1024)
        c2.engine.run(until=d2)
        t_far = c2.engine.now
        assert t_far > t_cxl

    def test_node_crash_fails_devices_and_transfers(self):
        cluster = Cluster.preset("table1-host")
        done = cluster.transfer("dram0", "far0", 100 * 1024 * 1024)

        def crash():
            yield cluster.engine.timeout(1000.0)
            cluster.crash_node("memnode")

        cluster.engine.process(crash())
        with pytest.raises(LinkDown):
            cluster.engine.run(until=done)
        assert cluster.memory["far0"].failed

    def test_node_restart_restores_devices(self):
        cluster = Cluster.preset("table1-host")
        cluster.crash_node("memnode")
        assert cluster.memory["far0"].failed
        from repro.sim.faults import FaultKind

        cluster.faults.inject_now(FaultKind.NODE_RESTART, "memnode")
        assert not cluster.memory["far0"].failed
        done = cluster.transfer("dram0", "far0", 64.0)
        cluster.engine.run(until=done)

    def test_duplicate_device_name_rejected(self):
        cluster = Cluster(seed=0)
        cluster.add_memory(cal.make_dram("x"))
        with pytest.raises(ValueError):
            cluster.add_compute(cal.make_cpu("x"))

    def test_memory_devices_filtering(self):
        cluster = Cluster.preset("table1-host")
        drams = cluster.memory_devices(kind=MemoryKind.DRAM)
        assert [d.name for d in drams] == ["dram0"]
        cluster.memory["dram0"].fail()
        assert cluster.memory_devices(kind=MemoryKind.DRAM) == []
        assert cluster.memory_devices(kind=MemoryKind.DRAM, alive_only=False)
