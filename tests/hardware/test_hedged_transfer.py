"""Tests for hedged transfers (gray-failure mitigation in the fabric).

``Cluster.reliable_transfer`` can race a backup copy from a replica
holder against a slow primary: the hedge launches only after the
configured delay, the first finisher wins, and the loser is cancelled
with its exact partial progress charged to ``hedge.wasted_bytes``.
"""

import pytest

from repro.hardware import Cluster
from repro.hardware.spec import OpClass
from repro.sim.faults import FaultKind

MiB = 1024 * 1024


@pytest.fixture
def rack():
    return Cluster.preset("pooled-rack")


def run_transfer(cluster, *args, **kwargs):
    """Drive one reliable_transfer to completion; returns its report."""
    report = []
    out = {}

    def proc():
        out["duration"] = yield from cluster.reliable_transfer(
            *args, report=report, **kwargs
        )

    cluster.engine.process(proc())
    cluster.engine.run()
    out["report"] = report[-1]
    return out


class TestHedgeLaunch:
    def test_fast_primary_never_hedges(self, rack):
        result = run_transfer(
            rack, "dram-pool0", "dram-pool1", 1 * MiB,
            hedge_delay_ns=1e9, hedge_source="far0",
        )
        assert rack.obs.counter("hedge.launched").value == 0
        assert result["report"]["hedged"] is False
        assert result["report"]["source"] == "dram-pool0"

    def test_hedge_needs_a_distinct_known_source(self, rack):
        # Same source or an unknown device: the legacy path runs.
        for source in ("dram-pool0", "no-such-device"):
            run_transfer(
                rack, "dram-pool0", "dram-pool1", 1 * MiB,
                hedge_delay_ns=1.0, hedge_source=source,
            )
        assert rack.obs.counter("hedge.launched").value == 0

    def test_slow_primary_launches_hedge_after_delay(self, rack):
        rack.faults.inject_now(FaultKind.DEVICE_SLOW, "dram-pool0",
                               factor=0.001)
        run_transfer(
            rack, "dram-pool0", "dram-pool1", 8 * MiB,
            hedge_delay_ns=50_000.0, hedge_source="dram-local1",
        )
        assert rack.obs.counter("hedge.launched").value == 1


class TestHedgeRace:
    def test_hedge_wins_against_degraded_primary(self, rack):
        rack.faults.inject_now(FaultKind.DEVICE_SLOW, "dram-pool0",
                               factor=0.001)
        hedged = run_transfer(
            rack, "dram-pool0", "dram-pool1", 8 * MiB,
            hedge_delay_ns=50_000.0, hedge_source="dram-local1",
        )
        assert rack.obs.counter("hedge.won").value == 1
        assert hedged["report"]["hedged"] is True
        assert hedged["report"]["source"] == "dram-local1"
        # The abandoned primary's partial bytes are accounted as waste.
        wasted = rack.obs.counter("hedge.wasted_bytes").value
        assert 0.0 <= wasted < 8 * MiB
        assert rack.flownet.active_flows == 0  # loser fully released

    def test_hedging_beats_riding_out_the_degradation(self):
        durations = {}
        for hedge in (False, True):
            cluster = Cluster.preset("pooled-rack")
            cluster.faults.inject_now(
                FaultKind.DEVICE_SLOW, "dram-pool0", factor=0.001)
            kwargs = dict(hedge_delay_ns=50_000.0,
                          hedge_source="dram-local1") if hedge else {}
            durations[hedge] = run_transfer(
                cluster, "dram-pool0", "dram-pool1", 8 * MiB, **kwargs
            )["duration"]
        assert durations[True] < durations[False] / 10

    def test_healthy_primary_beats_its_own_hedge(self, rack):
        # Force a hedge launch with a tiny delay; the primary (fast CXL
        # pool device) still outruns the far-memory hedge.
        result = run_transfer(
            rack, "dram-pool0", "dram-pool1", 8 * MiB,
            hedge_delay_ns=1.0, hedge_source="far0",
        )
        assert rack.obs.counter("hedge.launched").value == 1
        assert rack.obs.counter("hedge.won").value == 0
        assert result["report"]["hedged"] is False
        assert result["report"]["source"] == "dram-pool0"
        assert rack.flownet.active_flows == 0

    def test_byte_accounting_is_exact_after_a_decided_race(self, rack):
        """Winner's payload lands once; the loser's partial progress is
        charged to waste; per-link totals stay consistent."""
        rack.faults.inject_now(FaultKind.DEVICE_SLOW, "dram-pool0",
                               factor=0.001)
        nbytes = 8 * MiB
        run_transfer(
            rack, "dram-pool0", "dram-pool1", nbytes,
            hedge_delay_ns=50_000.0, hedge_source="dram-local1",
        )
        carried = sum(
            link.bytes_carried for link in rack.topology.links()
        ) + sum(dev.port.bytes_carried for dev in rack.memory.values())
        wasted = rack.obs.counter("hedge.wasted_bytes").value
        # The hedge's full payload crossed its route (>= 2 links); the
        # primary contributed exactly its wasted partial progress per
        # crossed link.  Everything is bounded and nothing double-counts.
        assert carried >= nbytes
        assert carried <= 6 * nbytes + 6 * wasted
        assert rack.flownet.active_flows == 0


class TestDeviceSlowFaults:
    def test_compute_slowdown_stretches_execution_not_estimates(self, rack):
        device = rack.compute["cpu1"]
        nominal = device.nominal_compute_time(OpClass.SCALAR, 1e6)
        rack.faults.inject_now(FaultKind.DEVICE_SLOW, "cpu1", factor=0.25)
        assert device.nominal_compute_time(OpClass.SCALAR, 1e6) == nominal
        assert device.compute_time(OpClass.SCALAR, 1e6) == pytest.approx(
            4 * nominal)
        rack.faults.inject_now(FaultKind.DEVICE_RESTORED, "cpu1")
        assert device.compute_time(OpClass.SCALAR, 1e6) == pytest.approx(
            nominal)

    def test_memory_slowdown_throttles_the_port(self, rack):
        port = rack.memory["dram-pool0"].port
        rack.faults.inject_now(FaultKind.DEVICE_SLOW, "dram-pool0",
                               factor=0.5)
        assert port.degrade_factor == 0.5
        assert port.bandwidth == port.effective_bandwidth * 2
        rack.faults.inject_now(FaultKind.DEVICE_RESTORED, "dram-pool0")
        assert port.degrade_factor == 1.0

    def test_link_degraded_fault_reaches_the_fabric(self, rack):
        victim = next(
            link for link in rack.topology.links()
            if "cxl-switch" in link.name
        )
        rack.faults.inject_now(FaultKind.LINK_DEGRADED, victim.name,
                               factor=0.1)
        assert victim.degrade_factor == 0.1
        rack.faults.inject_now(FaultKind.LINK_RESTORED, victim.name)
        assert victim.degrade_factor == 1.0

    def test_estimate_uses_nominal_bandwidth(self, rack):
        route, effective = rack.transfer_route(
            "dram-pool0", "dram-pool1", 1 * MiB)
        before = rack.estimate_transfer_ns(route, effective)
        rack.faults.inject_now(FaultKind.DEVICE_SLOW, "dram-pool0",
                               factor=0.01)
        assert rack.estimate_transfer_ns(route, effective) == before
