"""Tests: routing survives link/plane failures when redundancy exists."""

import pytest

from repro.hardware import Cluster, NoRouteError
from repro.sim.faults import FaultKind

MiB = 1024 * 1024


@pytest.fixture
def rack():
    return Cluster.preset("dual-plane-rack")


class TestDualPlaneRouting:
    def test_default_route_uses_faster_plane(self, rack):
        route = rack.topology.route("cpu1", "dram-pool0")
        names = [link.name for link in route]
        assert any("plane-a" in n for n in names)  # 70 ns beats 75 ns

    def test_plane_failure_reroutes(self, rack):
        before = rack.topology.route("cpu1", "dram-pool0")
        # Take down every link of plane-a.
        for link in rack.topology.links():
            if "plane-a" in link.name:
                rack.faults.inject_now(FaultKind.LINK_DOWN, link.name)
        after = rack.topology.route("cpu1", "dram-pool0")
        assert after != before
        assert all("plane-a" not in link.name for link in after)
        # Coherence classification follows the live route.
        assert rack.topology.coherent("cpu1", "dram-pool0")

    def test_transfer_completes_over_surviving_plane(self, rack):
        for link in rack.topology.links():
            if "plane-a" in link.name:
                rack.faults.inject_now(FaultKind.LINK_DOWN, link.name)
        done = rack.transfer("dram-local1", "dram-pool0", 4 * MiB)
        rack.engine.run(until=done)
        assert done.ok

    def test_restore_returns_to_fast_plane(self, rack):
        victims = [l for l in rack.topology.links() if "plane-a" in l.name]
        for link in victims:
            rack.faults.inject_now(FaultKind.LINK_DOWN, link.name)
        assert all(
            "plane-a" not in l.name
            for l in rack.topology.route("cpu1", "dram-pool0")
        )
        for link in victims:
            rack.faults.inject_now(FaultKind.LINK_UP, link.name)
        route = rack.topology.route("cpu1", "dram-pool0")
        assert any("plane-a" in l.name for l in route)

    def test_total_partition_still_errors(self, rack):
        for link in rack.topology.links():
            if "plane" in link.name:
                rack.faults.inject_now(FaultKind.LINK_DOWN, link.name)
        with pytest.raises(NoRouteError):
            rack.topology.route("cpu1", "dram-pool0")

    def test_job_survives_plane_loss_transparently(self, rack):
        """End to end: a pipeline keeps running across a mid-flight plane
        failure because new accesses route over the surviving plane."""
        from repro.dataflow import Job, RegionUsage, Task, WorkSpec
        from repro.runtime import ResilientRuntime, RuntimeSystem

        rts = RuntimeSystem(rack)
        resilient = ResilientRuntime(rts, max_attempts=3)

        def saboteur():
            yield rack.engine.timeout(50_000.0)
            for link in rack.topology.links():
                if "plane-a" in link.name:
                    rack.faults.inject_now(FaultKind.LINK_DOWN, link.name)
            rts.costmodel.invalidate()

        rack.engine.process(saboteur())

        def factory():
            job = Job("plane-survivor")
            a = job.add_task(Task("a", work=WorkSpec(
                ops=1e6, output=RegionUsage(64 * MiB))))
            b = job.add_task(Task("b", work=WorkSpec(
                ops=1e6, input_usage=RegionUsage(0, touches=2.0))))
            job.connect(a, b)
            return job

        stats = resilient.run_job(factory)
        assert stats.ok
        assert rts.memory.live_regions() == []
