"""Tests for the unified submission API: connect()/Session, and the
deprecation shims that keep the old entry points alive."""

import warnings

import pytest

from repro import _compat, connect
from repro.api import Session
from repro.dataflow import Job, RegionUsage, Task, WorkSpec, task
from repro.hardware import Cluster
from repro.runtime import RackDriver, RuntimeSystem
from repro.runtime.admission import RackStats
from repro.runtime.rts import JobStats

KiB = 1024
MiB = 1024 * KiB


def pipeline(name="pipe", payload=2 * MiB):
    job = Job(name)
    a = job.add_task(Task("a", work=WorkSpec(
        ops=1e5, output=RegionUsage(payload))))
    b = job.add_task(Task("b", work=WorkSpec(
        ops=1e5, input_usage=RegionUsage(0))))
    job.connect(a, b)
    return job


def failing_job(name="boom"):
    job = Job(name)

    @task(job, name="upstream", work=WorkSpec(output=RegionUsage(4 * KiB)))
    def upstream(ctx):
        yield from ctx.sleep(25.0)
        raise RuntimeError("mid-task crash")

    return job


class TestConnect:
    def test_connect_builds_the_stack(self):
        session = connect("pooled-rack", seed=3)
        assert isinstance(session, Session)
        assert session.cluster is session.rts.cluster
        assert "default" in session.tenants

    def test_rack_options_forward(self):
        session = connect("pooled-rack", max_concurrent=3, policy="fifo")
        assert session.driver.max_concurrent == 3
        assert session.driver.policy == "fifo"

    def test_explicit_cluster_wins(self):
        cluster = Cluster.preset("pooled-rack", seed=9)
        session = connect(cluster=cluster)
        assert session.cluster is cluster

    def test_typoed_kwarg_names_nearest_option(self):
        # Regression: unknown **rack_options used to be swallowed by
        # RackDriver's constructor blowing up far from the call site.
        with pytest.raises(TypeError, match="max_concurrent"):
            connect("pooled-rack", max_concurent=3)

    def test_unknown_kwarg_lists_valid_options(self):
        with pytest.raises(TypeError, match="valid options"):
            connect("pooled-rack", definitely_not_an_option=1)

    def test_federated_only_kwargs_rejected_for_single_rack(self):
        with pytest.raises(TypeError, match="heartbeat_ns"):
            connect("pooled-rack", heartbeat_ns=1e5)
        # ... but accepted when racks are requested.
        session = connect("pooled-rack", racks=2, heartbeat_ns=1e5)
        session.close()


class TestContextManager:
    def test_close_finalizes_telemetry_and_keeps_dashboard(self):
        with connect("pooled-rack") as session:
            session.run(pipeline())
        assert session.closed
        assert session.final_dashboard is not None
        assert "Jobs" in session.final_dashboard
        # Telemetry was finalized: open alert spans were flushed.
        assert session.obs.telemetry.finalized

    def test_close_is_idempotent(self):
        session = connect("pooled-rack")
        session.run(pipeline())
        session.close()
        first = session.final_dashboard
        session.close()
        assert session.final_dashboard is first

    def test_exit_closes_even_on_error(self):
        with pytest.raises(RuntimeError, match="mid-task crash"):
            with connect("pooled-rack") as session:
                session.run(failing_job())
        assert session.closed

    def test_federated_close_finalizes_every_rack(self):
        with connect("pooled-rack", racks=2) as fed:
            fed.submit(pipeline())
            fed.run()
        assert fed.closed
        assert fed.final_dashboard is not None
        for rack in fed.racks:
            assert rack.obs.telemetry.finalized


class TestSubmitApp:
    """All six app classes enter through one typed facade."""

    APPS = {
        "census": {},
        "dbms": dict(n_rows=20_000, selectivity=0.2),
        "hpc": dict(n_workers=2, grid_bytes=1 << 20, iterations=2),
        "llm": dict(prompt_tokens=64, output_tokens=8),
        "ml": dict(n_samples=2_000, sample_bytes=256, epochs=1),
        "streaming": dict(n_frames=4),
    }

    @pytest.mark.parametrize("app", sorted(APPS))
    def test_each_app_class_submits_and_completes(self, app):
        with connect("pooled-rack", seed=5) as session:
            handle = session.submit_app(app, **self.APPS[app])
            session.run()
            stats = session.result(handle)
        assert handle.completed
        assert stats.ok

    def test_submission_goes_through_admission(self):
        with connect("pooled-rack") as session:
            session.register_tenant("web", priority="interactive")
            handle = session.submit_app(
                "llm", dict(prompt_tokens=32, output_tokens=4),
                tenant="web")
            session.run()
        assert handle.tenant == "web"
        assert handle.priority.name == "INTERACTIVE"
        assert handle.admission_index == 0

    def test_spec_dict_and_kwargs_merge(self):
        with connect("pooled-rack") as session:
            handle = session.submit_app(
                "dbms", dict(n_rows=10_000), selectivity=0.5)
            session.run()
        assert handle.completed

    def test_unknown_app_class_names_the_valid_ones(self):
        session = connect("pooled-rack")
        with pytest.raises(ValueError, match="census.*llm.*streaming"):
            session.submit_app("spreadsheet")

    def test_federated_submit_app_routes(self):
        with connect("pooled-rack", racks=2) as fed:
            handle = fed.submit_app("ml", n_samples=2_000,
                                    sample_bytes=256, epochs=1)
            fed.run()
            stats = fed.result(handle)
        assert not handle.shed
        assert handle.rack is not None
        assert stats.ok


class TestSessionRun:
    def test_run_single_job_returns_its_stats(self):
        session = connect("pooled-rack")
        stats = session.run(pipeline())
        assert isinstance(stats, JobStats)
        assert stats.ok

    def test_run_many_returns_list_in_order(self):
        session = connect("pooled-rack")
        results = session.run(pipeline("p0"), pipeline("p1"))
        assert [s.job_name for s in results] == ["p0", "p1"]

    def test_submit_then_drain(self):
        session = connect("pooled-rack")
        handle = session.submit(pipeline())
        stats = session.run()
        assert isinstance(stats, RackStats)
        assert handle.completed
        assert handle.e2e_latency > 0

    def test_job_annotations_flow_through(self):
        session = connect("pooled-rack")
        session.register_tenant("web", priority="interactive")
        job = pipeline()
        job.tenant = "web"
        handle = session.submit(job)
        session.run()
        assert handle.tenant == "web"
        assert handle.priority.name == "INTERACTIVE"
        assert handle.execution.stats.tenant == "web"

    def test_failed_job_raises(self):
        session = connect("pooled-rack")
        with pytest.raises(RuntimeError, match="mid-task crash"):
            session.run(failing_job())

    def test_run_trace_accepts_tenant_tuples(self):
        session = connect("pooled-rack", max_concurrent=2)
        session.register_tenant("web", weight=2.0)
        stats = session.run_trace([
            (0.0, "j0", lambda: pipeline("j0")),
            (1000.0, "j1", lambda: pipeline("j1"), "web"),
        ])
        assert stats.completed == 2
        assert session.tenant_report()["web"]["completed"] == 1

    def test_register_tenant_installs_slo(self):
        session = connect("pooled-rack")
        session.register_tenant("web", slo_target_ns=2e6)
        assert "tenant:web" in session.obs.slo

    def test_dashboard_renders(self):
        session = connect("pooled-rack")
        session.run(pipeline())
        text = session.dashboard()
        assert "Jobs" in text


class TestDeprecationShims:
    """Every legacy entry point warns exactly once and still works."""

    @pytest.fixture(autouse=True)
    def fresh_warning_registry(self):
        _compat.reset_warnings()
        yield
        _compat.reset_warnings()

    @staticmethod
    def _rts():
        return RuntimeSystem(Cluster.preset("pooled-rack"))

    def _assert_warns_once(self, call):
        with pytest.warns(DeprecationWarning, match="^repro\\.") as record:
            first = call()
        assert len(record) == 1
        with warnings.catch_warnings(record=True) as silent:
            warnings.simplefilter("always")
            call()
        assert not silent  # second use is quiet
        return first

    def test_run_job_warns_once_and_forwards(self):
        rts = self._rts()
        stats = self._assert_warns_once(lambda: rts.run_job(pipeline()))
        assert stats.ok

    def test_run_jobs_warns_once_and_forwards(self):
        rts = self._rts()
        results = self._assert_warns_once(
            lambda: rts.run_jobs([pipeline("p0"), pipeline("p1")]))
        assert [s.job_name for s in results] == ["p0", "p1"]

    def test_submit_warns_once_and_forwards(self):
        rts = self._rts()
        execution = self._assert_warns_once(lambda: rts.submit(pipeline()))
        rts.cluster.engine.run()
        assert execution.stats.ok

    def test_run_trace_warns_once_and_forwards(self):
        # A fresh driver per call: run_trace drains one arrival list,
        # so re-running it on a used driver would never terminate.
        def call():
            driver = RackDriver(self._rts(), max_concurrent=2)
            return driver.run_trace([(0.0, "j0", lambda: pipeline("j0"))])

        stats = self._assert_warns_once(call)
        assert stats.completed >= 1
