"""Tests for utilization accounting, economics, and report tables."""

import numpy as np
import pytest

from repro.hardware import Cluster
from repro.metrics import (
    Table,
    cluster_snapshot,
    format_bytes,
    format_ns,
    pooling_savings,
    provisioned_memory_cost,
    required_provisioning,
    stranded_bytes,
)


class TestSnapshots:
    def test_snapshot_reflects_usage(self):
        cluster = Cluster.preset("table1-host")
        cluster.memory["dram0"].reserve(1024)
        snap = cluster_snapshot(cluster)
        assert snap.memory_used == 1024
        assert 0.0 < snap.per_device_utilization["dram0"] < 1.0
        assert snap.memory_utilization < 0.01

    def test_empty_cluster(self):
        snap = cluster_snapshot(Cluster(seed=0))
        assert snap.memory_utilization == 0.0


class TestStranding:
    def test_no_shortfall_no_stranding(self):
        assert stranded_bytes({"a": 50}, {"a": 100, "b": 100}) == 0

    def test_shortfall_covered_by_remote_free(self):
        # a needs 150 of its 100; b has 80 free: 50 bytes stranded demand.
        assert stranded_bytes({"a": 150, "b": 20}, {"a": 100, "b": 100}) == 50

    def test_shortfall_exceeds_free(self):
        assert stranded_bytes({"a": 300}, {"a": 100, "b": 50}) == 50


class TestProvisioning:
    def test_anticorrelated_peaks_save_memory(self):
        """The Figure 1 effect: peaks that never coincide pool well."""
        t = np.arange(100)
        a = 100.0 + 80.0 * (t < 50)  # busy first half
        b = 100.0 + 80.0 * (t >= 50)  # busy second half
        comparison = required_provisioning({"a": a, "b": b})
        assert comparison.static_bytes == 360
        assert comparison.pooled_bytes == 280
        assert comparison.savings_fraction == pytest.approx(1 - 280 / 360)

    def test_correlated_peaks_save_nothing(self):
        t = np.ones(10) * 100.0
        comparison = required_provisioning({"a": t, "b": t})
        assert comparison.savings_fraction == pytest.approx(0.0)

    def test_headroom_scales_both(self):
        series = {"a": np.array([100.0]), "b": np.array([100.0])}
        comparison = required_provisioning(series, headroom=0.5)
        assert comparison.static_bytes == 300
        assert comparison.pooled_bytes == 300

    def test_pooling_savings_wrapper(self):
        series = {"a": np.array([10.0, 0.0]), "b": np.array([0.0, 10.0])}
        static, pooled, savings = pooling_savings(series, cost_per_byte=2.0)
        assert static == 40.0
        assert pooled == 20.0
        assert savings == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            required_provisioning({})
        with pytest.raises(ValueError):
            required_provisioning(
                {"a": np.array([1.0]), "b": np.array([1.0, 2.0])}
            )
        with pytest.raises(ValueError):
            required_provisioning({"a": np.array([1.0])}, headroom=-0.1)

    def test_cluster_memory_cost_positive(self):
        cost = provisioned_memory_cost(Cluster.preset("compute-centric"))
        assert cost > 0


class TestReport:
    def test_format_ns(self):
        assert format_ns(50.0) == "50ns"
        assert format_ns(5_000.0) == "5.00us"
        assert format_ns(5_000_000.0) == "5.00ms"
        assert format_ns(5e9) == "5.00s"
        assert format_ns(float("inf")) == "inf"

    def test_format_bytes(self):
        assert format_bytes(512) == "512B"
        assert format_bytes(2048) == "2.00KiB"
        assert format_bytes(3 * 1024**3) == "3.00GiB"

    def test_table_renders_aligned(self):
        table = Table(["name", "value"], title="T")
        table.add_row("a", 1)
        table.add_row("longer-name", 22)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) == 1

    def test_table_validation(self):
        with pytest.raises(ValueError):
            Table([])
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)
