"""Tests for the energy accounting model."""

import pytest

from repro.dataflow import Job, RegionUsage, Task, WorkSpec
from repro.hardware import Cluster
from repro.metrics.energy import (
    EnergyMeter,
    provisioned_memory_power,
)
from repro.runtime import RuntimeSystem

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB


def run_pipeline(cluster, payload=16 * MiB):
    rts = RuntimeSystem(cluster)
    job = Job("energy-probe")
    a = job.add_task(Task("a", work=WorkSpec(ops=1e5, output=RegionUsage(payload))))
    b = job.add_task(Task("b", work=WorkSpec(
        ops=1e6, input_usage=RegionUsage(0, touches=1.0))))
    job.connect(a, b)
    return rts.run_job(job)


class TestEnergyMeter:
    def test_idle_interval_is_pure_static_power(self):
        cluster = Cluster.preset("pooled-rack")
        meter = EnergyMeter(cluster)
        cluster.engine.timeout(1e9)  # one simulated second
        cluster.engine.run()
        breakdown = meter.read()
        assert breakdown.memory_dynamic == 0.0
        assert breakdown.fabric_dynamic == 0.0
        assert breakdown.compute_active == 0.0
        assert breakdown.memory_static > 0.0
        assert breakdown.compute_idle > 0.0
        assert breakdown.static_fraction == pytest.approx(1.0)

    def test_static_energy_scales_with_time(self):
        cluster = Cluster.preset("pooled-rack")
        meter = EnergyMeter(cluster)
        cluster.engine.timeout(1e9)
        cluster.engine.run()
        one_second = meter.read().memory_static
        cluster.engine.timeout(1e9)
        cluster.engine.run()
        two_seconds = meter.read().memory_static
        assert two_seconds == pytest.approx(2 * one_second)

    def test_work_adds_dynamic_energy(self):
        cluster = Cluster.preset("pooled-rack")
        meter = EnergyMeter(cluster)
        run_pipeline(cluster)
        breakdown = meter.read()
        assert breakdown.memory_dynamic > 0.0
        assert breakdown.fabric_dynamic > 0.0
        assert breakdown.compute_active > 0.0
        assert breakdown.total > 0.0

    def test_dynamic_energy_scales_with_payload(self):
        dynamics = {}
        for payload in (8 * MiB, 64 * MiB):
            cluster = Cluster.preset("pooled-rack")
            meter = EnergyMeter(cluster)
            run_pipeline(cluster, payload=payload)
            dynamics[payload] = meter.read().memory_dynamic
        # More than linear headroom is not guaranteed: larger payloads may
        # land on media with cheaper per-byte energy (GDDR vs DRAM).
        assert dynamics[64 * MiB] > dynamics[8 * MiB] * 2

    def test_reset_zeroes_the_window(self):
        cluster = Cluster.preset("pooled-rack")
        meter = EnergyMeter(cluster)
        run_pipeline(cluster)
        meter.reset()
        breakdown = meter.read()
        assert breakdown.total == 0.0

    def test_provisioned_power_rewards_rightsizing(self):
        """The Fig. 1 energy angle: a pooled rack provisioned for the
        pooled peak burns less standing DRAM power than per-node
        overprovisioning of the same workload."""
        overprovisioned = Cluster.preset("compute-centric",
                                         dram_per_node=256 * GiB)
        rightsized = Cluster.preset("compute-centric",
                                    dram_per_node=128 * GiB)
        assert (provisioned_memory_power(rightsized)
                < provisioned_memory_power(overprovisioned))

    def test_far_memory_bytes_cost_more_than_local(self):
        """Moving a byte over the NIC fabric costs an order of magnitude
        more energy than a local DRAM access."""
        from repro.metrics.energy import DYNAMIC_PJ_PER_BYTE, LINK_PJ_PER_BYTE
        from repro.hardware.spec import LinkKind, MemoryKind

        local = DYNAMIC_PJ_PER_BYTE[MemoryKind.DRAM] + LINK_PJ_PER_BYTE[LinkKind.DDR]
        far = (DYNAMIC_PJ_PER_BYTE[MemoryKind.FAR_MEMORY]
               + LINK_PJ_PER_BYTE[LinkKind.NIC])
        assert far > 5 * local
