"""Tests for the cross-layer profiler (paper challenge 8(1))."""

import pytest

from repro.apps import build_hospital_job
from repro.dataflow import Job, RegionUsage, Task, WorkSpec
from repro.hardware import Cluster
from repro.metrics import Profile
from repro.runtime import RuntimeSystem

KiB = 1024
MiB = 1024 * KiB


@pytest.fixture
def profiled_run():
    cluster = Cluster.preset("pooled-rack",
                             trace_categories={"profile", "memory"})
    rts = RuntimeSystem(cluster)
    job = Job("profiled")
    a = job.add_task(Task("produce", work=WorkSpec(
        ops=1e6, output=RegionUsage(16 * MiB))))
    b = job.add_task(Task("crunch", work=WorkSpec(
        ops=5e6, input_usage=RegionUsage(0, touches=1.0),
        scratch=RegionUsage(4 * MiB, touches=3.0))))
    job.connect(a, b)
    stats = rts.run_job(job)
    return cluster, stats


class TestProfile:
    def test_phases_cover_compute_and_memory(self, profiled_run):
        cluster, stats = profiled_run
        profile = Profile.from_run(cluster, stats)
        kinds = {p.kind for p in profile.phases}
        assert kinds == {"compute", "read", "write"}

    def test_task_breakdown_sums_to_duration(self, profiled_run):
        cluster, stats = profiled_run
        profile = Profile.from_run(cluster, stats)
        for name, task_stats in stats.tasks.items():
            breakdown = profile.task_breakdown(name)
            accounted = (breakdown["compute"] + breakdown["read"]
                         + breakdown["write"] + breakdown["other"])
            assert accounted == pytest.approx(task_stats.duration, rel=1e-6)
            assert breakdown["other"] >= 0

    def test_memory_fraction_bounded(self, profiled_run):
        cluster, stats = profiled_run
        profile = Profile.from_run(cluster, stats)
        for name in stats.tasks:
            assert 0.0 <= profile.memory_fraction(name) <= 1.0
        # crunch touches 12 MiB of scratch + 16 MiB input: memory-heavy.
        assert profile.memory_fraction("crunch") > 0.1

    def test_by_region_and_device_account_bytes(self, profiled_run):
        cluster, stats = profiled_run
        profile = Profile.from_run(cluster, stats)
        regions = profile.by_region()
        assert any("scratch" in name for name in regions)
        total_bytes = sum(nbytes for _t, nbytes in regions.values())
        assert total_bytes >= 16 * MiB + 12 * MiB
        devices = profile.by_backing_device()
        assert devices
        assert all(duration >= 0 for duration, _n in devices.values())

    def test_hottest_region_is_the_biggest_traffic(self, profiled_run):
        cluster, stats = profiled_run
        profile = Profile.from_run(cluster, stats)
        hottest = profile.hottest_region()
        regions = profile.by_region()
        assert regions[hottest][0] == max(t for t, _n in regions.values())

    def test_critical_path_ordered_and_plausible(self, profiled_run):
        cluster, stats = profiled_run
        profile = Profile.from_run(cluster, stats)
        spine = profile.critical_path()
        assert spine == ["produce", "crunch"]

    def test_render_contains_all_levels(self, profiled_run):
        cluster, stats = profiled_run
        profile = Profile.from_run(cluster, stats)
        text = profile.render()
        for level in ("Level 1 — job", "Level 2 — tasks",
                      "Level 3 — regions", "Level 4 — devices"):
            assert level in text

    def test_chrome_trace_export(self, profiled_run, tmp_path):
        """The profile exports as a valid Chrome trace: every task a
        metadata-named row, every phase nested inside its task span."""
        import json

        cluster, stats = profiled_run
        profile = Profile.from_run(cluster, stats)
        events = profile.to_chrome_trace()

        task_spans = {e["name"]: e for e in events
                      if e.get("cat") == "task"}
        assert set(task_spans) == set(stats.tasks)
        for event in events:
            if e_cat := event.get("cat"):
                if e_cat == "task":
                    continue
                # Phase events must fit inside their task's span.
                tid = event["tid"]
                task = next(e for e in events
                            if e.get("cat") == "task" and e["tid"] == tid)
                assert event["ts"] >= task["ts"] - 1e-6
                assert (event["ts"] + event["dur"]
                        <= task["ts"] + task["dur"] + 1e-6)

        path = tmp_path / "trace.json"
        profile.write_chrome_trace(str(path))
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"]

    def test_profile_isolates_one_job(self):
        """Two jobs traced together: each profile sees only its own."""
        cluster = Cluster.preset("pooled-rack",
                                 trace_categories={"profile"})
        rts = RuntimeSystem(cluster)
        stats = {}
        for name in ("alpha", "beta"):
            job = Job(name)
            job.add_task(Task("t", work=WorkSpec(
                ops=1e5, scratch=RegionUsage(1 * MiB, touches=1.0))))
            stats[name] = rts.run_job(job)
        alpha = Profile.from_run(cluster, stats["alpha"])
        beta = Profile.from_run(cluster, stats["beta"])
        assert all("alpha" in p.detail or p.kind == "compute"
                   for p in alpha.phases)
        assert len(alpha.phases) == len(beta.phases)

    def test_hospital_profile_cross_layer_attribution(self):
        """End-to-end on the hospital job: the profiler separates *time*
        cost from *byte* volume — track_hours' small random-access
        timesheet table dominates stall time, while face recognition's
        big sequential weights dominate traffic.  That distinction is
        exactly the cross-layer attribution challenge 8(1) asks for."""
        cluster = Cluster.preset("pooled-rack",
                                 trace_categories={"profile"})
        rts = RuntimeSystem(cluster)
        stats = rts.run_job(build_hospital_job())
        profile = Profile.from_run(cluster, stats)
        by_region = profile.by_region()
        hottest_by_time = profile.hottest_region()
        assert "track_hours#scratch" in hottest_by_time
        hottest_by_bytes = max(by_region, key=lambda n: by_region[n][1])
        assert "face_recognition#scratch" in hottest_by_bytes
