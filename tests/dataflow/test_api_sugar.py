"""Tests for the @task decorator sugar: body detection, identity
preservation, double-decoration guard, and tenancy annotations."""

import pytest

from repro.dataflow import Job, RegionUsage, ValidationError, WorkSpec
from repro.dataflow.api import _has_body, linear_job, task
from repro.dataflow.properties import TaskProperties

MiB = 1024 * 1024


def spec(payload=1 * MiB):
    return WorkSpec(ops=1e5, output=RegionUsage(payload))


class TestHasBody:
    def test_ellipsis_only_is_no_body(self):
        def fn(ctx):
            ...
        assert not _has_body(fn)

    def test_pass_only_is_no_body(self):
        def fn(ctx):
            pass
        assert not _has_body(fn)

    def test_docstring_only_is_no_body(self):
        def fn(ctx):
            """Just documentation, no behaviour."""
        assert not _has_body(fn)

    def test_docstring_plus_ellipsis_is_no_body(self):
        def fn(ctx):
            """Documented declaration."""
            ...
        assert not _has_body(fn)

    def test_one_line_generator_is_a_body(self):
        def fn(ctx):
            yield ctx
        assert _has_body(fn)

    def test_single_statement_is_a_body(self):
        def fn(ctx):
            ctx.log("hello")
        assert _has_body(fn)

    def test_non_function_has_no_body(self):
        assert not _has_body(print)


class TestTaskDecorator:
    def test_trivial_body_leaves_default_behaviour(self):
        job = Job("j")

        @task(job, work=spec())
        def stage(ctx):
            ...

        assert job.tasks["stage"].fn is None

    def test_real_body_becomes_behaviour(self):
        job = Job("j")

        @task(job, work=spec())
        def stage(ctx):
            yield ctx

        assert job.tasks["stage"].fn is not None

    def test_identity_preserved_on_task(self):
        job = Job("j")

        @task(job, work=spec())
        def stage(ctx):
            """Produce the payload."""
            ...

        assert stage is job.tasks["stage"]
        assert stage.__name__ == "stage"
        assert stage.__doc__ == "Produce the payload."
        assert stage.__wrapped__.__name__ == "stage"

    def test_after_wires_edges(self):
        job = Job("j")

        @task(job, work=spec())
        def first(ctx):
            ...

        @task(job, after=first, work=WorkSpec(
            ops=1e5, input_usage=RegionUsage(0)))
        def second(ctx):
            ...

        assert ("first", "second") in {
            (up.name, down.name) for up, down in job.edges()
        }

    def test_double_decoration_raises(self):
        job_a, job_b = Job("a"), Job("b")

        def stage(ctx):
            ...

        task(job_a, work=spec())(stage)
        with pytest.raises(ValidationError, match="already bound"):
            task(job_b, work=spec())(stage)


class TestTenancyAnnotations:
    def test_task_annotates_the_job(self):
        job = Job("j")

        @task(job, work=spec(), tenant="web", priority="interactive")
        def stage(ctx):
            ...

        assert job.tenant == "web"
        assert job.priority == "interactive"

    def test_conflicting_tenant_rejected_before_mutation(self):
        job = Job("j", tenant="web")

        with pytest.raises(ValidationError, match="already annotated"):
            @task(job, work=spec(), tenant="batch")
            def stage(ctx):
                ...

        assert job.tenant == "web"
        assert "stage" not in job.tasks  # rejected before add_task

    def test_linear_job_annotations(self):
        job = linear_job(
            "pipe",
            [("only", spec(), TaskProperties())],
            tenant="analytics", priority="best_effort",
        )
        assert job.tenant == "analytics"
        assert job.priority == "best_effort"

    def test_plain_jobs_carry_no_tenancy(self):
        job = linear_job("pipe", [("only", spec(), TaskProperties())])
        assert job.tenant is None
        assert job.priority is None
