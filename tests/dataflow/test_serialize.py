"""Tests for job serialization (declarative dataflows as JSON)."""

import pytest

from repro.apps import build_hospital_job, build_query_job, build_training_job
from repro.dataflow import Job, RegionUsage, Task, WorkSpec
from repro.dataflow.serialize import (
    SerializationError,
    job_from_dict,
    job_from_json,
    job_to_dict,
    job_to_json,
)
from repro.hardware import Cluster
from repro.runtime import RuntimeSystem


def assert_jobs_equal(a: Job, b: Job) -> None:
    assert a.name == b.name
    assert a.global_state_size == b.global_state_size
    assert set(a.tasks) == set(b.tasks)
    assert set(a.graph.edges) == set(b.graph.edges)
    for name in a.tasks:
        assert a.tasks[name].work == b.tasks[name].work, name
        assert a.tasks[name].properties == b.tasks[name].properties, name


class TestRoundTrip:
    @pytest.mark.parametrize("builder", [
        build_hospital_job,
        build_query_job,
        lambda: build_training_job(epochs=2),
    ])
    def test_app_jobs_round_trip(self, builder):
        original = builder()
        restored = job_from_json(job_to_json(original))
        assert_jobs_equal(original, restored)

    def test_restored_job_runs_identically(self):
        """A deserialized job produces the same simulated schedule."""
        def run(job):
            rts = RuntimeSystem(Cluster.preset("pooled-rack", seed=97))
            stats = rts.run_job(job)
            return [(n, s.device, s.started_at, s.finished_at)
                    for n, s in sorted(stats.tasks.items())]

        original = run(build_hospital_job(n_frames=8))
        restored = run(job_from_json(job_to_json(build_hospital_job(n_frames=8))))
        assert original == restored

    def test_global_scratch_slots_survive(self):
        job = build_query_job()  # uses the hash-index slot
        restored = job_from_dict(job_to_dict(job))
        assert restored.global_scratch_slots() == job.global_scratch_slots()


class TestErrors:
    def test_custom_fn_rejected(self):
        job = Job("custom")
        job.add_task(Task("t", fn=lambda ctx: (yield ctx.sleep(1))))
        with pytest.raises(SerializationError, match="custom function"):
            job_to_dict(job)

    def test_bad_version_rejected(self):
        with pytest.raises(SerializationError, match="version"):
            job_from_dict({"version": 99, "name": "x", "tasks": []})

    def test_malformed_payload_rejected(self):
        with pytest.raises(SerializationError):
            job_from_dict({"version": 1, "tasks": [{"oops": True}]})

    def test_invalid_json_rejected(self):
        with pytest.raises(SerializationError, match="JSON"):
            job_from_json("{not json")

    def test_cyclic_encoding_rejected(self):
        data = {
            "version": 1, "name": "cycle", "global_state_size": 0,
            "tasks": [{"name": "a", "work": {}, "properties": {}},
                      {"name": "b", "work": {}, "properties": {}}],
            "edges": [["a", "b"], ["b", "a"]],
        }
        with pytest.raises(Exception):
            job_from_dict(data)
