"""Tests for jobs, tasks, DAG validation, and the decorator API."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow import (
    Job,
    RegionUsage,
    Task,
    TaskProperties,
    ValidationError,
    WorkSpec,
    linear_job,
    task,
)
from repro.hardware.spec import ComputeKind, OpClass
from repro.memory.properties import LatencyClass


class TestGraphConstruction:
    def test_add_and_connect(self):
        job = Job("j")
        a = job.add_task(Task("a"))
        b = job.add_task(Task("b"))
        job.connect(a, b)
        assert b.upstream() == [a]
        assert a.downstream() == [b]
        assert a.qualified_name == "j/a"

    def test_duplicate_task_name_rejected(self):
        job = Job("j")
        job.add_task(Task("a"))
        with pytest.raises(ValidationError):
            job.add_task(Task("a"))

    def test_task_cannot_join_two_jobs(self):
        j1, j2 = Job("j1"), Job("j2")
        t = j1.add_task(Task("a"))
        with pytest.raises(ValidationError):
            j2.add_task(t)

    def test_connect_unknown_task_rejected(self):
        job = Job("j")
        job.add_task(Task("a"))
        with pytest.raises(ValidationError):
            job.connect("a", "ghost")

    def test_self_loop_rejected(self):
        job = Job("j")
        job.add_task(Task("a"))
        with pytest.raises(ValidationError):
            job.connect("a", "a")

    def test_cycle_detected_at_validation(self):
        job = Job("j")
        for n in ("a", "b", "c"):
            job.add_task(Task(n))
        job.connect("a", "b")
        job.connect("b", "c")
        job.connect("c", "a")
        with pytest.raises(ValidationError, match="cycle"):
            job.validate()

    def test_empty_job_invalid(self):
        with pytest.raises(ValidationError):
            Job("j").validate()

    def test_empty_names_rejected(self):
        with pytest.raises(ValidationError):
            Job("")
        with pytest.raises(ValidationError):
            Task("")

    def test_sources_sinks_topo_order(self):
        job = Job("j")
        for n in ("a", "b", "c", "d"):
            job.add_task(Task(n))
        job.connect("a", "b")
        job.connect("a", "c")
        job.connect("b", "d")
        job.connect("c", "d")
        assert [t.name for t in job.sources()] == ["a"]
        assert [t.name for t in job.sinks()] == ["d"]
        order = [t.name for t in job.topological_order()]
        assert order.index("a") < order.index("b") < order.index("d")

    def test_input_without_upstream_invalid(self):
        job = Job("j")
        job.add_task(Task("a", work=WorkSpec(input_usage=RegionUsage(0))))
        with pytest.raises(ValidationError, match="no upstream"):
            job.validate()

    def test_scratch_slot_must_be_published(self):
        job = Job("j")
        job.add_task(Task("a", work=WorkSpec(scratch_gets=("bloom",))))
        with pytest.raises(ValidationError, match="unpublished"):
            job.validate()

    def test_scratch_slot_single_publisher(self):
        job = Job("j")
        job.add_task(Task("a", work=WorkSpec(scratch_puts={"s": RegionUsage(64)})))
        job.add_task(Task("b", work=WorkSpec(scratch_puts={"s": RegionUsage(64)})))
        with pytest.raises(ValidationError, match="published by both"):
            job.validate()

    def test_global_scratch_slot_sizes_collected(self):
        job = Job("j")
        job.add_task(Task("a", work=WorkSpec(scratch_puts={"s": RegionUsage(128)})))
        assert job.global_scratch_slots() == {"s": 128}


class TestWorkSpec:
    def test_defaults(self):
        spec = WorkSpec()
        assert spec.ops == 0.0
        assert spec.output_size == 0
        assert spec.scratch_size == 0

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            WorkSpec(ops=-1)
        with pytest.raises(ValueError):
            RegionUsage(-1)
        with pytest.raises(ValueError):
            RegionUsage(10, touches=-1)
        with pytest.raises(ValueError):
            RegionUsage(10, access_size=0)

    def test_touched_bytes(self):
        assert RegionUsage(100, touches=2.5).touched_bytes == 250

    def test_scratch_gets_normalized_to_tuple(self):
        spec = WorkSpec(scratch_gets=["a", "b"])
        assert spec.scratch_gets == ("a", "b")


class TestProperties:
    def test_scratch_properties_inherit_latency(self):
        props = TaskProperties(mem_latency=LatencyClass.LOW, confidential=True)
        mem = props.scratch_properties()
        assert mem.latency is LatencyClass.LOW
        assert mem.confidential
        assert mem.sync

    def test_output_properties_persistence(self):
        props = TaskProperties(persistent=True)
        assert props.output_properties().persistent is True
        assert TaskProperties().output_properties().persistent is None

    def test_describe_matches_figure2_card(self):
        card = TaskProperties(
            compute=ComputeKind.GPU, confidential=True, mem_latency=LatencyClass.LOW
        ).describe()
        assert "compute=gpu" in card
        assert "confidential=true" in card
        assert "mem_latency=low" in card


class TestDecoratorApi:
    def test_decorator_registers_and_wires(self):
        job = Job("j")

        @task(job, work=WorkSpec(ops=10))
        def first(ctx):
            ...

        @task(job, after=first, work=WorkSpec(ops=10))
        def second(ctx):
            ...

        assert isinstance(first, Task)
        assert second.upstream() == [first]

    def test_trivial_body_means_default_behaviour(self):
        job = Job("j")

        @task(job)
        def declared_only(ctx):
            ...

        @task(job)
        def with_body(ctx):
            yield from ctx.sleep(1.0)

        assert declared_only.fn is None
        assert with_body.fn is not None

    def test_after_accepts_list_and_names(self):
        job = Job("j")

        @task(job)
        def a(ctx):
            ...

        @task(job)
        def b(ctx):
            ...

        @task(job, after=[a, "b"])
        def c(ctx):
            ...

        assert {t.name for t in c.upstream()} == {"a", "b"}

    def test_linear_job_builder(self):
        job = linear_job("lin", [
            ("s1", WorkSpec(ops=1, output=RegionUsage(64)), TaskProperties()),
            ("s2", WorkSpec(ops=1, input_usage=RegionUsage(0)), TaskProperties()),
        ])
        assert [t.name for t in job.topological_order()] == ["s1", "s2"]


@st.composite
def random_dag_edges(draw):
    n = draw(st.integers(2, 12))
    edges = []
    for j in range(1, n):
        for i in range(j):
            if draw(st.booleans()):
                edges.append((i, j))
    return n, edges


class TestDagProperties:
    @settings(max_examples=100, deadline=None)
    @given(data=random_dag_edges())
    def test_forward_edges_always_validate_and_topo_sort(self, data):
        """Any graph with only forward edges is a DAG: validation passes
        and the topological order respects every edge."""
        n, edges = data
        job = Job("dag")
        for i in range(n):
            job.add_task(Task(f"t{i}"))
        for i, j in edges:
            job.connect(f"t{i}", f"t{j}")
        job.validate()
        order = {t.name: k for k, t in enumerate(job.topological_order())}
        for i, j in edges:
            assert order[f"t{i}"] < order[f"t{j}"]
