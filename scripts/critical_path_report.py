#!/usr/bin/env python3
"""Per-job critical-path attribution report from the causal DAG.

Answers "where did this job's wall-clock go?" with buckets that provably
sum to the makespan, the straggler outliers, per-link transfer shares,
and SLO budget state.  Two input modes::

    # From a JSONL export (cluster.obs.export_jsonl("run.jsonl")):
    python scripts/critical_path_report.py run.jsonl
    python scripts/critical_path_report.py run.jsonl --job training

    # Self-contained benchmark mode (used by CI's perf-smoke job):
    python scripts/critical_path_report.py --bench --json attribution.json

``--bench`` runs a deterministic multi-job workload (fan-out/fan-in
DAGs with contended transfers) on the pooled rack with causal tracing
enabled and reports on the result.  In every mode the script *verifies*
each job's attribution — buckets must sum to the makespan within 1e-6
relative tolerance and the reported critical path must be a real
root-to-sink chain of recorded edges — and exits non-zero on violation
or when ``--job`` matches nothing.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

REL_TOL = 1e-6


def _bench_workload():
    """Deterministic multi-job run with causal tracing; returns its obs."""
    from repro.api import connect
    from repro.dataflow import Job, RegionUsage, Task, WorkSpec
    from repro.hardware import Cluster
    from repro.hardware.spec import OpClass

    KiB, MiB = 1024, 1024 * 1024

    def fan_job(name: str, width: int, payload: int) -> Job:
        job = Job(name, global_state_size=64 * KiB)
        source = job.add_task(Task("ingest", work=WorkSpec(
            ops=2e5, output=RegionUsage(payload))))
        shards = []
        for i in range(width):
            shard = job.add_task(Task(f"map{i}", work=WorkSpec(
                op_class=OpClass.VECTOR, ops=5e5,
                input_usage=RegionUsage(0),
                scratch=RegionUsage(1 * MiB, touches=2.0),
                output=RegionUsage(payload // width))))
            job.connect(source, shard)
            shards.append(shard)
        reduce = job.add_task(Task("reduce", work=WorkSpec(
            op_class=OpClass.MATMUL, ops=2e6,
            input_usage=RegionUsage(0),
            output=RegionUsage(payload // 2))))
        for shard in shards:
            job.connect(shard, reduce)
        sink = job.add_task(Task("publish", work=WorkSpec(
            ops=1e4, input_usage=RegionUsage(0),
            state_usage=RegionUsage(8 * KiB))))
        job.connect(reduce, sink)
        return job

    cluster = Cluster.preset("pooled-rack", seed=42)
    session = connect(cluster=cluster)
    cluster.obs.slo.set_policy("training", target_ns=2e6, objective=0.9)
    jobs = [
        fan_job("training", width=4, payload=8 * MiB),
        fan_job("training", width=4, payload=8 * MiB),
        fan_job("analytics", width=2, payload=2 * MiB),
    ]
    for job in jobs:
        stats = session.run(job)
        assert stats.ok, f"bench job {job.name} failed"
    return cluster.obs


def _collect(causal_jobs: dict, job_filter):
    """Attribute every finished graph; returns (attributions, problems)."""
    from repro.obs.causal import JobGraph, attribute_job, validate_path

    attributions = []
    problems = []
    for key, graph_data in causal_jobs.items():
        graph = (
            graph_data if isinstance(graph_data, JobGraph)
            else JobGraph.from_dict(graph_data)
        )
        if job_filter is not None and graph.job != job_filter:
            continue
        att = attribute_job(graph)
        if att is None:
            continue  # still in flight
        total = sum(att["buckets"].values())
        tolerance = REL_TOL * max(abs(att["makespan"]), 1.0)
        if abs(total - att["makespan"]) > tolerance:
            problems.append(
                f"{key}: buckets sum to {total:.6f} but makespan is "
                f"{att['makespan']:.6f}"
            )
        if not validate_path(graph, att["path"]):
            problems.append(f"{key}: critical path is not a valid "
                            f"root-to-sink chain")
        attributions.append(att)
    return attributions, problems


def _format_ns(ns: float) -> str:
    from repro.metrics.report import format_ns

    return format_ns(ns)


def _render(attributions, stragglers, slo) -> str:
    from repro.obs.causal import BUCKETS

    lines = []
    for att in attributions:
        makespan = att["makespan"] or 1.0
        status = "OK" if att["ok"] else "FAILED"
        lines.append(
            f"job {att['job']} ({att['key']})  "
            f"makespan {_format_ns(att['makespan'])}  [{status}]"
        )
        if att.get("admission_wait_ns"):
            lines.append(
                f"  admission wait (before submit): "
                f"{_format_ns(att['admission_wait_ns'])}"
            )
        if att.get("dropped_nodes"):
            lines.append(f"  ! graph saturated: {att['dropped_nodes']} "
                         f"nodes dropped (degraded to unattributed)")
        lines.append(f"  critical path: {len(att['path'])} nodes, "
                     f"{len(att['steps'])} contributing steps")
        for bucket in BUCKETS:
            ns = att["buckets"][bucket]
            if ns <= 0.0:
                continue
            lines.append(f"    {bucket:<18s} {_format_ns(ns):>12s}  "
                         f"{100.0 * ns / makespan:5.1f}%")
        if att["link_share"]:
            ranked = sorted(att["link_share"].items(), key=lambda kv: -kv[1])
            shares = ", ".join(
                f"{link} {_format_ns(ns)}" for link, ns in ranked[:4]
            )
            lines.append(f"  transfer by link: {shares}")
        top_tasks = sorted(
            att["per_task"].items(), key=lambda kv: -kv[1]["total"]
        )[:3]
        for task, info in top_tasks:
            lines.append(
                f"  top contributor: {task} on {info['device'] or '?'} "
                f"({_format_ns(info['total'])}, "
                f"{100.0 * info['total'] / makespan:.1f}%)"
            )
        lines.append("")
    if stragglers:
        lines.append("stragglers:")
        for entry in stragglers[:10]:
            culprit = entry["task"] or entry["device"]
            lines.append(
                f"  [{entry['scope']}] {culprit} in {entry['job']}/"
                f"{entry['bucket']}: {_format_ns(entry['ns'])} "
                f"({entry['share']:.0%} of makespan; cohort median "
                f"{_format_ns(entry['cohort_median'])}, "
                f"n={entry['cohort_size']})"
            )
        lines.append("")
    if slo:
        lines.append("SLO:")
        for workload, snap in sorted(slo.items()):
            line = (f"  {workload}: n={snap['total']} "
                    f"p50={_format_ns(float(snap.get('p50', 0.0)))} "
                    f"p95={_format_ns(float(snap.get('p95', 0.0)))} "
                    f"p99={_format_ns(float(snap.get('p99', 0.0)))}")
            if "target_ns" in snap:
                line += (f" target={_format_ns(float(snap['target_ns']))}"
                         f" miss={snap['miss_fraction']:.1%}"
                         f" budget_left={snap['budget_remaining']:.0%}"
                         f" burn={snap['burn_rate']:.2f}")
            lines.append(line)
        lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Critical-path attribution report from the causal DAG."
    )
    parser.add_argument("jsonl", nargs="?",
                        help="JSONL export (omit with --bench)")
    parser.add_argument("--bench", action="store_true",
                        help="run the built-in benchmark workload instead "
                             "of reading an export")
    parser.add_argument("--job", help="restrict to one job name "
                                      "(exit 1 when it recorded nothing)")
    parser.add_argument("--json", type=pathlib.Path, metavar="PATH",
                        help="also write the attribution artifact as JSON")
    args = parser.parse_args(argv)

    if args.bench == (args.jsonl is not None):
        parser.error("provide exactly one of: a JSONL export, or --bench")

    from repro.obs.causal import detect_stragglers

    if args.bench:
        obs = _bench_workload()
        causal_jobs = dict(obs.causal.jobs)
        slo = obs.slo.snapshot()
    else:
        from repro.obs.export import load_jsonl

        try:
            data = load_jsonl(args.jsonl)
        except OSError as exc:
            print(f"error: cannot read {args.jsonl}: {exc}", file=sys.stderr)
            return 1
        causal_jobs = data.get("causal", {}).get("jobs", {})
        slo = data.get("slo", {})

    attributions, problems = _collect(causal_jobs, args.job)
    if not attributions:
        target = f"job {args.job!r}" if args.job else "any job"
        print(f"error: no causal data recorded for {target} "
              f"(was the 'causal' trace category enabled?)", file=sys.stderr)
        return 1

    stragglers = detect_stragglers(attributions)
    print(_render(attributions, stragglers, slo))

    if args.json:
        artifact = {
            "generated_by": "scripts/critical_path_report.py",
            "jobs": attributions,
            "stragglers": stragglers,
            "slo": slo,
            "verified": not problems,
        }
        args.json.write_text(json.dumps(artifact, indent=2) + "\n")
        print(f"wrote {args.json}")

    if problems:
        for problem in problems:
            print(f"VERIFICATION FAILED: {problem}", file=sys.stderr)
        return 2
    print(f"verified: {len(attributions)} job(s), buckets sum to makespan, "
          f"critical paths valid")
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        raise SystemExit(0)
