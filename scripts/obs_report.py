#!/usr/bin/env python3
"""Render the observability dashboard from a JSONL run export.

Produce the export with ``cluster.obs.export_jsonl("run.jsonl")`` after
a run, then inspect it offline::

    python scripts/obs_report.py run.jsonl
    python scripts/obs_report.py run.jsonl --job training
    python scripts/obs_report.py run.jsonl --category recovery
    python scripts/obs_report.py run.jsonl --metrics

The dashboard shows per-job makespans and handover economics (zero-copy
ratio), critical-path attribution and SLO budgets (when the run traced
the ``causal`` category), per-device utilization timelines, per-link
bytes, and trace-ring health (retained vs. dropped events per category).

``--job``/``--category`` make the report *assertive*: when the export
recorded nothing for the requested job or category the script prints an
error and exits non-zero, so CI pipelines can depend on it.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        description="Render the text dashboard from an obs JSONL export."
    )
    parser.add_argument("jsonl", help="path to a file written by export_jsonl()")
    parser.add_argument("--job", help="restrict the job table to one job name")
    parser.add_argument(
        "--category",
        help="require trace events of this category (exit 1 when none)",
    )
    parser.add_argument(
        "--width", type=int, default=40,
        help="sparkline width in columns (default 40)",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="also print every recorded metric as a raw table",
    )
    args = parser.parse_args(argv)

    from repro.metrics.report import Table
    from repro.obs.dashboard import render_dashboard
    from repro.obs.export import load_jsonl

    try:
        data = load_jsonl(args.jsonl)
    except OSError as exc:
        print(f"error: cannot read {args.jsonl}: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"error: {args.jsonl} is not a JSONL export: {exc}", file=sys.stderr)
        return 1

    if args.job is not None:
        recorded = (
            any(
                event.get("cat") == "job"
                and event.get("fields", {}).get("job") == args.job
                for event in data.get("events", [])
            )
            or any(
                graph.get("job") == args.job
                for graph in data.get("causal", {}).get("jobs", {}).values()
            )
            or args.job in data.get("slo", {})
        )
        if not recorded:
            print(
                f"error: nothing recorded for job {args.job!r} in "
                f"{args.jsonl}",
                file=sys.stderr,
            )
            return 1
    if args.category is not None:
        count = sum(
            1 for event in data.get("events", [])
            if event.get("cat") == args.category
        )
        if count == 0:
            print(
                f"error: no events of category {args.category!r} in "
                f"{args.jsonl} (was the category enabled?)",
                file=sys.stderr,
            )
            return 1
        print(f"[{args.category}] {count} events retained\n")

    # Truncated history changes what the tables below can claim; lead
    # with the warning instead of letting a silent ring drop read as a
    # complete record.
    dropped = {
        category: n
        for category, n in (data.get("meta", {}).get("dropped") or {}).items()
        if n
    }
    timeline_drops = sum(
        int(snap.get("dropped", 0))
        for snap in data.get("metrics", {}).values()
        if snap.get("type") == "timeline"
    )
    if dropped or timeline_drops:
        parts = [f"{category}: {n} events" for category, n in sorted(dropped.items())]
        if timeline_drops:
            parts.append(f"timelines: {timeline_drops} change points")
        print(
            "WARNING: history truncated — bounded rings dropped "
            + ", ".join(parts)
            + " (oldest first); tables below reflect retained data only\n"
        )

    print(render_dashboard(data, job=args.job, width=args.width))

    if args.metrics:
        table = Table(["metric", "value"], title="All metrics")
        for name, snap in sorted(data.get("metrics", {}).items()):
            if "value" in snap:
                value = f"{snap['value']:g}"
            else:
                value = f"mean={snap.get('mean', 0.0):.3g} max={snap.get('max', 0.0):g}"
            table.add_row(name, value)
        print()
        print(table.render())
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:  # e.g. `obs_report.py run.jsonl | head`
        raise SystemExit(0)
