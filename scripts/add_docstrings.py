#!/usr/bin/env python3
"""One-shot maintenance tool: insert missing one-line docstrings.

Parses each target file with ``ast``, finds the named function/method
without a docstring, and inserts the given one-liner as the first body
statement (indentation taken from the existing first statement).  Used
to close the gaps found by ``tests/test_api_hygiene.py``; kept in the
repo because hygiene tools belong with the code they maintain.
"""

from __future__ import annotations

import ast
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent / "src"

#: (relative file, qualified name within file) -> docstring text.
DOCSTRINGS = {
    # --- enums (class docstrings handled as classes) --------------------
    ("repro/hardware/spec.py", "ComputeKind"):
        "Compute device classes of the disaggregated pool.",
    ("repro/memory/interfaces.py", "AccessMode"):
        "How a region is accessed: synchronous ld/st or async batches.",
    ("repro/memory/interfaces.py", "AccessPattern"):
        "Spatial access behaviour: prefetchable stream vs. random points.",
    ("repro/memory/ownership.py", "OwnershipMode"):
        "Exclusive (one owner, relaxed consistency) or shared ownership.",
    ("repro/memory/region.py", "RegionState"):
        "Lifecycle of a region: active, migrating, freed, or lost.",
    ("repro/memory/regions.py", "RegionType"):
        "The predefined Memory Regions of the paper's Table 2 (+ edges).",
    # --- sim ------------------------------------------------------------
    ("repro/sim/engine.py", "Engine.event"):
        "Create a fresh untriggered event bound to this engine.",
    ("repro/sim/engine.py", "Engine.timeout"):
        "Create an event that fires ``delay`` ns from now.",
    ("repro/sim/engine.py", "Engine.process"):
        "Start ``generator`` as a simulation process.",
    ("repro/sim/engine.py", "Engine.all_of"):
        "Composite event: fires when all child events have fired.",
    ("repro/sim/engine.py", "Engine.any_of"):
        "Composite event: fires when the first child event fires.",
    ("repro/sim/events.py", "Event.add_callback"):
        "Run ``callback(event)`` when this event is processed.",
    ("repro/sim/events.py", "Event.remove_callback"):
        "Deregister a pending callback (no-op if absent).",
    ("repro/sim/flows.py", "FlowNetwork.restore_link"):
        "Bring a failed link back up (new transfers may use it).",
    ("repro/sim/resources.py", "Resource.request"):
        "Request one slot; yield the returned event to acquire it.",
    ("repro/sim/resources.py", "Store.put"):
        "Insert ``item``; the returned event fires once it is stored.",
    ("repro/sim/resources.py", "Store.get"):
        "Take the oldest item; the returned event carries it.",
    ("repro/sim/trace.py", "TraceLog.emit"):
        "Append one trace record (dropped if its category is filtered).",
    ("repro/sim/trace.py", "TraceLog.by_category"):
        "All recorded events of one category.",
    ("repro/sim/trace.py", "TraceLog.by_name"):
        "All recorded events with one event name.",
    ("repro/sim/trace.py", "TraceLog.clear"):
        "Discard all recorded events.",
    # --- hardware -------------------------------------------------------
    ("repro/hardware/cluster.py", "Cluster.add_memory"):
        "Register a memory device (optionally in a failure domain).",
    ("repro/hardware/cluster.py", "Cluster.add_compute"):
        "Register a compute device (optionally in a failure domain).",
    ("repro/hardware/cluster.py", "Cluster.add_switch"):
        "Register a fabric switch vertex in the topology.",
    ("repro/hardware/cluster.py", "Cluster.memory_devices"):
        "Memory devices, optionally filtered by kind and liveness.",
    ("repro/hardware/cluster.py", "Cluster.compute_devices"):
        "Compute devices, optionally including failed ones.",
    ("repro/hardware/cluster.py", "Cluster.node_of"):
        "The failure domain a device belongs to (None if unassigned).",
    ("repro/hardware/cluster.py", "Cluster.crash_node"):
        "Inject an unplanned crash of a whole failure domain now.",
    ("repro/hardware/compute.py", "ComputeDevice.supports"):
        "Whether this device can execute the given op class.",
    ("repro/hardware/compute.py", "ComputeDevice.release_slot"):
        "Return a held execution slot (pairs with acquire_slot).",
    ("repro/hardware/compute.py", "ComputeDevice.fail"):
        "Mark the device failed (no new tasks are scheduled onto it).",
    ("repro/hardware/compute.py", "ComputeDevice.recover"):
        "Clear the failure flag after a repair/restart.",
    ("repro/hardware/spec.py", "ComputeDeviceSpec.supports"):
        "Whether the spec lists a throughput for the given op class.",
    ("repro/hardware/interconnect.py", "Topology.nodes"):
        "Vertex names, optionally filtered by role.",
    ("repro/hardware/interconnect.py", "Topology.links"):
        "All live Link objects in the fabric.",
    ("repro/hardware/interconnect.py", "Topology.link_between"):
        "The link directly connecting two adjacent vertices.",
    ("repro/hardware/interconnect.py", "Topology.route_kinds"):
        "The link technologies along the live route from src to dst.",
    # --- memory --------------------------------------------------------
    ("repro/memory/allocator.py", "FreeListAllocator.live_allocations"):
        "Snapshot of all currently live allocations.",
    ("repro/memory/manager.py", "MemoryManager.live_regions"):
        "All regions currently alive under this manager.",
    ("repro/memory/manager.py", "MemoryManager.live_bytes"):
        "Accounted live bytes, cluster-wide or for one device.",
    ("repro/memory/manager.py", "MemoryManager.transfer_ownership"):
        "Move exclusive ownership between tasks (Figure 4 handover).",
    ("repro/memory/manager.py", "MemoryManager.share"):
        "Widen a region's owner set (converts to shared mode).",
    ("repro/memory/ownership.py", "OwnershipRecord.is_owner"):
        "Whether ``actor`` currently owns this (unreleased) region.",
    ("repro/memory/pointers.py", "HotnessTracker.forget"):
        "Drop all hotness history for a region.",
    ("repro/memory/properties.py", "MemoryProperties.describe"):
        "Human-readable one-line rendering (parseable by the DSL).",
    ("repro/memory/region.py", "MemoryRegion.check_alive"):
        "Raise if the region has been freed or lost.",
    ("repro/memory/region.py", "RegionHandle.validate"):
        "Raise unless the handle's owner and epoch are still current.",
    ("repro/memory/addressing.py", "VirtualAddressSpace.unmap"):
        "Remove a region's window from this address space.",
    ("repro/memory/addressing.py", "VirtualAddressSpace.region_at"):
        "The region mapped at ``vaddr`` (raises on unmapped addresses).",
    ("repro/memory/coherence.py", "CoherenceModel.for_cluster"):
        "The (per-cluster singleton) coherence model for ``cluster``.",
    ("repro/memory/coherence.py", "CoherenceModel.forget"):
        "Drop all sharing state for a region (e.g. after free).",
    ("repro/memory/coherence.py", "CoherenceModel.sharers_of"):
        "The observers currently caching this region, sorted.",
    ("repro/memory/tiering.py", "TieringPolicy.rtt"):
        "Round-trip latency from the policy's observer to a device.",
    ("repro/memory/tiering.py", "TieringPolicy.allocator_free"):
        "Largest allocatable extent on a device (migration headroom).",
    ("repro/memory/tiering.py", "TieringDaemon.stop"):
        "Ask the background loop to exit at its next wakeup.",
    # --- dataflow -------------------------------------------------------
    ("repro/dataflow/graph.py", "Job.add_task"):
        "Attach a task to this job (names must be unique).",
    ("repro/dataflow/graph.py", "Job.sources"):
        "Tasks with no upstream edges.",
    ("repro/dataflow/graph.py", "Job.sinks"):
        "Tasks with no downstream edges.",
    ("repro/dataflow/graph.py", "Job.topological_order"):
        "Tasks in a dependency-respecting order (raises on cycles).",
    ("repro/dataflow/graph.py", "Job.edges"):
        "All dataflow edges as (upstream task, downstream task) pairs.",
    ("repro/dataflow/graph.py", "Task.upstream"):
        "Direct predecessors of this task in the job DAG.",
    ("repro/dataflow/graph.py", "Task.downstream"):
        "Direct successors of this task in the job DAG.",
    ("repro/dataflow/properties.py", "TaskProperties.describe"):
        "The Figure 2c card as one line (parseable by the DSL).",
    ("repro/dataflow/serialize.py", "job_to_json"):
        "Encode a declarative job as a JSON string.",
    ("repro/dataflow/serialize.py", "job_from_json"):
        "Decode a job from its JSON encoding (validates the DAG).",
    # --- runtime -------------------------------------------------------
    ("repro/runtime/placement.py", "PlacementPolicy.choose_device"):
        "Pick the backing device for a request (no allocation).",
    ("repro/runtime/placement.py", "DeclarativePlacement.candidates"):
        "Live devices whose offer satisfies the request for every observer.",
    ("repro/runtime/placement.py", "DeclarativePlacement.choose_device"):
        "The lowest-scoring satisfying candidate (raises if none).",
    ("repro/runtime/placement.py", "EncryptingPlacement.candidates"):
        "Satisfying devices, plus encryptable fallbacks for confidential data.",
    ("repro/runtime/placement.py", "EncryptingPlacement.score"):
        "Base score plus the crypto surcharge on non-isolated devices.",
    ("repro/runtime/placement.py", "EncryptingPlacement.place"):
        "Place the request, marking non-isolated confidential data encrypted.",
    ("repro/runtime/placement.py", "NaivePlacement.choose_device"):
        "A seeded-random device with room (topology-oblivious baseline).",
    ("repro/runtime/placement.py", "StaticKindPlacement.choose_device"):
        "The least-utilized device of the statically mapped kind.",
    ("repro/runtime/scheduler.py", "Scheduler.assign"):
        "Map every task of the job to a compute device.",
    ("repro/runtime/scheduler.py", "HeftScheduler.assign"):
        "HEFT list scheduling with handover-aware edge costs.",
    ("repro/runtime/scheduler.py", "RoundRobinScheduler.assign"):
        "Cycle tasks through feasible devices, ignoring costs.",
    ("repro/runtime/scheduler.py", "RandomScheduler.assign"):
        "Seeded-random feasible device per task (baseline).",
    ("repro/runtime/calibration.py", "CalibratedCostModel.compute_time"):
        "Raw compute estimate scaled by any learned correction.",
    ("repro/runtime/calibration.py", "CalibratedCostModel.access_time"):
        "Raw access estimate scaled by the learned contention factor.",
    ("repro/runtime/calibration.py", "CalibratedCostModel.corrections"):
        "A copy of the learned correction-factor table.",
    ("repro/runtime/admission.py", "RackStats.mean_memory_utilization"):
        "Time-weighted mean pool utilization over the sampled window.",
    ("repro/runtime/planner.py", "JobPlan.critical_path"):
        "The serial spine of the planned schedule, by estimated finish.",
    ("repro/runtime/planner.py", "JobPlan.render"):
        "The plan as an aligned text table.",
    ("repro/runtime/rts.py", "TaskContext.log"):
        "Emit a structured trace message attributed to this task.",
    ("repro/runtime/rts.py", "TaskContext.sleep"):
        "Generator: idle for ``ns`` simulated nanoseconds.",
    # --- ft -------------------------------------------------------------
    ("repro/ft/gf256.py", "GF256.divide"):
        "Element-wise a / b in GF(256) (raises on division by zero).",
    ("repro/ft/checkpoint.py", "CheckpointService.has_snapshot"):
        "Whether a completed snapshot exists for the region id.",
    ("repro/ft/checkpoint.py", "CheckpointService.stop"):
        "Ask the background snapshot loop to exit at its next wakeup.",
    ("repro/ft/checkpoint.py", "CheckpointService.unregister"):
        "Stop protecting a region and free its durable reservation.",
    ("repro/ft/erasure.py", "ErasureCodedStore.physical_bytes"):
        "Bytes physically occupied by all spans (data + parity).",
    ("repro/ft/erasure.py", "ErasureCodedStore.live_logical_bytes"):
        "Bytes of live (non-deleted) stored objects.",
    ("repro/ft/replication.py", "ReplicatedStore.delete"):
        "Remove an object and free every replica.",
    ("repro/ft/replication.py", "ReplicatedStore.physical_bytes"):
        "Bytes occupied across all healthy replicas.",
    ("repro/ft/replication.py", "ReplicatedStore.live_logical_bytes"):
        "Bytes of stored objects (one logical copy each).",
    ("repro/ft/replication.py", "ReplicatedStore.memory_overhead"):
        "Physical bytes per logical byte (= replica count when healthy).",
    ("repro/ft/striping.py", "StripedStore.delete"):
        "Remove an object and free all of its pages.",
    ("repro/ft/striping.py", "StripedStore.note_device_failures"):
        "Mark pages on failed devices lost; returns how many.",
    ("repro/ft/striping.py", "StripedStore.physical_bytes"):
        "Bytes occupied by surviving pages (data + parity).",
    ("repro/ft/striping.py", "StripedStore.live_logical_bytes"):
        "Bytes of stored objects (one logical copy each).",
    ("repro/ft/striping.py", "StripedStore.memory_overhead"):
        "Physical bytes per logical byte ((w+1)/w with parity).",
    ("repro/ft/recovery.py", "RecoveryOrchestrator.register"):
        "Add another store to the repair set.",
    # --- apps ------------------------------------------------------------
    ("repro/apps/dbms.py", "MiniDB.create_table"):
        "Register a structured-array table under a unique name.",
    ("repro/apps/dbms.py", "MiniDB.scan"):
        "The full contents of a registered table.",
    ("repro/apps/dbms.py", "MiniDB.filter"):
        "Rows where ``column <op> value`` holds.",
    ("repro/apps/dbms_exec.py", "PhysicalQueryEngine.register_table"):
        "Make a table scannable by compiled plans.",
    ("repro/apps/hpc_exec.py", "JacobiSolver.solve"):
        "Run the distributed relaxation; returns field + residuals + stats.",
    ("repro/apps/stream_exec.py", "StreamStats.latencies"):
        "Sorted end-to-end latencies of completed windows.",
    ("repro/apps/stream_exec.py", "StreamStats.throughput_per_s"):
        "Completed windows per second of simulated horizon.",
    # --- metrics ---------------------------------------------------------
    ("repro/metrics/energy.py", "EnergyMeter.reset"):
        "Start a fresh measurement window at the current time.",
    ("repro/metrics/profiler.py", "Profile.hottest_region"):
        "The region with the largest total access time (None if none).",
    ("repro/metrics/profiler.py", "Profile.render"):
        "The four-level profile as aligned text tables.",
    ("repro/metrics/profiler.py", "Profile.write_chrome_trace"):
        "Dump the Chrome-trace JSON for chrome://tracing / Perfetto.",
    ("repro/metrics/report.py", "Table.add_row"):
        "Append one row (must match the column count).",
    ("repro/metrics/report.py", "Table.render"):
        "The table as aligned text.",
    ("repro/metrics/utilization.py", "cluster_snapshot"):
        "Point-in-time memory/compute utilization of a cluster.",
}


def apply(path: pathlib.Path, qualname: str, doc: str) -> bool:
    source = path.read_text()
    tree = ast.parse(source)
    parts = qualname.split(".")

    def find(body, names):
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)) and node.name == names[0]:
                if len(names) == 1:
                    return node
                return find(node.body, names[1:])
        return None

    node = find(tree.body, parts)
    if node is None:
        print(f"  !! not found: {path.name}:{qualname}")
        return False
    if ast.get_docstring(node):
        return False
    first = node.body[0]
    lines = source.splitlines(keepends=True)
    indent = " " * first.col_offset
    escaped = doc.replace('"', '\\"')
    lines.insert(first.lineno - 1, f'{indent}"""{escaped}"""\n')
    path.write_text("".join(lines))
    return True


def main() -> int:
    changed = 0
    for (rel, qualname), doc in sorted(DOCSTRINGS.items()):
        if apply(ROOT / rel, qualname, doc):
            changed += 1
    print(f"inserted {changed} docstrings")
    return 0


if __name__ == "__main__":
    sys.exit(main())
