#!/usr/bin/env python3
"""Run the simulator hot-path microbenchmarks and emit BENCH_sim_hotpaths.json.

The artifact records the wall-clock perf trajectory of the harness
itself (flow rebalancing, HEFT scheduling, placement probing, soak
wall-clock — see ``benchmarks/perf/hotpaths.py``).  Usage::

    PYTHONPATH=src python scripts/perf_report.py            # regenerate
    PYTHONPATH=src python scripts/perf_report.py --check    # CI gate

``--check`` re-runs the benches and fails (exit 1) when any bench's
wall-clock regresses more than ``--threshold``x (default 2.0) against
the checked-in ``after`` numbers; it never rewrites the file.  Without
``--check`` the script rewrites the ``after`` section in place while
preserving the frozen ``before`` section (the pre-optimization
quadratic-era numbers this PR was measured against).

Wall-clock comparisons across different machines are noisy — the 2x
threshold is deliberately loose; the artifact's precise value is the
*trajectory on one machine* (CI), not an absolute claim.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT))

DEFAULT_OUT = ROOT / "BENCH_sim_hotpaths.json"


def run_benches(names=None, profile_dir=None) -> dict:
    """Run the registered microbenchmarks; returns {name: result dict}.

    With ``profile_dir`` set, each bench runs under :mod:`cProfile` and
    the top-20 cumulative-time entries land in
    ``<profile_dir>/profile_<bench>.txt`` — the evidence future perf
    PRs start from (profiled wall-clock is inflated by instrumentation;
    the recorded ``wall_s`` keeps its meaning as *relative* hotness
    only in this mode).
    """
    from benchmarks.perf.hotpaths import ALL_BENCHES

    results = {}
    for name, bench in ALL_BENCHES.items():
        if names and name not in names:
            continue
        print(f"running {name} ...", flush=True)
        if profile_dir is not None:
            import cProfile
            import io
            import pstats

            profiler = cProfile.Profile()
            results[name] = profiler.runcall(bench)
            stream = io.StringIO()
            stats = pstats.Stats(profiler, stream=stream)
            stats.sort_stats("cumulative").print_stats(20)
            stats.sort_stats("tottime").print_stats(20)
            out = pathlib.Path(profile_dir) / f"profile_{name}.txt"
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(stream.getvalue())
            print(f"  profile -> {out}", flush=True)
        else:
            results[name] = bench()
        print(
            "  {name}: {ops_per_s:.1f} ops/s, {events_per_s:.1f} events/s "
            "({wall_s:.4f}s wall)".format(**results[name]),
            flush=True,
        )
    return results


def check(current: dict, baseline: dict, threshold: float,
          causal_overhead: float = 1.10,
          telemetry_overhead: float = 1.10,
          soak_floor: float = 100_000.0,
          overhead_samples: dict = None) -> int:
    """Compare wall-clock against the checked-in baseline; 0 = pass."""
    failures = []

    def paired_ratio(inst_name: str):
        """Instrumented/plain wall ratio, noise-robust when possible.

        Wall-clock noise is one-sided — the machine can only be slower
        than its best, never faster — so every per-pass ratio and the
        min/min quotient are upper bounds on the true cost, each
        inflated by different noise.  The tightest (smallest) of them is
        the best estimate: a *real* overhead regression inflates every
        sample and survives the min, a scheduling hiccup inflates only
        some and is discarded.
        """
        inst, plain = current.get(inst_name), current.get("flows_2k")
        if not (inst and plain):
            return None, 0
        samples = overhead_samples or {}
        insts = samples.get(inst_name) or [inst["wall_s"]]
        plains = samples.get("flows_2k") or [plain["wall_s"]]
        ratios = [i / max(p, 1e-9) for i, p in zip(insts, plains)]
        ratios.append(min(insts) / max(min(plains), 1e-9))
        return min(ratios), len(ratios)

    for name, result in current.items():
        base = baseline.get(name)
        if base is None:
            print(f"  {name}: no baseline (new bench), skipping")
            continue
        ratio = result["wall_s"] / max(base["wall_s"], 1e-9)
        verdict = "OK" if ratio <= threshold else "REGRESSION"
        print(
            f"  {name}: {result['wall_s']:.4f}s vs baseline "
            f"{base['wall_s']:.4f}s ({ratio:.2f}x) "
            f"[{result['ops_per_s']:.0f} ops/s, "
            f"{result['events_per_s']:.0f} events/s] {verdict}"
        )
        if ratio > threshold:
            failures.append((name, ratio))

    # Causal tracing must stay cheap: gate the same-machine, same-run
    # wall ratio of the traced flow bench against the plain one.
    ratio, n = paired_ratio("flows_2k_causal")
    if ratio is not None:
        verdict = "OK" if ratio <= causal_overhead else "REGRESSION"
        print(
            f"  causal overhead: flows_2k_causal / flows_2k = {ratio:.3f}x "
            f"(max {causal_overhead:.2f}x, best of {n} estimates) "
            f"{verdict}"
        )
        if ratio > causal_overhead:
            failures.append(("causal_overhead", ratio))

    # Continuous telemetry prices itself the same way: watchers + pump
    # + per-flow samples + sampled hotness on the identical workload
    # must stay within the overhead bar.
    ratio, n = paired_ratio("flows_2k_telemetry")
    if ratio is not None:
        verdict = "OK" if ratio <= telemetry_overhead else "REGRESSION"
        print(
            f"  telemetry overhead: flows_2k_telemetry / flows_2k = "
            f"{ratio:.3f}x (max {telemetry_overhead:.2f}x, best of {n} "
            f"estimates) {verdict}"
        )
        if ratio > telemetry_overhead:
            failures.append(("telemetry_overhead", ratio))

    # The million-event soak gates absolute engine throughput, not a
    # ratio: the scheduler must sustain >=100k events/s at ~20k queue
    # depth regardless of what the baseline machine recorded.
    soak = current.get("soak_1m_events")
    if soak:
        eps = soak["events_per_s"]
        verdict = "OK" if eps >= soak_floor else "REGRESSION"
        print(
            f"  soak throughput: {eps:.0f} events/s "
            f"(floor {soak_floor:.0f}) {verdict}"
        )
        if eps < soak_floor:
            failures.append(("soak_throughput", eps / max(soak_floor, 1.0)))

    if failures:
        print(f"FAIL: {len(failures)} check(s) failed: "
              + ", ".join(f"{n} ({r:.2f}x)" for n, r in failures))
        return 1
    print("all benches within threshold")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate or gate BENCH_sim_hotpaths.json."
    )
    parser.add_argument("bench", nargs="*",
                        help="bench names to run (default: all)")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help=f"artifact path (default {DEFAULT_OUT.name})")
    parser.add_argument("--check", action="store_true",
                        help="compare against the checked-in numbers "
                             "instead of rewriting them")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="max allowed wall-clock ratio in --check mode")
    parser.add_argument("--causal-overhead", type=float, default=1.10,
                        help="max allowed flows_2k_causal/flows_2k wall "
                             "ratio in --check mode (default 1.10)")
    parser.add_argument("--telemetry-overhead", type=float, default=1.10,
                        help="max allowed flows_2k_telemetry/flows_2k wall "
                             "ratio in --check mode (default 1.10)")
    parser.add_argument("--soak-floor", type=float, default=100_000.0,
                        help="min sustained events/s for soak_1m_events "
                             "in --check mode (default 100k)")
    parser.add_argument("--repeat", type=int, default=1,
                        help="run the sweep N times and keep each bench's "
                             "fastest sample (baselines should reflect the "
                             "code, not one scheduler hiccup)")
    parser.add_argument("--profile", action="store_true",
                        help="run each bench under cProfile and dump the "
                             "top-20 cumulative/tottime entries to "
                             "benchmarks/results/profile_<bench>.txt "
                             "(mutually exclusive with --check: profiled "
                             "wall-clock would trip the gate)")
    args = parser.parse_args(argv)
    if args.profile and args.check:
        parser.error("--profile inflates wall-clock; run it without --check")

    existing = {}
    if args.out.exists():
        existing = json.loads(args.out.read_text())

    profile_dir = ROOT / "benchmarks" / "results" if args.profile else None
    current = run_benches(set(args.bench) or None, profile_dir=profile_dir)
    for _ in range(max(args.repeat, 1) - 1):
        rerun = run_benches(set(args.bench) or None)
        for name, result in rerun.items():
            if result["wall_s"] < current[name]["wall_s"]:
                current[name] = result

    if args.check:
        overhead_group = {"flows_2k", "flows_2k_causal", "flows_2k_telemetry"}
        present = overhead_group & set(current)
        samples = {name: [current[name]["wall_s"]] for name in present}
        if present > {"flows_2k"}:
            # The overhead gates compare ~300ms sections whose run-to-run
            # noise (CPU frequency, co-tenants) can exceed the 10% bar
            # itself.  Re-run the group twice more: the absolute-baseline
            # check keeps each bench's fastest sample, and the overhead
            # gates use the tightest of the per-pass ratios (see
            # ``check``), which cancels machine drift between passes.
            for _ in range(2):
                rerun = run_benches(present)
                for name, result in rerun.items():
                    samples[name].append(result["wall_s"])
                    if result["wall_s"] < current[name]["wall_s"]:
                        current[name] = result
        return check(current, existing.get("after", {}), args.threshold,
                     causal_overhead=args.causal_overhead,
                     telemetry_overhead=args.telemetry_overhead,
                     soak_floor=args.soak_floor,
                     overhead_samples=samples)

    if args.profile:
        # Profiled wall-clock is instrumentation-inflated; recording it
        # as the new 'after' would poison the regression baseline.
        print("profile mode: artifact left untouched")
        return 0

    after = dict(existing.get("after", {}))
    after.update(current)
    artifact = {
        "generated_by": "scripts/perf_report.py",
        "note": ("'before' is frozen at the pre-optimization simulator "
                 "(full O(flows x links) re-solve per event); 'after' is "
                 "regenerated by this script."),
        "before": existing.get("before", {}),
        "after": after,
    }
    args.out.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
