#!/usr/bin/env python3
"""Per-window telemetry report from JSONL run exports.

Render the continuous-telemetry section of one export — per-window
utilization / queue-depth / throughput tables, SLO burn per window,
burn-rate alerts, sampled hotness, and the telemetry layer's own cost —
or sweep several exports (one per offered-load point) and locate the
capacity **knee point**::

    python scripts/telemetry_report.py run.jsonl
    python scripts/telemetry_report.py run.jsonl --series engine.queue_depth
    python scripts/telemetry_report.py sweep_*.jsonl --knee --json knee.json

The report is *assertive*: an export with no telemetry series exits
non-zero (the run predates the hub or never polled), so CI pipelines
can depend on the artifact.

Knee-point detection: each export contributes one ``(offered,
response)`` point — the run-mean of ``--x-series`` (a rate series;
default ``jobs.completed``) against the mean per-window p95 of
``--y-series`` (default the first ``slo.latency/*`` series).  The knee
is the point with the maximum perpendicular distance to the chord
joining the sweep's endpoints — the standard parameter-free "kneedle"
criterion, robust to the absolute scale of either axis.
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

#: Series rendered by default (when present), in display order.
DEFAULT_SERIES = (
    "util.compute",
    "engine.queue_depth",
    "engine.events",
    "jobs.completed",
    "rack.running",
    "rack.queued",
    "rack.memory_util",
    "flow.bytes",
)


def _fmt(value, digits: int = 4) -> str:
    if value is None:
        return "-"
    return f"{float(value):.{digits}g}"


def render_series_table(name: str, snap: dict, limit: int) -> str:
    """One windowed series as an aligned per-window table."""
    from repro.metrics.report import Table, format_ns

    kind = snap.get("kind", "?")
    width = float(snap.get("width_ns") or 0.0)
    dropped = int(snap.get("dropped", 0))
    title = f"{name} [{kind}, window {format_ns(width)}]"
    if dropped:
        title += f"  ** history truncated: {dropped} windows dropped **"
    columns = ["window start", "count"]
    if kind == "level":
        columns += ["mean", "max"]
    else:
        columns += ["total", "rate/ns", "mean", "max"]
    has_p95 = any("p95" in w for w in snap.get("windows", []))
    if has_p95:
        columns.append("p95")
    table = Table(columns, title=title)
    for window in snap.get("windows", [])[-limit:]:
        row = [format_ns(float(window.get("start", 0.0))),
               int(window.get("count", 0))]
        if kind == "level":
            row += [_fmt(window.get("mean")), _fmt(window.get("max"))]
        else:
            row += [_fmt(window.get("total")), _fmt(window.get("rate")),
                    _fmt(window.get("mean")), _fmt(window.get("max"))]
        if has_p95:
            row.append(format_ns(window["p95"]) if "p95" in window else "-")
        table.add_row(*row)
    return table.render()


def burn_table(telemetry: dict, slo: dict, limit: int):
    """Per-window burn rate for every workload with a policy, or None."""
    from repro.metrics.report import Table, format_ns

    workloads = [
        (name, snap) for name, snap in sorted(slo.items())
        if "target_ns" in snap
        and f"slo.total/{name}" in telemetry.get("series", {})
    ]
    if not workloads:
        return None
    table = Table(
        ["workload", "window start", "obs", "missed", "burn"],
        title="SLO burn per window (burn 1.0 = budget consumed on pace)",
    )
    for name, snap in workloads:
        budget = 1.0 - float(snap["objective"])
        totals = telemetry["series"][f"slo.total/{name}"].get("windows", [])
        missed = {
            w["index"]: w
            for w in telemetry["series"]
            .get(f"slo.missed/{name}", {})
            .get("windows", [])
        }
        for window in totals[-limit:]:
            total = float(window.get("total", 0.0))
            if total <= 0:
                continue
            miss = float(missed.get(window["index"], {}).get("total", 0.0))
            burn = (miss / total) / budget if budget else float("inf")
            table.add_row(
                name, format_ns(float(window.get("start", 0.0))),
                int(total), int(miss), f"{burn:.2f}",
            )
    return table.render() if table.rows else None


def summarize(path: str, data: dict) -> dict:
    """One export's telemetry reduced to sweep-level scalars."""
    telemetry = data.get("telemetry") or {}
    series = telemetry.get("series") or {}
    out = {"file": path, "series": {}}
    for name, snap in series.items():
        windows = snap.get("windows", [])
        if not windows:
            continue
        kind = snap.get("kind")
        key = "rate" if kind == "rate" else "mean"
        values = [float(w.get(key, 0.0)) for w in windows]
        p95s = [float(w["p95"]) for w in windows if "p95" in w]
        out["series"][name] = {
            "kind": kind,
            "windows": len(windows),
            "mean": sum(values) / len(values),
            "max": max(values),
            "mean_p95": sum(p95s) / len(p95s) if p95s else None,
        }
    alerts = telemetry.get("alerts") or {}
    out["alerts"] = {
        "opened": alerts.get("opened", 0),
        "closed": alerts.get("closed", 0),
    }
    out["self"] = telemetry.get("self", {})
    return out


def knee_point(points):
    """Index of the knee in ``[(x, y), ...]`` (max distance to chord).

    Points are sorted by x first.  Returns ``None`` for degenerate
    sweeps (fewer than 3 points, or a zero-length chord).
    """
    pts = sorted(points)
    if len(pts) < 3:
        return None
    (x0, y0), (x1, y1) = pts[0], pts[-1]
    dx, dy = x1 - x0, y1 - y0
    norm = math.hypot(dx, dy)
    if norm == 0:
        return None
    best, best_dist = None, 0.0
    for i in range(1, len(pts) - 1):
        x, y = pts[i]
        dist = abs(dy * (x - x0) - dx * (y - y0)) / norm
        if dist > best_dist:
            best, best_dist = i, dist
    return None if best is None else (pts, best, best_dist)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Per-window telemetry tables and capacity knee "
                    "detection from obs JSONL exports."
    )
    parser.add_argument("jsonl", nargs="+",
                        help="export(s) written by export_jsonl()")
    parser.add_argument("--series", action="append", default=None,
                        help="series name(s) to render (default: the "
                             "standard utilization/queue/throughput set)")
    parser.add_argument("--windows", type=int, default=12,
                        help="max windows per table (default 12)")
    parser.add_argument("--knee", action="store_true",
                        help="treat the files as an offered-load sweep "
                             "and locate the knee point")
    parser.add_argument("--x-series", default="jobs.completed",
                        help="sweep x axis: run-mean of this rate series "
                             "(default jobs.completed)")
    parser.add_argument("--y-series", default=None,
                        help="sweep y axis: mean per-window p95 of this "
                             "sample series (default: first slo.latency/*)")
    parser.add_argument("--json", type=pathlib.Path, default=None,
                        help="write the machine-readable artifact here")
    args = parser.parse_args(argv)

    from repro.metrics.report import Table, format_ns
    from repro.obs.export import load_jsonl

    loaded = []
    for path in args.jsonl:
        try:
            data = load_jsonl(path)
        except OSError as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 1
        except ValueError as exc:
            print(f"error: {path} is not a JSONL export: {exc}",
                  file=sys.stderr)
            return 1
        if not (data.get("telemetry") or {}).get("series"):
            print(
                f"error: {path} has no telemetry series (run predates "
                "the telemetry hub, or it never polled)",
                file=sys.stderr,
            )
            return 1
        loaded.append((path, data))

    artifact = {"files": [summarize(p, d) for p, d in loaded]}

    # -- single-file (or per-file) detail ---------------------------------
    for path, data in loaded:
        telemetry = data["telemetry"]
        series = telemetry["series"]
        if len(loaded) > 1:
            print(f"=== {path} ===\n")
        wanted = args.series if args.series else [
            name for name in DEFAULT_SERIES if name in series
        ]
        missing = [name for name in (args.series or []) if name not in series]
        if missing:
            print(
                "error: series not in export: " + ", ".join(missing)
                + "; available: " + ", ".join(sorted(series)),
                file=sys.stderr,
            )
            return 1
        for name in wanted:
            print(render_series_table(name, series[name], args.windows))
            print()
        burn = burn_table(telemetry, data.get("slo") or {}, args.windows)
        if burn:
            print(burn)
            print()
        alerts = telemetry.get("alerts") or {}
        if alerts.get("opened"):
            table = Table(
                ["workload", "scope", "opened", "closed", "peak burn"],
                title="Burn-rate alerts",
            )
            for entry in list(alerts.get("log", [])) + list(
                alerts.get("active", [])
            ):
                closed_at = entry.get("closed_at")
                table.add_row(
                    entry.get("workload", "?"), entry.get("scope") or "-",
                    format_ns(float(entry.get("opened_at", 0.0))),
                    format_ns(float(closed_at))
                    if closed_at is not None else "OPEN",
                    f"{float(entry.get('peak_burn', 0.0)):.2f}",
                )
            print(table.render())
            print()
        hotness = telemetry.get("hotness") or {}
        if hotness.get("sampled"):
            table = Table(
                ["rank", "region", "est. bytes"],
                title=f"Hotness top-k (sampled 1/{hotness.get('rate')})",
            )
            for i, (key, score) in enumerate(hotness.get("regions", [])[:10]):
                table.add_row(i + 1, key, _fmt(score, 6))
            print(table.render())
            print()
        self_cost = telemetry.get("self") or {}
        if self_cost:
            print(
                "telemetry self-cost: "
                f"{self_cost.get('samples', 0)} samples, "
                f"{self_cost.get('polls', 0)} polls, "
                f"{float(self_cost.get('self_wall_s', 0.0)) * 1e3:.2f} ms "
                f"wall, ~{int(self_cost.get('memory_bytes', 0))} B retained"
            )
            print()

    # -- sweep / knee ------------------------------------------------------
    if args.knee:
        y_name = args.y_series
        points, labels = [], {}
        for path, data in loaded:
            series = data["telemetry"]["series"]
            if y_name is None:
                candidates = sorted(
                    n for n in series if n.startswith("slo.latency/")
                )
                if not candidates:
                    print(
                        f"error: {path} has no slo.latency/* series; pass "
                        "--y-series",
                        file=sys.stderr,
                    )
                    return 1
                y_name = candidates[0]
            for name, axis in ((args.x_series, "x"), (y_name, "y")):
                if name not in series:
                    print(
                        f"error: {axis}-series {name!r} not in {path}; "
                        "available: " + ", ".join(sorted(series)),
                        file=sys.stderr,
                    )
                    return 1
            xs = summarize(path, data)["series"]
            x = xs[args.x_series]["mean"]
            y = xs[y_name]["mean_p95"]
            if y is None:
                y = xs[y_name]["mean"]
            points.append((x, y))
            labels[(x, y)] = path
        knee = knee_point(points)
        table = Table(
            ["file", args.x_series, f"{y_name} (p95)", "knee"],
            title="Offered-load sweep",
        )
        pts = sorted(points)
        knee_idx = knee[1] if knee else None
        for i, (x, y) in enumerate(pts):
            table.add_row(
                labels[(x, y)], _fmt(x, 6), format_ns(y),
                "<== KNEE" if i == knee_idx else "",
            )
        print(table.render())
        if knee:
            pts, idx, dist = knee
            artifact["knee"] = {
                "file": labels[pts[idx]],
                "x": pts[idx][0],
                "y": pts[idx][1],
                "distance": dist,
                "x_series": args.x_series,
                "y_series": y_name,
            }
            print(
                f"\nknee point: {labels[pts[idx]]} "
                f"({args.x_series}={_fmt(pts[idx][0], 6)}, "
                f"p95={format_ns(pts[idx][1])})"
            )
        else:
            artifact["knee"] = None
            print("\nknee point: n/a (need >= 3 sweep points with a "
                  "non-degenerate chord)")

    if args.json is not None:
        args.json.write_text(json.dumps(artifact, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        raise SystemExit(0)
