"""Gray-failure claim — fail-slow faults, evidence-only mitigation.

Hard failures are the easy half of disaggregation: a crashed blade
announces itself.  Fail-slow ("gray") faults — a throttled memory
device, a flaky switch port, a thermally limited core — silently
stretch every transfer and task that touches them while the nominal
spec sheet the cost model plans against stays pristine.

This bench runs the same seeded degradation storm (DEVICE_SLOW on the
busy compute/memory devices, LINK_DEGRADED on the CXL fabric) against
three stacks over a stream of pipeline jobs per seed:

* **clean** — no storm; the p95 floor.
* **blind** — storm, monitor attached but detection off: the runtime
  rides out every slow episode at full price.
* **mitigated** — storm plus the gray-failure stack: median+MAD
  latency scoring flags DEGRADED devices from observed/expected timing
  ratios alone, the scheduler and placement treat them as a last
  resort, hedged transfers race a replica copy against slow reads, and
  retries are token-budgeted with decorrelated jitter.

Pass criteria: the mitigated stack claws back at least half of the
p95 latency the storm inflicted on the blind stack, with zero
job-level failures, retry volume inside the configured budget, and —
checked structurally — no code path from the fault injector into the
detector (the monitor registers no handler for any gray fault kind).
"""

import pytest

from benchmarks.conftest import once
from repro.dataflow import Job, RegionUsage, Task, WorkSpec
from repro.ft import OutputBackupStore
from repro.hardware import Cluster
from repro.metrics import Table, format_bytes, format_ns
from repro.runtime import (
    DegradationPolicy,
    HealthMonitor,
    HedgePolicy,
    RecoveryPolicy,
    RuntimeSystem,
)
from repro.sim.faults import FaultKind

KiB = 1024
MiB = 1024 * KiB

SEEDS = range(10)
JOBS_PER_SEED = 10
RETRY_TOKENS = 6.0
#: The devices the pipeline actually leans on: the blades that run its
#: stages and the node-local memories hosting its 8 MiB stage outputs.
#: Gray faults only matter on the hot path.
SLOW_TARGETS = ["cpu1", "gpu1", "dram-local1", "gddr1"]


def build_job(tag) -> Job:
    job = Job(f"gray-{tag}")
    previous = None
    for i in range(4):
        task = job.add_task(Task(f"s{i}", work=WorkSpec(
            ops=2e5,
            input_usage=RegionUsage(0, touches=2.0) if previous else None,
            output=RegionUsage(8 * MiB) if i < 3 else None,
        )))
        if previous is not None:
            job.connect(previous, task)
        previous = task
    return job


def fabric_links(cluster, count=2):
    """Names of the first CXL-switch links, the storm's link victims."""
    names = sorted(
        link.name for link in cluster.topology.links()
        if "cxl-switch" in link.name
    )
    return names[:count]


def build_stack(seed: int, mode: str):
    """One (cluster, rts) pair per mode.

    Every mode carries the output-backup store (durability is priced
    into all three), so the blind/mitigated delta isolates exactly the
    gray-failure stack: evidence-based detection, degraded-last
    placement/scheduling, hedged copies, and retry budgets.
    """
    cluster = Cluster.preset("pooled-rack", seed=seed)
    if mode == "mitigated":
        HealthMonitor(
            cluster, detection_delay_ns=5_000.0,
            degradation=DegradationPolicy(min_samples=2, window=4),
        )
        rts = RuntimeSystem(
            cluster,
            recovery=RecoveryPolicy(
                backoff_base_ns=5_000.0, max_task_attempts=4,
                retry_budget_tokens=RETRY_TOKENS,
            ),
            hedge=HedgePolicy(),
        )
    else:
        HealthMonitor(cluster, detection_delay_ns=5_000.0)
        rts = RuntimeSystem(cluster)
    rts.backups = OutputBackupStore(cluster, rts.memory)
    return cluster, rts


def schedule_storm(cluster, horizon: float) -> None:
    """Persistent fail-slow episodes: each lasts a few jobs, the way a
    flaky NIC or a thermally throttled DIMM stays flaky — long enough
    that evidence accumulates, never announced to the control plane."""
    cluster.faults.schedule_degradations(
        FaultKind.DEVICE_SLOW, SLOW_TARGETS,
        rate_per_ns=3.0 / horizon, horizon=horizon,
        duration_ns=horizon / 3.0, factor=0.05,
    )
    # Link episodes are kept shorter and shallower than device ones:
    # a degraded fabric link guards the *only* path to bytes that
    # already live behind it, so even a perfect mitigation pays the
    # slow path once to evacuate them (replica creation streams over
    # the same link the consumer reads on).  Device slowness, by
    # contrast, is fully dodgeable via replicas and re-placement.
    cluster.faults.schedule_degradations(
        FaultKind.LINK_DEGRADED, fabric_links(cluster),
        rate_per_ns=1.5 / horizon, horizon=horizon,
        duration_ns=horizon / 6.0, factor=0.25,
    )


def monitor_never_peeks(cluster) -> bool:
    """Structural no-cheating check: no HealthMonitor method is wired
    as a handler for any gray (fail-slow) fault kind."""
    gray = (FaultKind.DEVICE_SLOW, FaultKind.DEVICE_RESTORED,
            FaultKind.LINK_DEGRADED, FaultKind.LINK_RESTORED)
    monitor = cluster.health_monitor
    for kind in gray:
        for handler in cluster.faults._handlers.get(kind, ()):
            if getattr(handler, "__self__", None) is monitor:
                return False
    return True


def p95(values):
    ordered = sorted(values)
    rank = 0.95 * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] + (ordered[high] - ordered[low]) * (rank - low)


def run_mode(seed: int, mode: str, horizon: float) -> dict:
    cluster, rts = build_stack(seed, mode)
    if mode != "clean":
        schedule_storm(cluster, horizon)
    latencies, failures, retries_ok = [], 0, True
    for i in range(JOBS_PER_SEED):
        stats = rts.run_job(build_job(f"{seed}-{i}"))
        latencies.append(stats.makespan)
        if not stats.ok:
            failures += 1
        if stats.task_retries > RETRY_TOKENS:
            retries_ok = False
    return {
        "latencies": latencies,
        "failures": failures,
        "retries_ok": retries_ok,
        "no_peek": monitor_never_peeks(cluster),
        "degraded_events":
            cluster.obs.counter("health.degraded_events").value,
        "hedges": cluster.obs.counter("hedge.launched").value,
        "hedge_wins": cluster.obs.counter("hedge.won").value,
        "wasted_bytes": cluster.obs.counter("hedge.wasted_bytes").value,
        "budget_denied": cluster.obs.counter("recovery.budget_denied").value,
    }


def test_claim_gray_failure_mitigation(benchmark, report):
    results = {}

    def experiment():
        # Size the storm horizon off one clean seed's job stream.
        probe = run_mode(0, "clean", horizon=0.0)
        horizon = sum(probe["latencies"]) * 1.2
        for mode in ("clean", "blind", "mitigated"):
            runs = [run_mode(seed, mode, horizon) for seed in SEEDS]
            latencies = [ns for r in runs for ns in r["latencies"]]
            results[mode] = {
                "p95": p95(latencies),
                "failures": sum(r["failures"] for r in runs),
                "retries_ok": all(r["retries_ok"] for r in runs),
                "no_peek": all(r["no_peek"] for r in runs),
                "degraded_events":
                    sum(r["degraded_events"] for r in runs),
                "hedges": sum(r["hedges"] for r in runs),
                "hedge_wins": sum(r["hedge_wins"] for r in runs),
                "wasted_bytes": sum(r["wasted_bytes"] for r in runs),
                "budget_denied": sum(r["budget_denied"] for r in runs),
            }
        return results

    once(benchmark, experiment)
    jobs = len(SEEDS) * JOBS_PER_SEED
    table = Table(
        ["mode", "p95 latency", "job failures", "degraded events",
         "hedges (won)", "hedge waste", "budget denials"],
        title=f"Fail-slow storm over {jobs} jobs ({len(SEEDS)} seeds)",
    )
    for mode, r in results.items():
        table.add_row(
            mode, format_ns(r["p95"]), r["failures"],
            r["degraded_events"],
            f"{r['hedges']} ({r['hedge_wins']})",
            format_bytes(r["wasted_bytes"]), r["budget_denied"],
        )
    report("claim_gray_failure", table.render())

    clean, blind, mitigated = (
        results["clean"], results["blind"], results["mitigated"])
    inflicted = blind["p95"] - clean["p95"]
    recovered = blind["p95"] - mitigated["p95"]
    # The storm must actually hurt the blind stack, and the gray
    # stack must recover at least half of that p95 inflation.
    assert inflicted > 0
    assert recovered >= 0.5 * inflicted
    # Mitigation never trades latency for correctness.
    assert mitigated["failures"] == 0
    # Retry volume stays inside the per-job token budget.
    assert mitigated["retries_ok"]
    # Detection engaged, and purely from observed timings: the monitor
    # holds no handler for any injected gray fault kind.
    assert mitigated["degraded_events"] > 0
    assert mitigated["no_peek"]
    assert blind["degraded_events"] == 0  # detection off means off
    # Hedge accounting stays coherent.
    assert mitigated["hedge_wins"] <= mitigated["hedges"]
    assert mitigated["wasted_bytes"] >= 0
