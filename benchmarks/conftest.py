"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artifact (table/figure/claim — see
DESIGN.md §4).  Results are printed *and* written to
``benchmarks/results/<bench>.txt`` so a ``--benchmark-only`` run leaves
the reproduced tables on disk for EXPERIMENTS.md regardless of pytest's
output capturing.
"""

from __future__ import annotations

import pathlib
import time

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report():
    """report(bench_id, text): print + persist one reproduced artifact."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(bench_id: str, text: str) -> None:
        body = text if text.endswith("\n") else text + "\n"
        print(f"\n{body}")
        (RESULTS_DIR / f"{bench_id}.txt").write_text(body)

    return _report


def run_sim(cluster, generator):
    """Run one simulation generator to completion, return its value.

    Prints a one-line harness-cost summary (engine events processed and
    wall-clock) so slow claims are visible in CI logs without digging
    into pytest durations.
    """

    def driver():
        result = yield from generator
        return result

    events_before = cluster.engine.events_processed
    wall_start = time.perf_counter()
    result = cluster.engine.run(until=cluster.engine.process(driver()))
    wall = time.perf_counter() - wall_start
    events = cluster.engine.events_processed - events_before
    print(
        f"[run_sim] events={events} wall={wall:.3f}s "
        f"({events / max(wall, 1e-9):,.0f} events/s)"
    )
    return result


def once(benchmark, fn):
    """Benchmark a deterministic simulation exactly once.

    The interesting output of these benches is the *simulated* metrics
    they print; wall-clock timing of the harness itself is recorded as a
    single round so `--benchmark-only` still reports it.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
