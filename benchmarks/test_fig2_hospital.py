"""F2 — reproduce Figure 2: the hospital dataflow with declarative
properties.

Runs the five-task CCTV job with its Figure 2c property cards under
three runtimes — the declarative RTS, the explicit/static baseline, and
the topology-oblivious naive baseline — and verifies both the semantic
guarantees (confidential regions isolated, the missing-patient log on
persistent media, GPU tasks on GPUs) and the performance shape
(declarative fastest).
"""

import pytest

from benchmarks.conftest import once
from repro.apps import build_hospital_job
from repro.hardware import Cluster
from repro.hardware.spec import Attachment, ComputeKind
from repro.metrics import Table, format_ns
from repro.runtime import baselines

KiB = 1024


def run_variant(variant: str, seed: int = 42):
    cluster = Cluster.preset("pooled-rack", seed=seed,
                             trace_categories={"memory"})
    rts = baselines.REGISTRY[variant](cluster)
    job = build_hospital_job(n_frames=64, frame_bytes=128 * KiB)
    stats = rts.run_job(job)
    allocations = [
        (str(e.fields["region"]), str(e.fields["device"]))
        for e in cluster.trace.by_name("allocate")
    ]
    return cluster, stats, allocations


def test_fig2_hospital_dataflow(benchmark, report):
    results = {}

    def experiment():
        for variant in ("declarative", "static", "naive"):
            results[variant] = run_variant(variant)
        return results

    once(benchmark, experiment)

    job = build_hospital_job()
    cards = Table(["task", "property card (Figure 2c)"],
                  title="Figure 2 (reproduced): hospital job")
    for task in job.topological_order():
        cards.add_row(task.name, task.properties.describe())

    cluster, stats, allocations = results["declarative"]
    placement = Table(["region", "device"], title="Declarative placements")
    for region, device in allocations:
        placement.add_row(region, device)

    comparison = Table(["runtime", "makespan", "slowdown vs declarative"])
    base = results["declarative"][1].makespan
    for variant in ("declarative", "static", "naive"):
        makespan = results[variant][1].makespan
        comparison.add_row(variant, format_ns(makespan), f"{makespan / base:.2f}x")

    report("fig2_hospital", "\n\n".join(
        [cards.render(), placement.render(), comparison.render()]
    ))

    # --- semantic guarantees under the declarative runtime ---------------
    # GPU-carded tasks ran on GPUs, CPU-carded on CPUs.
    for task_name, kind in [
        ("preprocessing", ComputeKind.GPU), ("face_recognition", ComputeKind.GPU),
        ("track_hours", ComputeKind.CPU), ("alert_caregivers", ComputeKind.CPU),
    ]:
        assert cluster.compute[stats.assignment[task_name]].kind is kind

    # Confidential tasks' regions never land on NIC-attached pool memory.
    confidential_tasks = ("preprocessing", "face_recognition",
                          "track_hours", "alert_caregivers")
    for region, device in allocations:
        if any(t in region for t in confidential_tasks):
            assert cluster.memory[device].spec.attachment is not Attachment.NIC, region

    # The missing-patient log (T5 output) is on persistent media.
    alert_outputs = [d for r, d in allocations if "alert_caregivers#out" in r]
    assert alert_outputs
    assert all(cluster.memory[d].spec.persistent for d in alert_outputs)

    # --- performance shape ----------------------------------------------
    assert results["declarative"][1].makespan <= results["static"][1].makespan
    assert results["declarative"][1].makespan <= results["naive"][1].makespan
    # Naive placement costs integer factors, echoing the intro's ~3x.
    assert results["naive"][1].makespan / base > 1.5


def test_fig2_streaming_arrival_rate(benchmark, report):
    """Throughput view: back-to-back hospital jobs (one per CCTV window)
    keep completing at a stable rate — the runtime frees every region, so
    there is no drift."""
    cluster = Cluster.preset("pooled-rack", seed=7)
    rts = baselines.declarative(cluster)

    def experiment():
        makespans = []
        for i in range(10):
            job = build_hospital_job(n_frames=16)
            # Job names must be unique per submission.
            job.name = f"hospital-{i}"
            makespans.append(rts.run_job(job).makespan)
        return makespans

    makespans = once(benchmark, experiment)
    table = Table(["window", "makespan"], title="Figure 2 follow-on: "
                  "10 consecutive CCTV windows")
    for i, makespan in enumerate(makespans):
        table.add_row(i, format_ns(makespan))
    report("fig2_streaming", table.render())

    assert len(rts.memory.live_regions()) == 0
    assert max(makespans) <= min(makespans) * 1.5  # no degradation drift
    assert makespans[-1] == pytest.approx(makespans[1], rel=0.3)
