"""T1 — reproduce Table 1: memory device properties as seen from a CPU.

For every device attached to the ``table1-host`` preset, measure on the
simulated fabric (not just read off the spec):

* sequential read bandwidth (streaming 4 MiB through the flow network),
* random 64 B access latency (one synchronous round trip, or the async
  equivalent for devices without sync load/store),

and report them next to the static columns (granularity, attachment,
sync, persistence).  Pass criterion: the orderings of the paper's
``++/+/o/-/--`` columns hold end-to-end.
"""

import math

import pytest

from benchmarks.conftest import once, run_sim
from repro.hardware import Cluster
from repro.memory.interfaces import AccessMode, AccessPattern, Accessor
from repro.memory.manager import MemoryManager
from repro.memory.properties import MemoryProperties
from repro.metrics import Table, format_bytes, format_ns

MiB = 1024 * 1024

#: Table 1 rows in the paper's order, mapped to preset device names.
DEVICES = ["cache0", "hbm0", "dram0", "pmem0", "cxl0", "far0", "ssd0", "hdd0"]
PAPER_ROWS = {
    "cache0": ("Cache", "++", "++"),
    "hbm0": ("HBM", "++", "+"),
    "dram0": ("DRAM", "+", "+"),
    "pmem0": ("PMem", "o", "o"),
    "cxl0": ("CXL-DRAM", "o", "o"),
    "far0": ("Disagg. Mem.", "o", "-"),
    "ssd0": ("SSD", "-", "-"),
    "hdd0": ("HDD", "--", "--"),
}


def measure_device(cluster, manager, name):
    device = cluster.memory[name]
    region = manager.allocate_on(
        name, 4 * MiB, MemoryProperties(), owner="bench", name=f"probe-{name}"
    )
    accessor = Accessor(cluster, region.handle("bench"), "cpu0")
    mode = accessor.default_mode()

    t0 = cluster.engine.now
    run_sim(cluster, accessor.read(4 * MiB, pattern=AccessPattern.SEQUENTIAL, mode=mode))
    seq_time = cluster.engine.now - t0
    bandwidth = 4 * MiB / seq_time  # bytes/ns

    t0 = cluster.engine.now
    run_sim(cluster, accessor.read(
        64, pattern=AccessPattern.RANDOM, access_size=64, mode=mode,
    ))
    latency = cluster.engine.now - t0
    manager.free(region)
    return bandwidth, latency, mode


def test_table1_device_properties(benchmark, report):
    cluster = Cluster.preset("table1-host")
    manager = MemoryManager(cluster)

    measured = {}

    def experiment():
        for name in DEVICES:
            measured[name] = measure_device(cluster, manager, name)
        return measured

    once(benchmark, experiment)

    table = Table(
        ["Name", "Bw(paper)", "Bw meas.", "Lat(paper)", "Lat meas.",
         "Gran.", "Attached", "Sync", "Persist."],
        title="Table 1 (reproduced): memory device properties as seen from a CPU",
    )
    for name in DEVICES:
        device = cluster.memory[name]
        bandwidth, latency, mode = measured[name]
        table.add_row(
            PAPER_ROWS[name][0],
            PAPER_ROWS[name][1],
            f"{bandwidth:7.2f}GB/s",
            PAPER_ROWS[name][2],
            format_ns(latency),
            format_bytes(device.spec.granularity),
            device.spec.attachment.value,
            "yes" if mode is AccessMode.SYNC else "no (async)",
            "yes" if device.spec.persistent else "no",
        )
    report("table1_devices", table.render())

    # --- shape assertions: the paper's orderings hold end to end -------
    bw = {n: measured[n][0] for n in DEVICES}
    lat = {n: measured[n][1] for n in DEVICES}
    assert bw["cache0"] > bw["hbm0"] > bw["dram0"]
    assert bw["dram0"] > bw["cxl0"] > bw["pmem0"]
    assert bw["pmem0"] > bw["ssd0"] > bw["hdd0"]
    assert lat["cache0"] < lat["dram0"] < lat["pmem0"]
    assert lat["dram0"] < lat["cxl0"] < lat["far0"] < lat["ssd0"] < lat["hdd0"]
    # Sync column: far memory/SSD/HDD are async-only (Table 1).
    assert measured["dram0"][2] is AccessMode.SYNC
    assert measured["cxl0"][2] is AccessMode.SYNC
    for name in ("far0", "ssd0", "hdd0"):
        assert measured[name][2] is AccessMode.ASYNC


def test_table1_granularity_amplification(benchmark, report):
    """Sub-granule random writes are amplified to the device granule —
    the reason Table 1 has a 'Gran.' column at all."""
    cluster = Cluster.preset("table1-host")
    manager = MemoryManager(cluster)

    def experiment():
        results = {}
        for name in ("dram0", "pmem0", "ssd0"):
            device = cluster.memory[name]
            region = manager.allocate_on(
                name, 1 * MiB, MemoryProperties(), owner="bench"
            )
            accessor = Accessor(cluster, region.handle("bench"), "cpu0")
            before = device.bytes_written
            run_sim(cluster, accessor.write(
                8 * 1024, pattern=AccessPattern.RANDOM, access_size=8,
                mode=accessor.default_mode(),
            ))
            results[name] = (device.bytes_written - before) / (8 * 1024)
            manager.free(region)
        return results

    amplification = once(benchmark, experiment)
    table = Table(["device", "granularity", "write amplification (8B ops)"],
                  title="Table 1 follow-on: access-granularity amplification")
    for name, factor in amplification.items():
        table.add_row(name, format_bytes(cluster.memory[name].spec.granularity),
                      f"{factor:.0f}x")
    report("table1_granularity", table.render())

    assert amplification["dram0"] == pytest.approx(8.0)  # 64 B lines
    assert amplification["pmem0"] == pytest.approx(32.0)  # 256 B lines
    assert amplification["ssd0"] == pytest.approx(512.0)  # 4 KiB blocks
    assert not math.isclose(amplification["dram0"], amplification["pmem0"])
