"""C15 — the paper's thesis, swept: complexity grows with heterogeneity.

§2.2(2): explicit placement "increases complexity, especially as more
kinds of memory become available."  We build a family of clusters with
an increasingly heterogeneous memory landscape (DRAM only → +CXL-DRAM →
+PMem → +far memory) and run the same workload under the declarative
runtime and the topology-oblivious baseline.  Pass criteria:

* on the homogeneous cluster the two are close (there is nothing to
  get wrong), and
* the naive/declarative gap widens monotonically-ish as device kinds
  are added — placement knowledge matters more the more disaggregated
  the memory gets.
"""

import pytest

from benchmarks.conftest import once
from repro.dataflow import Job, RegionUsage, Task, WorkSpec
from repro.hardware import calibration as cal
from repro.hardware.cluster import Cluster
from repro.hardware.spec import GiB, LinkKind
from repro.memory.interfaces import AccessPattern
from repro.metrics import Table, format_ns
from repro.runtime import baselines

KiB = 1024
MiB = 1024 * KiB

TIER_STAGES = [
    ("DRAM only", []),
    ("+ CXL-DRAM", ["cxl"]),
    ("+ PMem", ["cxl", "pmem"]),
    ("+ far memory", ["cxl", "pmem", "far"]),
]


def build_cluster(extra_tiers, seed):
    cluster = Cluster(seed=seed)
    cluster.add_compute(cal.make_cpu("cpu0"), node="host")
    # Keep total capacity constant-ish: local DRAM shrinks as the pool
    # diversifies (the disaggregation story: less local, more pooled).
    dram_capacity = (4 - len(extra_tiers)) * 2 * GiB
    cluster.add_memory(cal.make_dram("dram0", capacity=dram_capacity),
                       node="host")
    cluster.connect("cpu0", "dram0", LinkKind.DDR)
    if "cxl" in extra_tiers:
        cluster.add_memory(cal.make_cxl_dram("cxl0", capacity=2 * GiB),
                           node="host")
        cluster.connect("cpu0", "cxl0", LinkKind.CXL)
    if "pmem" in extra_tiers:
        cluster.add_memory(cal.make_pmem("pmem0", capacity=2 * GiB),
                           node="host")
        cluster.connect("cpu0", "pmem0", LinkKind.DDR)
    if "far" in extra_tiers:
        cluster.add_memory(cal.make_far_memory("far0", capacity=2 * GiB),
                           node="memnode")
        cluster.connect("cpu0", "far0", LinkKind.NIC)
    return cluster


def workload():
    """A scratch-heavy two-stage job: placement of the hot state decides."""
    job = Job("thesis")
    a = job.add_task(Task("build", work=WorkSpec(
        ops=1e5,
        scratch=RegionUsage(64 * MiB, touches=2.0,
                            pattern=AccessPattern.RANDOM, access_size=256),
        output=RegionUsage(16 * MiB))))
    b = job.add_task(Task("probe", work=WorkSpec(
        ops=1e5, input_usage=RegionUsage(0),
        scratch=RegionUsage(64 * MiB, touches=2.0,
                            pattern=AccessPattern.RANDOM, access_size=256))))
    job.connect(a, b)
    return job


def test_claim_heterogeneity_sweep(benchmark, report):
    results = {}

    def experiment():
        for label, tiers in TIER_STAGES:
            row = {}
            for variant in ("declarative", "naive"):
                # Average the seeded-random baseline over several seeds so
                # the sweep reflects expectation, not one lucky draw.
                seeds = (1,) if variant == "declarative" else (1, 2, 3, 4, 5)
                makespans = []
                for seed in seeds:
                    cluster = build_cluster(tiers, seed=seed)
                    rts = baselines.REGISTRY[variant](cluster)
                    makespans.append(rts.run_job(workload()).makespan)
                row[variant] = sum(makespans) / len(makespans)
            results[label] = row
        return results

    once(benchmark, experiment)

    table = Table(
        ["memory landscape", "declarative", "naive (mean of 5 seeds)",
         "naive / declarative"],
        title="C15 (thesis): the cost of placement-obliviousness vs "
              "memory heterogeneity",
    )
    gaps = []
    for label, _tiers in TIER_STAGES:
        row = results[label]
        gap = row["naive"] / row["declarative"]
        gaps.append(gap)
        table.add_row(label, format_ns(row["declarative"]),
                      format_ns(row["naive"]), f"{gap:.2f}x")
    report("claim_heterogeneity", table.render())

    # Homogeneous: nothing to get wrong.
    assert gaps[0] == pytest.approx(1.0, abs=0.05)
    # The gap grows as kinds of memory are added...
    assert gaps[1] > gaps[0]
    assert gaps[-1] > gaps[1]
    # ...and ends at an integer factor on the fully disaggregated box.
    assert gaps[-1] > 2.0
