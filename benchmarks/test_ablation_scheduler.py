"""C6 — ablation: the cost-model scheduler vs. cost-blind baselines.

DESIGN.md §5(4): the HEFT scheduler sees ownership-handover edges as
near-free and uses the same access-path cost model as placement.  This
bench runs a mixed workload (hospital + query + training, plus a wide
fan-out) under HEFT, round-robin, and random scheduling — placement held
fixed (declarative) so the scheduler is the only variable.  Pass
criterion: HEFT's makespan <= both baselines on every workload.
"""

from benchmarks.conftest import once
from repro.apps import build_hospital_job, build_query_job, build_training_job
from repro.dataflow import Job, RegionUsage, Task, WorkSpec
from repro.hardware import Cluster
from repro.hardware.spec import OpClass
from repro.metrics import Table, format_ns
from repro.runtime import (
    HeftScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    RuntimeSystem,
)

MiB = 1024 * 1024

SCHEDULERS = {
    "HEFT (cost model)": HeftScheduler,
    "round-robin": RoundRobinScheduler,
    "random": RandomScheduler,
}


def wide_mixed_job():
    """A fan-out of heterogeneous kernels: the scheduler must route each
    to the right device class without being told."""
    job = Job("mixed-kernels")
    src = job.add_task(Task("src", work=WorkSpec(
        ops=1e4, output=RegionUsage(8 * MiB))))
    kernels = [
        ("gemm", OpClass.MATMUL, 5e7),
        ("stream", OpClass.VECTOR, 2e7),
        ("crypt", OpClass.CRYPTO, 1e7),
        ("pack", OpClass.COMPRESS, 1e7),
        ("chase", OpClass.SCALAR, 2e6),
    ]
    for name, op, ops in kernels:
        sink = job.add_task(Task(name, work=WorkSpec(
            op_class=op, ops=ops, input_usage=RegionUsage(0, touches=0.5))))
        job.connect(src, sink)
    return job


WORKLOADS = {
    "hospital (Fig. 2)": lambda: build_hospital_job(n_frames=32),
    "analytics query": lambda: build_query_job(n_rows=300_000),
    "ML training": lambda: build_training_job(
        n_samples=20_000, model_bytes=8 * MiB, epochs=2),
    "mixed kernels fan-out": wide_mixed_job,
}


def test_ablation_scheduler(benchmark, report):
    results = {}

    def experiment():
        for workload_name, builder in WORKLOADS.items():
            row = {}
            for scheduler_name, factory in SCHEDULERS.items():
                cluster = Cluster.preset("pooled-rack", seed=23)
                rts = RuntimeSystem(cluster, scheduler=factory())
                stats = rts.run_job(builder())
                assert stats.ok, (workload_name, scheduler_name)
                row[scheduler_name] = stats.makespan
            results[workload_name] = row
        return results

    once(benchmark, experiment)

    table = Table(
        ["workload"] + list(SCHEDULERS) + ["best baseline / HEFT"],
        title="C6 (ablation): scheduler policy, placement held fixed",
    )
    for workload_name, row in results.items():
        heft = row["HEFT (cost model)"]
        best_baseline = min(row["round-robin"], row["random"])
        table.add_row(
            workload_name,
            *[format_ns(row[s]) for s in SCHEDULERS],
            f"{best_baseline / heft:.2f}x",
        )
    report("ablation_scheduler", table.render())

    for workload_name, row in results.items():
        heft = row["HEFT (cost model)"]
        assert heft <= row["round-robin"] * 1.01, workload_name
        assert heft <= row["random"] * 1.01, workload_name
    # On at least one workload the cost model wins clearly (the baselines
    # still respect per-task feasibility, which bounds how badly they can
    # do — the win comes from communication-aware device choice).
    gains = [
        min(row["round-robin"], row["random"]) / row["HEFT (cost model)"]
        for row in results.values()
    ]
    assert max(gains) > 1.3
    # And the worst baseline pick is far worse than HEFT somewhere.
    worst_gains = [
        max(row["round-robin"], row["random"]) / row["HEFT (cost model)"]
        for row in results.values()
    ]
    assert max(worst_gains) > 2.0
