"""F2b — the hospital job as a continuous stream (Figure 2's real mode).

The CCTV camera never stops: windows arrive at a fixed rate and the
runtime must sustain them.  We sweep the pipelining depth and the
backpressure policy and report the latency distribution (p50/p95/max)
and throughput — the operating curve of the Figure 2 deployment.
"""

from benchmarks.conftest import once
from repro.apps import StreamExecutor, build_hospital_job
from repro.hardware import Cluster
from repro.metrics import Table, format_ns
from repro.runtime import RuntimeSystem

N_WINDOWS = 16
INTERVAL_NS = 120_000.0


def template(index: int):
    job = build_hospital_job(n_frames=8)
    job.name = f"w{index}"
    return job


def run_config(max_in_flight: int, backpressure: str):
    rts = RuntimeSystem(Cluster.preset("pooled-rack", seed=89))
    executor = StreamExecutor(rts, template, max_in_flight=max_in_flight,
                              backpressure=backpressure)
    stats = executor.run(n_windows=N_WINDOWS, interval_ns=INTERVAL_NS)
    horizon = rts.cluster.engine.now
    assert rts.memory.live_regions() == []
    return stats, horizon


def test_fig2_streaming_pipeline(benchmark, report):
    results = {}

    def experiment():
        for config in ((1, "queue"), (2, "queue"), (4, "queue"), (1, "drop")):
            results[config] = run_config(*config)
        return results

    once(benchmark, experiment)

    table = Table(
        ["pipeline depth", "policy", "done", "dropped", "p50 latency",
         "p95 latency", "windows/s"],
        title="Figure 2b (reproduced): the hospital stream under load",
    )
    for (depth, policy), (stats, horizon) in results.items():
        table.add_row(
            depth, policy, stats.completed, stats.dropped,
            format_ns(stats.percentile(50)), format_ns(stats.percentile(95)),
            f"{stats.throughput_per_s(horizon):,.0f}",
        )
    report("fig2_streaming_pipeline", table.render())

    serial, _ = results[(1, "queue")]
    deep, deep_horizon = results[(4, "queue")]
    # Pipelining absorbs the arrival rate: p95 collapses.
    assert deep.percentile(95) < serial.percentile(95) / 2
    assert deep.completed == N_WINDOWS
    # Dropping bounds latency at the price of coverage.
    dropping, _ = results[(1, "drop")]
    assert dropping.dropped > 0
    assert dropping.percentile(95) < serial.percentile(95)
