"""C5 — §2.3 RTS duty 3: regions are freed when the last owner drops.

Run hundreds of jobs through one runtime and verify the bookkeeping the
paper assigns to the RTS: zero leaked regions, every allocator returns
to a pristine free list, peak memory tracks the live set rather than
the job count, and throughput does not degrade over time.
"""

import pytest

from benchmarks.conftest import once
from repro.apps import build_hospital_job, build_query_job
from repro.hardware import Cluster
from repro.metrics import Table, format_bytes
from repro.runtime import RuntimeSystem

KiB = 1024


def test_claim_lifetime_no_leaks_over_many_jobs(benchmark, report):
    cluster = Cluster.preset("pooled-rack", seed=17)
    rts = RuntimeSystem(cluster)

    n_jobs = 200

    def experiment():
        peaks = []
        for i in range(n_jobs):
            if i % 2 == 0:
                job = build_query_job(n_rows=50_000)
            else:
                job = build_hospital_job(n_frames=8)
            job.name = f"{job.name}-{i}"
            stats = rts.run_job(job)
            assert stats.ok
            peaks.append(max(
                alloc.peak_bytes for alloc in rts.memory.allocators.values()
            ))
        return peaks

    peaks = once(benchmark, experiment)

    live_after = rts.memory.live_regions()
    freed = rts.memory.freed_regions
    worst_fragmentation = max(
        alloc.fragmentation for alloc in rts.memory.allocators.values()
    )
    residual = sum(device.used for device in cluster.memory.values())

    table = Table(["metric", "value"],
                  title=f"C5 (reproduced): lifetime bookkeeping over {n_jobs} jobs")
    table.add_row("jobs executed", n_jobs)
    table.add_row("regions allocated+freed", freed)
    table.add_row("regions leaked", len(live_after))
    table.add_row("bytes still reserved on devices", format_bytes(residual))
    table.add_row("max single-device peak (first 10 jobs)",
                  format_bytes(max(peaks[:10])))
    table.add_row("max single-device peak (last 10 jobs)",
                  format_bytes(max(peaks[-10:])))
    table.add_row("worst allocator fragmentation after drain",
                  f"{worst_fragmentation:.3f}")
    report("claim_lifetime", table.render())

    assert live_after == []
    assert residual == 0
    assert freed > 5 * n_jobs  # several regions per job, all returned
    # Peak memory is set by the live set, not by how many jobs ran.
    assert max(peaks[-10:]) <= max(peaks[:10]) * 1.01
    assert worst_fragmentation == pytest.approx(0.0)
    for alloc in rts.memory.allocators.values():
        alloc.check_invariants()


def test_claim_lifetime_shared_regions_freed_after_last_owner(benchmark, report):
    """Fan-out outputs are shared by N consumers; the region must die
    exactly when the last consumer drops it — never earlier or later."""
    from repro.dataflow import Job, RegionUsage, Task, WorkSpec

    cluster = Cluster.preset("pooled-rack", seed=19,
                             trace_categories={"memory"})
    rts = RuntimeSystem(cluster)

    def experiment():
        job = Job("fanout-lifetime")
        src = job.add_task(Task("src", work=WorkSpec(
            ops=1e4, output=RegionUsage(4 * 1024 * KiB))))
        for i in range(5):
            sink = job.add_task(Task(f"sink{i}", work=WorkSpec(
                ops=1e4 * (i + 1), input_usage=RegionUsage(0, touches=0.2))))
            job.connect(src, sink)
        stats = rts.run_job(job)
        assert stats.ok
        frees = cluster.trace.by_name("free")
        src_out_free = [e for e in frees if "src#out" in str(e.fields["region"])]
        last_sink_end = max(ts.finished_at for name, ts in stats.tasks.items()
                            if name.startswith("sink"))
        return stats, src_out_free, last_sink_end

    stats, src_out_free, last_sink_end = once(benchmark, experiment)
    table = Table(["event", "time (ns)"],
                  title="C5 follow-on: shared-output lifetime")
    table.add_row("last consumer finished", f"{last_sink_end:.0f}")
    for event in src_out_free:
        table.add_row("shared output freed", f"{event.time:.0f}")
    report("claim_lifetime_shared", table.render())

    assert len(src_out_free) == 1  # freed exactly once
    assert src_out_free[0].time >= last_sink_end  # never before last reader
    assert rts.memory.live_regions() == []
