"""C21 — LLM serving: disaggregated prefill/decode + prefix reuse.

The paper's Table 3 puts ML serving on the programming model; the app
class that made memory disaggregation mainstream is LLM inference,
where production engines split the *prefill* phase (compute-bound: the
whole prompt through the model once) from the *decode* phase
(bandwidth-bound: one token at a time) onto different accelerators and
hand the KV cache over between them — exactly the paper's ownership
transfer (Figure 4) between tasks with different property cards.

The claim reproduced here: under a mixed prompt-length stream with an
interactive and a batch tenant,

1. **colocated** serving lets long prefills occupy the accelerators'
   slots and queue *decodes* behind them — interactive decode p95
   inflates with prefill interference;
2. **disaggregating P/D** protects the decode pool: interactive decode
   p95 drops by an order of magnitude, at the price of halving prefill
   capacity (TTFT suffers);
3. **prefix reuse** (refcounted shared KV regions over a prefix trie)
   wins back the prefill capacity that disaggregation spent: hit
   prefixes skip prefill compute, so TTFT p95 and throughput recover
   past the colocated baseline while decode p95 stays protected.

Pass criteria: disaggregated + prefix reuse beats colocated on
interactive decode p95 AND on offered throughput; the prefix hit rate
is positive; every shared KV region drains back to refcount zero.
"""

import pytest

from benchmarks.conftest import once
from repro import connect
from repro.apps import LLMEngine, define_pd_pools
from repro.metrics import Table, format_bytes, format_ns
from repro.workloads import llm_request_stream

#: GPU MATMUL runs at 8000 ops/ns in the calibrated specs, so multi-ms
#: prefills (the regime that motivates P/D splits) need ~1e8 ops/token.
OPS_PER_TOKEN = 1e8
KV_BYTES_PER_TOKEN = 512
N_REQUESTS = 96
#: Admit enough jobs that prefills can actually contend with decodes
#: for device slots — with the default gate of 8 the accelerators
#: never saturate and colocation shows no interference at all.
MAX_CONCURRENT = 32


def request_stream():
    """Mixed prompt/output lengths, Zipf-popular templates, two tenants."""
    return llm_request_stream(
        N_REQUESTS, seed=7,
        prompt_tail_tokens=(64, 512), output_tokens=(4, 16),
        template_blocks=(4, 12),
        mean_interarrival_ns=400_000.0,
        batch_tenant="batch", batch_fraction=0.25,
    )


def serve(requests, disaggregate, prefix_caching):
    with connect("pooled-rack", seed=7,
                 max_concurrent=MAX_CONCURRENT) as session:
        session.register_tenant(
            "chat", weight=2.0, priority="interactive",
            slo_target_ns=20e6,
        )
        session.register_tenant(
            "batch", weight=1.0, priority="batch",
            slo_target_ns=200e6,
        )
        if disaggregate:
            define_pd_pools(session.cluster)
        engine = LLMEngine(
            session, disaggregate=disaggregate,
            prefix_caching=prefix_caching,
            kv_bytes_per_token=KV_BYTES_PER_TOKEN,
            ops_per_token=OPS_PER_TOKEN,
        )
        result = engine.serve(requests)
        leaked = engine.audit()
        engine.shutdown()
        return result, leaked


def chat_decode_p95(result):
    """Interactive-tenant decode p95: the latency the claim protects."""
    samples = sorted(
        r.decode_ns for r in result.tenant_records("chat")
        if r.completed and r.decode_ns is not None
    )
    return result.percentile(samples, 95)


def test_claim_llm_disaggregation(benchmark, report):
    requests = request_stream()
    results = {}

    def experiment():
        for key, disagg, reuse in (
            ("colocated", False, False),
            ("disaggregated", True, False),
            ("disaggregated+reuse", True, True),
        ):
            results[key] = serve(requests, disagg, reuse)
        return results

    once(benchmark, experiment)

    table = Table(
        ["configuration", "done", "hit rate", "KV moved",
         "chat decode p95", "TTFT p95", "e2e p95", "throughput"],
        title="C21 (reproduced): colocated vs disaggregated P/D "
              "vs + prefix reuse",
    )
    for key in ("colocated", "disaggregated", "disaggregated+reuse"):
        result, _leaked = results[key]
        table.add_row(
            key, result.completed, f"{result.hit_rate:.0%}",
            format_bytes(result.kv_bytes_moved),
            format_ns(chat_decode_p95(result)),
            format_ns(result.percentile(result.ttft_ns(), 95)),
            format_ns(result.percentile(result.e2e_ns(), 95)),
            f"{result.throughput_per_s():,.0f}/s",
        )
    report("claim_llm_disagg", table.render())

    coloc, coloc_leaked = results["colocated"]
    disagg, disagg_leaked = results["disaggregated"]
    reuse, reuse_leaked = results["disaggregated+reuse"]

    # Everything completed; nothing was shed at this load.
    for result, _ in results.values():
        assert result.completed == N_REQUESTS
        assert result.shed == 0

    # 1. Colocation inflates interactive decode p95: prefills and
    #    decodes fight for the same slots.
    assert chat_decode_p95(coloc) > 2.0 * chat_decode_p95(disagg), (
        "colocated prefill interference should dominate decode p95"
    )

    # 2. The headline claim: disaggregated P/D + prefix reuse beats
    #    colocated on the interactive tenant's decode p95 ...
    assert chat_decode_p95(reuse) < 0.5 * chat_decode_p95(coloc)
    # ... while *also* clearing the colocated baseline on throughput
    # (prefix hits win back the prefill capacity the split spent).
    assert reuse.throughput_per_s() > coloc.throughput_per_s()
    # Reuse relieves the prefill bottleneck disaggregation created.
    assert (reuse.percentile(reuse.ttft_ns(), 95)
            < disagg.percentile(disagg.ttft_ns(), 95))

    # 3. The cache did real work: positive hit rate, real bytes saved.
    assert reuse.hit_rate > 0.25
    assert reuse.prefix_hit_blocks > 0
    assert coloc.hit_rate == 0.0 and disagg.hit_rate == 0.0

    # 4. Ownership discipline: every shared KV region drained back to
    #    refcount zero — no leaks in any configuration.
    assert coloc_leaked == {} and disagg_leaked == {} and reuse_leaked == {}
    for result, _ in results.values():
        assert result.leaked == {}


def test_claim_interactive_slo_attainment(benchmark, report):
    """The chat tenant's e2e SLO attainment improves with the split."""
    requests = request_stream()
    results = {}

    def experiment():
        results["colocated"] = serve(requests, False, False)[0]
        results["disaggregated+reuse"] = serve(requests, True, True)[0]
        return results

    once(benchmark, experiment)

    SLO_NS = 20e6  # chat tenant: 20 ms e2e

    def attainment(result):
        chat = [r for r in result.tenant_records("chat") if r.completed]
        if not chat:
            return 0.0
        return sum(r.e2e_ns <= SLO_NS for r in chat) / len(chat)

    table = Table(
        ["configuration", "chat done", "SLO <= 20ms", "chat e2e p95"],
        title="C21b (reproduced): interactive SLO attainment",
    )
    for key, result in results.items():
        chat = [r for r in result.tenant_records("chat") if r.completed]
        p95 = result.percentile(sorted(r.e2e_ns for r in chat), 95)
        table.add_row(key, len(chat), f"{attainment(result):.0%}",
                      format_ns(p95))
    report("claim_llm_slo", table.render())

    assert attainment(results["disaggregated+reuse"]) \
        >= attainment(results["colocated"])
    assert attainment(results["disaggregated+reuse"]) > 0.5
