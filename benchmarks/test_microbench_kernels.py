"""Kernel microbenchmarks: the hot paths of the runtime itself.

Unlike the artifact benches (which run a deterministic simulation once
and report simulated metrics), these measure real wall-clock throughput
of the library's computational kernels with proper pytest-benchmark
repetition: the event engine, the max–min flow solver, the first-fit
allocator, ownership transitions, Reed–Solomon coding, and HEFT
scheduling.
"""

import numpy as np
import pytest

from repro.dataflow import Job, RegionUsage, Task, WorkSpec
from repro.ft.erasure import ReedSolomon
from repro.hardware import Cluster
from repro.memory.allocator import AllocationError, FreeListAllocator
from repro.memory.ownership import OwnershipRecord
from repro.runtime import CostModel, HeftScheduler
from repro.sim import Engine, FlowNetwork, Link

KiB = 1024
MiB = 1024 * KiB


def test_engine_event_throughput(benchmark):
    """Process 10k timeout events through the kernel."""

    def run():
        engine = Engine()

        def ticker():
            for _ in range(10_000):
                yield engine.timeout(1.0)

        engine.process(ticker())
        engine.run()
        return engine.now

    result = benchmark(run)
    assert result == pytest.approx(10_000.0)


def test_flow_network_rebalance_throughput(benchmark):
    """100 staggered flows over a shared bottleneck: each arrival and
    departure triggers a max–min re-solve."""

    def run():
        engine = Engine()
        net = FlowNetwork(engine)
        shared = Link("shared", bandwidth=10.0, latency=5.0)

        def spawn():
            for i in range(100):
                leg = Link(f"leg{i % 7}", bandwidth=5.0, latency=1.0)
                net.transfer([leg, shared], nbytes=1000.0 + i)
                yield engine.timeout(3.0)

        engine.process(spawn())
        engine.run()
        return net.completed_transfers

    completed = benchmark(run)
    assert completed == 100


def test_allocator_throughput(benchmark):
    """Mixed alloc/free churn on one device allocator."""

    def run():
        allocator = FreeListAllocator(capacity=64 * MiB, granularity=64)
        live = []
        for i in range(2000):
            try:
                live.append(allocator.allocate(64 + (i * 977) % 8192))
            except AllocationError:
                pass
            if len(live) > 64:
                live.sort(key=lambda a: a.offset)
                allocator.free(live.pop(i % len(live)))
        for allocation in live:
            allocator.free(allocation)
        return allocator.alloc_count

    count = benchmark(run)
    assert count > 1900


def test_ownership_transition_throughput(benchmark):
    """Transfer chains: the per-edge cost of the ownership model."""

    def run():
        record = OwnershipRecord("t0")
        for i in range(10_000):
            record.transfer(f"t{i}", f"t{i + 1}")
        return record.epoch

    epoch = benchmark(run)
    assert epoch == 10_000


def test_reed_solomon_encode_bandwidth(benchmark):
    """RS(4+2) parity generation over 1 MiB of data."""
    rs = ReedSolomon(4, 2)
    data = np.random.default_rng(0).integers(
        0, 256, (4, 256 * KiB)).astype(np.uint8)

    parity = benchmark(rs.encode, data)
    assert parity.shape == (2, 256 * KiB)


def test_reed_solomon_decode_bandwidth(benchmark):
    """Worst-case decode: two data shards missing."""
    rs = ReedSolomon(4, 2)
    data = np.random.default_rng(1).integers(
        0, 256, (4, 256 * KiB)).astype(np.uint8)
    parity = rs.encode(data)
    shards = {2: data[2], 3: data[3], 4: parity[0], 5: parity[1]}

    recovered = benchmark(rs.decode, shards, 256 * KiB)
    assert np.array_equal(recovered, data)


def test_heft_scheduling_throughput(benchmark):
    """Schedule a 64-task layered DAG onto the pooled rack."""
    cluster = Cluster.preset("pooled-rack")
    costmodel = CostModel(cluster)

    def build():
        job = Job("wide")
        previous = []
        for layer in range(8):
            current = []
            for i in range(8):
                work = WorkSpec(ops=1e5 * (1 + i),
                                output=RegionUsage(1 * MiB),
                                input_usage=RegionUsage(0) if previous else None)
                current.append(job.add_task(Task(f"t{layer}-{i}", work=work)))
            for up in previous:
                for down in current:
                    if (up.id + down.id) % 3 == 0:
                        job.connect(up, down)
            # Guarantee input edges for every task in this layer.
            for down in current:
                if previous and not down.upstream():
                    job.connect(previous[0], down)
            previous = current
        return job

    job = build()

    assignment = benchmark(HeftScheduler().assign, job, cluster, costmodel)
    assert len(assignment) == 64


def test_address_translation_throughput(benchmark):
    """Page-table translation: the OS layer's hot path."""
    from repro.memory.addressing import VirtualAddressSpace
    from repro.memory.manager import MemoryManager
    from repro.memory.properties import MemoryProperties

    cluster = Cluster.preset("table1-host")
    manager = MemoryManager(cluster)
    vas = VirtualAddressSpace("bench")
    addresses = []
    for i in range(64):
        region = manager.allocate_on(
            "dram0", 64 * KiB, MemoryProperties(), owner="b")
        addresses.append(vas.map(region))

    def run():
        total = 0
        for base in addresses:
            for offset in (0, 4096, 40_000):
                total += vas.translate(base + offset).physical_offset
        return total

    assert benchmark(run) > 0


def test_coherence_model_throughput(benchmark):
    """Per-access coherence accounting on a heavily shared region."""
    from repro.memory.coherence import CoherenceModel
    from repro.memory.manager import MemoryManager
    from repro.memory.properties import MemoryProperties

    cluster = Cluster.preset("pooled-rack")
    manager = MemoryManager(cluster)
    model = CoherenceModel(cluster)
    region = manager.allocate_on(
        "dram-pool0", 64 * KiB, MemoryProperties(), owner="t0")
    region.ownership.share("t0", [f"t{i}" for i in range(1, 4)])
    observers = ["cpu1", "cpu2", "gpu1", "gpu2"]

    def run():
        total = 0.0
        for i in range(2000):
            observer = observers[i % 4]
            total += model.access_penalty(region, observer, is_write=(i % 3 == 0))
        return total

    assert benchmark(run) > 0


def test_zipf_sampling_throughput(benchmark):
    """Drawing 100k zipfian keys (the tiering benches' workload source)."""
    import numpy as np

    from repro.workloads import ZipfSampler

    sampler = ZipfSampler(100_000, skew=0.99)
    rng = np.random.default_rng(0)

    draws = benchmark(sampler.sample, rng, 100_000)
    assert len(draws) == 100_000


def test_end_to_end_job_rate(benchmark):
    """Whole-runtime throughput: one small job per call."""
    from repro.runtime import RuntimeSystem

    cluster = Cluster.preset("pooled-rack", seed=3)
    rts = RuntimeSystem(cluster)
    counter = [0]

    def run():
        job = Job(f"rate-{counter[0]}")
        counter[0] += 1
        a = job.add_task(Task("a", work=WorkSpec(
            ops=1e4, output=RegionUsage(1 * MiB))))
        b = job.add_task(Task("b", work=WorkSpec(
            ops=1e4, input_usage=RegionUsage(0))))
        job.connect(a, b)
        return rts.run_job(job).ok

    assert benchmark(run)
    assert rts.memory.live_regions() == []
