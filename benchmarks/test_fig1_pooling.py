"""F1 — reproduce Figure 1: compute-centric vs memory-centric pooling.

Figure 1 is the paper's economic argument: per-node memory is
provisioned for each node's *own* peak, but peaks rarely coincide —
cloud memory utilization averages 50–65% and memory is 40–50% of
server/rack cost.  We generate bursty per-node demand series (Borg-like
diurnal + noise), then compare

* **static** (Fig. 1a): every node provisions its own peak, and
* **pooled** (Fig. 1b): one pool provisions the peak of the *summed*
  demand,

reporting average utilization under static provisioning and the DRAM
savings from pooling.  Pass criteria: static utilization lands in the
~45–70% band the paper quotes, pooling saves ~15–50%.
"""

import numpy as np

from benchmarks.conftest import once, run_sim
from repro.hardware import Cluster
from repro.metrics import (
    Table,
    format_bytes,
    required_provisioning,
    stranded_bytes,
)

GiB = 1024 ** 3


def make_demand_series(rng, n_nodes=16, n_steps=512):
    """Per-node demand: a base load plus node-specific off-phase bursts."""
    t = np.arange(n_steps)
    series = {}
    for node in range(n_nodes):
        base = rng.uniform(30, 45) * GiB
        phase = rng.uniform(0, 2 * np.pi)
        diurnal = 0.5 + 0.5 * np.sin(2 * np.pi * t / n_steps + phase)
        burst_mask = rng.random(n_steps) < 0.02
        bursts = burst_mask * rng.uniform(15, 30) * GiB
        noise = rng.normal(0, 2 * GiB, n_steps)
        demand = np.clip(base + 20 * GiB * diurnal + bursts + noise, 0, None)
        series[f"node{node}"] = demand
    return series


def test_fig1_pooling_economics(benchmark, report):
    rng = np.random.default_rng(1234)
    series = make_demand_series(rng)

    def experiment():
        return required_provisioning(series, headroom=0.1)

    comparison = once(benchmark, experiment)

    static_caps = {n: float(np.max(s)) * 1.1 for n, s in series.items()}
    utilizations = [
        float(np.mean(s)) / static_caps[n] for n, s in series.items()
    ]
    avg_util = float(np.mean(utilizations))

    # Stranding at the moment of the globally worst single-node burst.
    worst_step = int(np.argmax(np.max(np.stack(list(series.values())), axis=0)))
    demands_now = {n: int(s[worst_step]) for n, s in series.items()}
    stranded = stranded_bytes(
        demands_now, {n: int(c * 0.8) for n, c in static_caps.items()}
    )

    table = Table(["metric", "value"],
                  title="Figure 1 (reproduced): static vs pooled provisioning, "
                        "16 nodes, 512 timesteps")
    table.add_row("static provisioning (sum of per-node peaks)",
                  format_bytes(comparison.static_bytes))
    table.add_row("pooled provisioning (peak of summed demand)",
                  format_bytes(comparison.pooled_bytes))
    table.add_row("DRAM saved by pooling",
                  f"{comparison.savings_fraction:.1%}")
    table.add_row("avg memory utilization under static provisioning",
                  f"{avg_util:.1%}  (paper quotes 50-65%)")
    table.add_row("stranded demand at worst burst (20% tighter nodes)",
                  format_bytes(stranded))
    report("fig1_pooling", table.render())

    assert 0.45 <= avg_util <= 0.70, avg_util
    assert 0.15 <= comparison.savings_fraction <= 0.55, comparison.savings_fraction
    assert stranded > 0


def test_fig1_pooled_rack_serves_what_strands_statically(benchmark, report):
    """Run the same over-peak burst against both presets: the
    compute-centric node runs out of local DRAM while the pooled rack
    absorbs the burst in the shared pool."""
    from repro.memory.manager import MemoryManager, PlacementError
    from repro.memory.properties import MemoryProperties
    from repro.runtime import CostModel, DeclarativePlacement, PlacementRequest

    burst = 24  # regions of 1 GiB against a 16 GiB local DRAM

    def experiment():
        outcomes = {}
        # Fig. 1a: server1's jobs may only use server1's DRAM.
        centric = Cluster.preset("compute-centric", dram_per_node=16 * GiB)
        manager = MemoryManager(centric)
        placed = 0
        for _i in range(burst):
            try:
                manager.allocate_on("dram1", 1 * GiB, MemoryProperties(),
                                    owner="burst")
                placed += 1
            except PlacementError:
                break
        outcomes["compute-centric (local DRAM only)"] = placed

        # Fig. 1b: the same burst goes to the pool.
        pooled = Cluster.preset("pooled-rack")
        manager = MemoryManager(pooled)
        policy = DeclarativePlacement(pooled, manager, CostModel(pooled))
        placed = 0
        for i in range(burst):
            try:
                policy.place(PlacementRequest(
                    size=1 * GiB, properties=MemoryProperties(),
                    owner="burst", observers=("cpu1",), name=f"burst{i}",
                ))
                placed += 1
            except PlacementError:
                break
        outcomes["pooled rack (shared pool)"] = placed
        return outcomes

    outcomes = once(benchmark, experiment)
    table = Table(["architecture", "1 GiB burst allocations served (of 24)"],
                  title="Figure 1 (behavioural): burst absorption")
    for arch, served in outcomes.items():
        table.add_row(arch, served)
    report("fig1_burst", table.render())

    assert outcomes["compute-centric (local DRAM only)"] < burst
    assert outcomes["pooled rack (shared pool)"] == burst
