"""C8 — §3 Challenge 8(3): surviving faults without restarting from zero.

The paper: failures "force applications to stop and restart" unless the
programming model provides fault tolerance.  This bench quantifies the
options on a pipeline that crashes at its last stage:

* no fault tolerance → the job is simply lost;
* retry from scratch → works, pays the full pipeline again;
* checkpoint-pruned retry (``persistent=True`` stage as a checkpoint) →
  works, pays only the suffix after the checkpoint.

Pass criteria: both resilient modes succeed, and checkpointing recovers
in less simulated time than the full rerun wastes.
"""

import pytest

from benchmarks.conftest import once
from repro.dataflow import Job, RegionUsage, Task, TaskProperties, WorkSpec
from repro.hardware import Cluster
from repro.metrics import Table, format_ns
from repro.runtime import ResilientRuntime, RuntimeSystem

KiB = 1024
MiB = 1024 * KiB


def build_pipeline(checkpointed: bool, fuse: list):
    """ingest -> heavy transform (optionally persistent) -> finalize.

    ``finalize`` detonates while ``fuse`` is non-empty.
    """

    def exploding(ctx):
        yield from ctx.sleep(1000.0)
        if fuse:
            fuse.pop()
            raise RuntimeError("node fault during finalize")
        yield from ctx.compute_ops(1e5)

    def factory():
        job = Job("etl")
        ingest = job.add_task(Task("ingest", work=WorkSpec(
            ops=1e6, output=RegionUsage(64 * MiB))))
        # Compute-heavy transform: recomputing it dwarfs the cost of
        # persisting + restoring its 32 MiB result.  (With a cheap,
        # memory-bound transform the trade-off flips — restoring from
        # slow persistent media can cost as much as recomputing.)
        transform = job.add_task(Task(
            "transform",
            work=WorkSpec(ops=5e8, input_usage=RegionUsage(0, touches=1.0),
                          scratch=RegionUsage(16 * MiB, touches=2.0),
                          output=RegionUsage(32 * MiB)),
            properties=TaskProperties(persistent=checkpointed),
        ))
        finalize = job.add_task(Task(
            "finalize", fn=exploding,
            work=WorkSpec(input_usage=RegionUsage(0)),
        ))
        job.connect(ingest, transform)
        job.connect(transform, finalize)
        return job

    return factory


def run_mode(mode: str):
    cluster = Cluster.preset("pooled-rack", seed=41)
    rts = RuntimeSystem(cluster)
    fuse = [1]  # one transient fault
    if mode == "none":
        try:
            rts.run_job(build_pipeline(False, fuse)())
            return {"outcome": "completed", "total": cluster.engine.now}
        except RuntimeError:
            return {"outcome": "job lost", "total": cluster.engine.now}
    resilient = ResilientRuntime(rts, max_attempts=3)
    checkpointed = mode == "checkpointed retry"
    stats = resilient.run_job(build_pipeline(checkpointed, fuse))
    return {
        "outcome": "completed" if stats.ok else "failed",
        "total": cluster.engine.now,
        "wasted": resilient.stats.wasted_time_ns,
        "retry_makespan": stats.makespan,
        "skipped": resilient.stats.tasks_skipped_by_checkpoints,
    }


def test_claim_resilience_modes(benchmark, report):
    results = {}

    def experiment():
        for mode in ("none", "full retry", "checkpointed retry"):
            results[mode] = run_mode(mode)
        return results

    once(benchmark, experiment)

    table = Table(
        ["fault-tolerance mode", "outcome", "time to done",
         "retry makespan", "tasks skipped"],
        title="C8 (reproduced): one transient fault at the last stage",
    )
    for mode, r in results.items():
        table.add_row(
            mode, r["outcome"], format_ns(r["total"]),
            format_ns(r.get("retry_makespan", float("nan")))
            if "retry_makespan" in r else "-",
            r.get("skipped", "-"),
        )
    report("claim_resilience", table.render())

    assert results["none"]["outcome"] == "job lost"
    assert results["full retry"]["outcome"] == "completed"
    assert results["checkpointed retry"]["outcome"] == "completed"
    # Lineage truncation: the checkpointed retry skips the prefix and its
    # second attempt is faster than the full rerun's.
    assert results["checkpointed retry"]["skipped"] >= 1
    assert (results["checkpointed retry"]["retry_makespan"]
            < results["full retry"]["retry_makespan"])
    assert (results["checkpointed retry"]["total"]
            < results["full retry"]["total"])


def test_claim_resilience_memory_ft_avoids_rerun_entirely(benchmark, report):
    """The other axis: if the *memory* is fault-tolerant (repro.ft), a
    node crash costs only the repair, not a job retry.  Compare the
    simulated cost of re-running the pipeline vs. erasure-repairing the
    lost bytes."""
    import numpy as np

    from benchmarks.conftest import run_sim
    from repro.ft import ErasureCodedStore, RecoveryOrchestrator
    from repro.memory.manager import MemoryManager

    def experiment():
        cluster = Cluster.preset("far-memory-rack", n_nodes=8, seed=43)
        manager = MemoryManager(cluster)
        store = ErasureCodedStore(
            cluster, manager, [f"far{i}" for i in range(8)],
            home="dram0", k=4, m=2, shard_size=16 * KiB,
        )
        orchestrator = RecoveryOrchestrator(cluster, [store],
                                            detection_delay_ns=10_000.0)
        rng = np.random.default_rng(0)
        for i in range(8):
            run_sim(cluster, store.put(
                f"obj{i}", rng.integers(0, 256, 64 * KiB).astype(np.uint8)))
        t0 = cluster.engine.now
        cluster.crash_node("memnode0")
        cluster.engine.run()
        repair_time = cluster.engine.now - t0

        # Reference: what a full pipeline rerun costs on the same data.
        cluster2 = Cluster.preset("pooled-rack", seed=43)
        rts = RuntimeSystem(cluster2)
        fuse: list = []
        rts.run_job(build_pipeline(False, fuse)())
        rerun_time = cluster2.engine.now
        return repair_time, rerun_time

    repair_time, rerun_time = once(benchmark, experiment)
    table = Table(["recovery strategy", "simulated cost"],
                  title="C8 follow-on: repair memory vs. re-run compute")
    table.add_row("erasure-coded repair (repro.ft)", format_ns(repair_time))
    table.add_row("full pipeline re-run", format_ns(rerun_time))
    report("claim_resilience_ft", table.render())
    assert repair_time < rerun_time
