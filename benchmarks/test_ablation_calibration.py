"""C10 — ablation: statistics-fed cost model (the LingoDB point, §3).

The analytic cost model is exact for solo runs (it shares the access
math with the simulator) but blind to contention.  This bench runs
concurrent query waves, feeding each wave's profiles to the
CalibratedCostModel, and reports the prediction error of the raw vs.
calibrated model per wave.  Pass criteria: raw error stays high and
flat; calibrated error collapses after the first wave; the learned
factors separate bandwidth-bound from latency-bound phases.
"""

from benchmarks.conftest import once
from repro.apps import build_query_job
from repro.hardware import Cluster
from repro.metrics import Profile, Table
from repro.runtime import CalibratedCostModel, RuntimeSystem


def test_ablation_cost_model_calibration(benchmark, report):
    cluster = Cluster.preset("pooled-rack", trace_categories={"profile"})
    rts = RuntimeSystem(cluster)
    model = CalibratedCostModel(cluster)
    waves = []

    def experiment():
        for wave in range(4):
            jobs = [build_query_job(n_rows=200_000) for _ in range(4)]
            for i, job in enumerate(jobs):
                job.name = f"w{wave}j{i}"
            samples0 = model.stats.samples
            raw0 = model.stats.raw_error_sum
            corrected0 = model.stats.corrected_error_sum
            for stats in rts.run_jobs(jobs):
                model.observe(Profile.from_run(cluster, stats), stats)
            n = model.stats.samples - samples0
            waves.append((
                (model.stats.raw_error_sum - raw0) / n,
                (model.stats.corrected_error_sum - corrected0) / n,
            ))
        return waves

    once(benchmark, experiment)

    table = Table(
        ["wave (4 concurrent queries)", "raw model error", "calibrated error"],
        title="C10 (ablation): prediction error with statistics feedback",
    )
    for i, (raw, corrected) in enumerate(waves):
        table.add_row(i, f"{raw:.1%}", f"{corrected:.1%}")
    factors = Table(["correction key", "factor"],
                    title="Learned contention factors")
    for key, factor in sorted(model.corrections().items()):
        factors.add_row("/".join(str(k) for k in key[1:]), f"{factor:.2f}x")
    report("ablation_calibration",
           table.render() + "\n\n" + factors.render())

    raw_errors = [raw for raw, _c in waves]
    corrected_errors = [c for _r, c in waves]
    assert min(raw_errors) > 0.25  # the blind model never learns
    assert corrected_errors[-1] < 0.1  # the calibrated one converges
    assert corrected_errors[-1] < raw_errors[-1] / 3

    sequential = [f for key, f in model.corrections().items()
                  if key[-1] == "sequential"]
    random_factors = [f for key, f in model.corrections().items()
                      if key[-1] == "random"]
    assert sequential and max(sequential) > 2.0
    assert random_factors and max(random_factors) < 1.5
