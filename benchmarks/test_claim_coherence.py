"""C12 — §2.2(2): why ownership matters — coherence is not free.

The paper's justification for explicit ownership: exclusively-owned
memory "can relax consistency guarantees and memory ordering", while
shared ownership requires cache coherence.  Two measurements:

1. microscopic — alternating writers on one shared region (the latch /
   ping-pong pattern) vs. the same writes to exclusive regions;
2. architectural — passing data down a pipeline by exclusive ownership
   transfer vs. having all stages communicate through one big shared
   region: the ownership design is faster *because* it keeps regions
   exclusive.
"""

import pytest

from benchmarks.conftest import once, run_sim
from repro.hardware import Cluster
from repro.memory.coherence import CoherenceModel
from repro.memory.interfaces import AccessMode, AccessPattern, Accessor
from repro.memory.manager import MemoryManager
from repro.memory.properties import MemoryProperties
from repro.metrics import Table, format_ns

KiB = 1024
MiB = 1024 * KiB


def test_claim_coherence_ping_pong(benchmark, report):
    results = {}

    def experiment():
        cluster = Cluster.preset("pooled-rack", seed=79)
        mm = MemoryManager(cluster)
        model = CoherenceModel.for_cluster(cluster)

        def writes(accessors, rounds):
            def gen():
                for _round in range(rounds):
                    for accessor in accessors:
                        yield from accessor.write(
                            64, pattern=AccessPattern.RANDOM,
                            mode=AccessMode.SYNC, access_size=64,
                        )

            t0 = cluster.engine.now
            run_sim(cluster, gen())
            return cluster.engine.now - t0

        for n_sharers, observers in (
            (1, ["cpu1"]),
            (2, ["cpu1", "cpu2"]),
            (4, ["cpu1", "cpu2", "gpu1", "gpu2"]),
        ):
            owners = [f"t{i}" for i in range(n_sharers)]
            region = mm.allocate_on(
                "dram-pool0", 64 * KiB, MemoryProperties(), owner=owners[0]
            )
            if n_sharers > 1:
                mm.share(region, owners[0], owners[1:])
            accessors = [
                Accessor(cluster, region.handle(owner), observer)
                for owner, observer in zip(owners, observers)
            ]
            # Warm the sharer set (each observer reads once).
            def warm():
                for accessor in accessors:
                    yield from accessor.read(
                        64, pattern=AccessPattern.RANDOM, access_size=64)

            run_sim(cluster, warm())
            duration = writes(accessors, rounds=32 // n_sharers)
            results[n_sharers] = duration / 32.0  # per write
        results["invalidations"] = model.invalidations
        return results

    once(benchmark, experiment)

    table = Table(["writers sharing one region", "mean cost per write"],
                  title="C12 (reproduced): the price of shared ownership")
    for n in (1, 2, 4):
        table.add_row(n, format_ns(results[n]))
    report("claim_coherence", table.render())

    assert results[1] < results[2] < results[4]
    # The write itself costs ~230 ns of fabric/media; coherence adds the
    # rest — a ~1.7x tax at 4 sharers on this topology.
    assert results[4] > 1.6 * results[1]
    assert results["invalidations"] > 0


def test_claim_coherence_ownership_transfer_vs_shared_buffer(benchmark, report):
    """Architectural consequence: a pipeline that *moves* ownership
    outruns one where every stage reads/writes a common shared buffer."""
    from repro.dataflow import Job, RegionUsage, Task, WorkSpec
    from repro.runtime import RuntimeSystem

    STAGES = 5
    PAYLOAD = 8 * MiB

    def experiment():
        outcomes = {}

        # (a) ownership-transfer pipeline: the runtime's native style.
        cluster = Cluster.preset("pooled-rack", seed=80)
        rts = RuntimeSystem(cluster)
        job = Job("owned")
        previous = None
        for i in range(STAGES):
            task = job.add_task(Task(f"s{i}", work=WorkSpec(
                ops=1e4,
                input_usage=RegionUsage(0) if previous else None,
                output=RegionUsage(PAYLOAD) if i < STAGES - 1 else None,
            )))
            if previous is not None:
                job.connect(previous, task)
            previous = task
        outcomes["ownership transfer"] = rts.run_job(job).makespan

        # (b) shared-buffer pipeline: stages hand data through one
        # jointly-owned region (write then read, with coherence).
        cluster2 = Cluster.preset("pooled-rack", seed=80)
        mm = MemoryManager(cluster2)
        owners = [f"s{i}" for i in range(STAGES)]
        shared = mm.allocate_on(
            "dram-pool0", PAYLOAD, MemoryProperties(), owner=owners[0]
        )
        mm.share(shared, owners[0], owners[1:])
        observers = ["cpu1", "cpu2", "gpu1", "gpu2", "cpu1"]

        def staged():
            compute = cluster2.compute["cpu1"]
            for i in range(STAGES):
                accessor = Accessor(
                    cluster2, shared.handle(owners[i]), observers[i]
                )
                if i > 0:
                    yield from accessor.read(PAYLOAD)
                yield cluster2.engine.timeout(
                    compute.compute_time(
                        list(compute.spec.throughput)[0], 1e4)
                )
                if i < STAGES - 1:
                    yield from accessor.write(PAYLOAD)

        t0 = cluster2.engine.now
        run_sim(cluster2, staged())
        outcomes["shared buffer"] = cluster2.engine.now - t0
        return outcomes

    outcomes = once(benchmark, experiment)
    table = Table(["pipeline data plane", "makespan"],
                  title="C12 follow-on: ownership transfer vs shared buffer")
    for name, duration in outcomes.items():
        table.add_row(name, format_ns(duration))
    report("claim_coherence_pipeline", table.render())
    assert outcomes["ownership transfer"] < outcomes["shared buffer"]
