"""C3 — §2.2(3): access interfaces should match memory distance.

The paper: "In the case of near memory ... we would prefer synchronous
loads/stores ... If memory is far away, we should switch to an
asynchronous interface that fetches memory in the background."

We issue the same random-access workload through both interfaces
against every sync-capable tier and report the async speedup as a
series over distance.  Pass criteria: sync is fine (speedup ≈ 1) on
near DRAM, async wins increasingly on CXL and beyond, and async is the
only option for NIC-attached memory.
"""

import pytest

from benchmarks.conftest import once, run_sim
from repro.hardware import Cluster
from repro.memory.interfaces import (
    AccessMode,
    AccessPattern,
    Accessor,
    InterfaceError,
)
from repro.memory.manager import MemoryManager
from repro.memory.properties import MemoryProperties
from repro.metrics import Table, format_ns

KiB = 1024
MiB = 1024 * KiB

TIERS = ["dram0", "cxl0", "far0"]


def measure(cluster, manager, name, mode):
    region = manager.allocate_on(name, 2 * MiB, MemoryProperties(), owner="b")
    accessor = Accessor(cluster, region.handle("b"), "cpu0")
    t0 = cluster.engine.now
    run_sim(cluster, accessor.read(
        64 * 2048, pattern=AccessPattern.RANDOM, access_size=64, mode=mode,
    ))
    duration = cluster.engine.now - t0
    manager.free(region)
    return duration


def test_claim_sync_vs_async_interfaces(benchmark, report):
    cluster = Cluster.preset("table1-host")
    manager = MemoryManager(cluster)
    results = {}

    def experiment():
        for name in TIERS:
            try:
                sync_time = measure(cluster, manager, name, AccessMode.SYNC)
            except InterfaceError:
                sync_time = None
            async_time = measure(cluster, manager, name, AccessMode.ASYNC)
            results[name] = (sync_time, async_time)
        return results

    once(benchmark, experiment)

    table = Table(
        ["tier", "sync (2048 x 64B random)", "async (qd=16)", "async speedup"],
        title="C3 (reproduced): interface choice vs. memory distance",
    )
    for name in TIERS:
        sync_time, async_time = results[name]
        table.add_row(
            name,
            format_ns(sync_time) if sync_time is not None else "rejected (Table 1)",
            format_ns(async_time),
            f"{sync_time / async_time:.1f}x" if sync_time is not None else "-",
        )
    report("claim_async", table.render())

    # Near memory: sync is the right default; async gains are bounded by
    # the device itself, and the paper's point is it is not *needed*.
    dram_sync, dram_async = results["dram0"]
    cxl_sync, cxl_async = results["cxl0"]
    assert results["far0"][0] is None  # sync load/store impossible (Table 1)
    # Async hides more latency the farther the memory is; for DRAM the
    # explicit interface's software overhead makes it pointless.
    assert cxl_sync / cxl_async > dram_sync / dram_async
    assert cxl_sync / cxl_async > 2.0
    assert dram_sync / dram_async < 1.5


def test_claim_async_throughput_crossover(benchmark, report):
    """Accelerator-utilization view (the paper's motivation): total time
    for interleaved compute + far-memory access drops once the interface
    lets fetches overlap; for near memory the difference is noise."""
    cluster = Cluster.preset("table1-host")
    manager = MemoryManager(cluster)

    def workload(memory_name, mode):
        region = manager.allocate_on(memory_name, 1 * MiB,
                                     MemoryProperties(), owner="b")
        accessor = Accessor(cluster, region.handle("b"), "cpu0")
        cpu = cluster.compute["cpu0"]

        def phase():
            for _round in range(8):
                yield from accessor.read(
                    64 * 128, pattern=AccessPattern.RANDOM, mode=mode,
                )
                yield from cpu.execute(
                    list(cpu.spec.throughput)[0], 8.0 * 1000,
                )

        t0 = cluster.engine.now
        run_sim(cluster, phase())
        manager.free(region)
        return cluster.engine.now - t0

    def experiment():
        return {
            ("dram0", "sync"): workload("dram0", AccessMode.SYNC),
            ("dram0", "async"): workload("dram0", AccessMode.ASYNC),
            ("cxl0", "sync"): workload("cxl0", AccessMode.SYNC),
            ("cxl0", "async"): workload("cxl0", AccessMode.ASYNC),
        }

    results = once(benchmark, experiment)
    table = Table(["tier", "sync pipeline", "async pipeline", "gain"],
                  title="C3 follow-on: compute/fetch interleaving")
    for tier in ("dram0", "cxl0"):
        sync_time = results[(tier, "sync")]
        async_time = results[(tier, "async")]
        table.add_row(tier, format_ns(sync_time), format_ns(async_time),
                      f"{sync_time / async_time:.2f}x")
    report("claim_async_pipeline", table.render())

    gain_dram = results[("dram0", "sync")] / results[("dram0", "async")]
    gain_cxl = results[("cxl0", "sync")] / results[("cxl0", "async")]
    assert gain_cxl > gain_dram
    assert gain_dram == pytest.approx(1.0, abs=0.6)
