"""C4 — §3 Challenge 8: fault-tolerant far memory, replication vs
erasure coding (Carbink, OSDI '22).

Store the same object set under 3-way replication, RS(4+2) erasure
coding, and RAID-5-style striping on an 8-node far-memory rack; crash a
node; let the orchestrator repair.  Pass criteria (Carbink's trade-off):

* erasure coding's memory overhead ≈ 1.5x vs replication's 3x,
* replication repairs with less traffic and faster,
* all schemes remain byte-exact after the crash,
* a second simultaneous crash is survived by RS(4+2) and 3-replication.
"""

import numpy as np
import pytest

from benchmarks.conftest import once, run_sim
from repro.ft import ErasureCodedStore, RecoveryOrchestrator, ReplicatedStore, StripedStore
from repro.hardware import Cluster
from repro.memory.manager import MemoryManager
from repro.metrics import Table, format_bytes, format_ns

KiB = 1024
FARS = [f"far{i}" for i in range(8)]
N_OBJECTS = 16
OBJ_BYTES = 64 * KiB  # exactly one RS(4+2) span (4 x 16 KiB data shards)


def build_store(kind):
    cluster = Cluster.preset("far-memory-rack", n_nodes=8, seed=21)
    manager = MemoryManager(cluster)
    if kind == "3-way replication":
        store = ReplicatedStore(cluster, manager, FARS, home="dram0", copies=3)
    elif kind == "RS(4+2) erasure coding":
        store = ErasureCodedStore(cluster, manager, FARS, home="dram0",
                                  k=4, m=2, shard_size=16 * KiB)
    else:
        store = StripedStore(cluster, manager, FARS[:6], home="dram0",
                             page_size=16 * KiB, parity=True)
    orchestrator = RecoveryOrchestrator(cluster, [store],
                                        detection_delay_ns=10_000.0)
    return cluster, store, orchestrator


def fill(cluster, store):
    rng = np.random.default_rng(33)
    objects = {}
    for i in range(N_OBJECTS):
        data = rng.integers(0, 256, OBJ_BYTES).astype(np.uint8)
        run_sim(cluster, store.put(f"obj{i}", data))
        objects[f"obj{i}"] = data
    return objects


def verify(cluster, store, objects):
    return all(
        np.array_equal(run_sim(cluster, store.get(name)), data)
        for name, data in objects.items()
    )


def test_claim_ft_replication_vs_erasure(benchmark, report):
    schemes = ["3-way replication", "RS(4+2) erasure coding",
               "striping + parity (5+1)"]
    results = {}

    def experiment():
        for scheme in schemes:
            cluster, store, orchestrator = build_store(scheme)
            objects = fill(cluster, store)
            overhead = store.memory_overhead()
            write_traffic = store.bytes_written
            t_filled = cluster.engine.now

            cluster.crash_node("memnode0")
            cluster.engine.run()  # detection + repair
            repair_wall = cluster.engine.now - t_filled
            intact = verify(cluster, store, objects)
            results[scheme] = {
                "overhead": overhead,
                "write_traffic": write_traffic,
                "repair_traffic": store.repair_bytes,
                "repair_time": orchestrator.stats.total_repair_time_ns,
                "repair_wall": repair_wall,
                "intact": intact,
            }
        return results

    once(benchmark, experiment)

    table = Table(
        ["scheme", "memory overhead", "write traffic", "repair traffic",
         "repair time", "intact"],
        title="C4 (reproduced): fault-tolerant far memory after one node crash",
    )
    for scheme in schemes:
        r = results[scheme]
        table.add_row(
            scheme, f"{r['overhead']:.2f}x", format_bytes(r["write_traffic"]),
            format_bytes(r["repair_traffic"]), format_ns(r["repair_time"]),
            "yes" if r["intact"] else "NO",
        )
    report("claim_ft", table.render())

    repl = results["3-way replication"]
    ec = results["RS(4+2) erasure coding"]
    assert repl["intact"] and ec["intact"]
    assert results["striping + parity (5+1)"]["intact"]
    # Carbink's headline: EC ~halves memory overhead...
    assert repl["overhead"] == pytest.approx(3.0, rel=0.05)
    assert ec["overhead"] == pytest.approx(1.5, rel=0.2)
    # ...at the price of reconstruction bandwidth.
    assert ec["repair_traffic"] > repl["repair_traffic"]
    assert ec["repair_time"] > repl["repair_time"]


def test_claim_ft_survives_m_failures_not_more(benchmark, report):
    from repro.ft.erasure import DataLoss

    def experiment():
        outcomes = {}
        for crashes in (1, 2, 3):
            cluster, store, _orch = build_store("RS(4+2) erasure coding")
            objects = fill(cluster, store)
            span = store.spans[0]
            for node_index in range(crashes):
                cluster.crash_node(
                    cluster.node_of(span.devices[node_index])
                )
            store.note_device_failures()
            try:
                ok = verify(cluster, store, objects)
                outcomes[crashes] = "intact" if ok else "corrupt"
            except DataLoss:
                outcomes[crashes] = "data loss"
        return outcomes

    outcomes = once(benchmark, experiment)
    table = Table(["simultaneous node crashes", "RS(4+2) outcome"],
                  title="C4 follow-on: durability boundary")
    for crashes, outcome in outcomes.items():
        table.add_row(crashes, outcome)
    report("claim_ft_boundary", table.render())

    assert outcomes[1] == "intact"
    assert outcomes[2] == "intact"
    assert outcomes[3] == "data loss"  # m=2 by construction
