"""In-flight recovery claim — §3 Challenge 8(3), the runtime half.

``test_claim_resilience`` covers the *job-level* answer (retry, prune
with checkpoints).  This bench quantifies the layer below it: with the
health monitor, task-level retries/re-placement, and output backups
attached, a multi-task job should survive seeded infrastructure faults
**in flight** — no whole-job re-execution — while the baseline runtime
pays for every fault with a full (or checkpoint-pruned) rerun.

Two scenarios:

* **Seeded fault storm** — the same Poisson crash/restart schedule is
  run against the baseline stack (plain RTS + ResilientRuntime) and the
  recovery stack (HealthMonitor + RecoveryPolicy + OutputBackupStore +
  the same ResilientRuntime as a last resort).  Pass criteria: the
  recovery stack survives at least as many seeds and wastes strictly
  less simulated time on failed attempts.
* **Planned maintenance** — a NODE_RESTART against a busy compute blade
  must drain gracefully: zero failed tasks, one completed drain, and
  the job finishes normally.
"""

import pytest

from benchmarks.conftest import once
from repro.dataflow import Job, RegionUsage, Task, WorkSpec
from repro.ft import OutputBackupStore
from repro.hardware import Cluster
from repro.metrics import Table, format_ns
from repro.runtime import (
    HealthMonitor,
    JobAbandoned,
    RecoveryPolicy,
    ResilientRuntime,
    RuntimeSystem,
)
from repro.sim.faults import FaultKind

KiB = 1024
MiB = 1024 * KiB

SEEDS = range(10)
#: The failure domains the runtime actually lives on: compute blades
#: (whose node-local DRAM/GDDR holds the hot regions) plus the shared
#: memory shelf.  Crashing them loses in-flight regions in both modes.
FAULT_TARGETS = ["blade-cpu1", "blade-cpu2", "blade-gpu1",
                 "blade-gpu2", "mem-shelf"]


def build_job(tag) -> Job:
    """Four-stage pipeline; touches=2.0 so every input read spans two
    passes and a mid-read region loss is always detected."""
    job = Job(f"storm-{tag}")
    previous = None
    for i in range(4):
        task = job.add_task(Task(f"s{i}", work=WorkSpec(
            ops=2e5,
            input_usage=RegionUsage(0, touches=2.0) if previous else None,
            output=RegionUsage(8 * MiB) if i < 3 else None,
            scratch=RegionUsage(2 * MiB) if i % 2 else None,
        )))
        if previous is not None:
            job.connect(previous, task)
        previous = task
    return job


def fault_free_makespan() -> float:
    cluster = Cluster.preset("pooled-rack", seed=0)
    return RuntimeSystem(cluster).run_job(build_job("probe")).makespan


def run_storm(seed: int, horizon: float, with_recovery: bool) -> dict:
    cluster = Cluster.preset("pooled-rack", seed=seed)
    if with_recovery:
        HealthMonitor(cluster, detection_delay_ns=5_000.0)
        rts = RuntimeSystem(cluster, recovery=RecoveryPolicy(
            backoff_base_ns=5_000.0, max_task_attempts=4,
        ))
        rts.backups = OutputBackupStore(cluster, rts.memory)
    else:
        rts = RuntimeSystem(cluster)
    resilient = ResilientRuntime(rts, max_attempts=4)

    # The same seeded storm for both modes (streams derive from the
    # cluster seed): crashes take memory nodes out mid-run, planned
    # restarts bounce them (gracefully drained only with the monitor).
    cluster.faults.schedule_poisson(
        FaultKind.NODE_CRASH, FAULT_TARGETS,
        rate_per_ns=3.0 / horizon, horizon=horizon)
    cluster.faults.schedule_poisson(
        FaultKind.NODE_RESTART, FAULT_TARGETS,
        rate_per_ns=3.0 / horizon, horizon=horizon)

    counter = [0]

    def factory():
        counter[0] += 1
        rts.costmodel.invalidate()
        return build_job(f"{seed}-{counter[0]}")

    try:
        stats = resilient.run_job(factory)
        survived = stats.ok
    except JobAbandoned:
        stats = None
        survived = False
    return {
        "survived": survived,
        "job_failures": resilient.stats.failures,
        "wasted_ns": resilient.stats.wasted_time_ns,
        "task_retries": stats.task_retries if stats else 0,
        "replacements": stats.replacements if stats else 0,
        "degraded_reads": stats.degraded_reads if stats else 0,
        "makespan": stats.makespan if stats else float("nan"),
    }


def test_claim_inflight_recovery_survival(benchmark, report):
    results = {}

    def experiment():
        horizon = fault_free_makespan() * 2.0
        for mode, with_recovery in (("baseline", False), ("recovery", True)):
            runs = [run_storm(seed, horizon, with_recovery) for seed in SEEDS]
            results[mode] = {
                "survived": sum(r["survived"] for r in runs),
                "job_failures": sum(r["job_failures"] for r in runs),
                "wasted_ns": sum(r["wasted_ns"] for r in runs),
                "task_retries": sum(r["task_retries"] for r in runs),
                "replacements": sum(r["replacements"] for r in runs),
                "degraded_reads": sum(r["degraded_reads"] for r in runs),
                "inflight_only": sum(
                    1 for r in runs
                    if r["survived"] and r["job_failures"] == 0
                    and r["task_retries"] > 0
                ),
            }
        return results

    once(benchmark, experiment)
    n = len(SEEDS)
    table = Table(
        ["mode", "survived", "job-level retries", "wasted sim time",
         "task retries", "re-placements", "degraded reads"],
        title=f"In-flight recovery under a seeded fault storm ({n} seeds)",
    )
    for mode, r in results.items():
        table.add_row(
            mode, f"{r['survived']}/{n}", r["job_failures"],
            format_ns(r["wasted_ns"]), r["task_retries"],
            r["replacements"], r["degraded_reads"],
        )
    report("claim_inflight_recovery", table.render())

    baseline, recovery = results["baseline"], results["recovery"]
    # The recovery stack must never survive less...
    assert recovery["survived"] >= baseline["survived"]
    # ...and must pay strictly less in thrown-away simulated work.
    assert baseline["wasted_ns"] > 0
    assert recovery["wasted_ns"] < baseline["wasted_ns"]
    # At least one storm was absorbed entirely in flight: the job took
    # faults (task retries happened) yet never re-executed as a whole.
    assert recovery["inflight_only"] >= 1
    # The machinery actually engaged, not just got lucky placements.
    assert recovery["task_retries"] >= 1


def test_claim_planned_restart_drains_without_failures(benchmark, report):
    result = {}

    def experiment():
        cluster = Cluster.preset("pooled-rack", seed=7)
        monitor = HealthMonitor(cluster, detection_delay_ns=5_000.0,
                                drain_poll_ns=5_000.0)
        rts = RuntimeSystem(cluster, recovery=RecoveryPolicy())
        execution = rts.submit(build_job("drain"))
        # Restart the blade actually running the first stage, mid-run.
        victim = cluster.node_of(execution.assignment["s0"])
        cluster.faults.inject_at(10_000.0, FaultKind.NODE_RESTART, victim)
        stats = cluster.engine.run(until=execution.done)
        cluster.engine.run()  # let the drain finish and the node bounce
        result.update(
            ok=stats.ok,
            makespan=stats.makespan,
            node=victim,
            drains=monitor.stats.drains_completed,
            drain_time=monitor.stats.drain_time_ns,
            tasks_failed=cluster.obs.counter("tasks.failed").value,
            task_retries=stats.task_retries,
        )
        return result

    once(benchmark, experiment)
    table = Table(
        ["restarted node", "job", "drains completed", "drain time",
         "failed tasks"],
        title="Planned NODE_RESTART mid-job: graceful drain",
    )
    table.add_row(
        result["node"], "ok" if result["ok"] else "FAILED",
        result["drains"], format_ns(result["drain_time"]),
        result["tasks_failed"],
    )
    report("claim_inflight_drain", table.render())

    assert result["ok"]
    assert result["drains"] == 1
    assert result["tasks_failed"] == 0
    assert result["task_retries"] == 0
