"""Tenancy claim — §3 Challenge 5: QoS isolation on a shared rack.

The paper's runtime must "optimize for concurrently running jobs" on
one disaggregated pool.  This bench makes the QoS layer's claim
concrete and falsifiable:

* **Isolation** — an antagonist tenant floods the rack with heavy
  best-effort jobs.  Under the FIFO baseline the interactive tenant's
  p95 end-to-end latency blows through its SLO; under weighted-fair
  queueing + priority preemption it stays within, *on the same
  arrival trace*.
* **Fair shares** — two saturating tenants weighted 3:1 receive
  admission slots in proportion to their weights (within 10%).
* **Preemption under faults** — the chaos smoke: priority preemption
  and the in-flight recovery machinery run against the same seeded
  fault storm without losing accounting or leaking regions.
"""

import pytest

from benchmarks.conftest import once
from repro.api import connect
from repro.dataflow import Job, RegionUsage, Task, WorkSpec
from repro.metrics import Table, format_ns
from repro.runtime import HealthMonitor, RecoveryPolicy
from repro.sim.faults import FaultKind

KiB = 1024
MiB = 1024 * KiB

#: Interactive end-to-end SLO for the isolation scenario, in sim-ns.
#: Calibrated between the WFQ and FIFO p95s with wide margin: the
#: unloaded interactive job takes ~45us; FIFO queueing behind the
#: antagonist backlog pushes p95 into the millisecond range.
SLO_TARGET_NS = 400_000.0


def pipeline(name: str, ops: float = 1e5, payload: int = 2 * MiB) -> Job:
    job = Job(name)
    a = job.add_task(Task("a", work=WorkSpec(
        ops=ops, output=RegionUsage(payload))))
    b = job.add_task(Task("b", work=WorkSpec(
        ops=ops, input_usage=RegionUsage(0))))
    job.connect(a, b)
    return job


def isolation_trace():
    """12 heavy antagonist jobs at t=0 + 8 periodic interactive jobs."""
    arrivals = [
        (0.0, f"antag{i}", lambda i=i: pipeline(f"antag{i}", ops=5e6),
         "antag")
        for i in range(12)
    ]
    arrivals += [
        (150_000.0 * (i + 1), f"web{i}", lambda i=i: pipeline(f"web{i}"),
         "web")
        for i in range(8)
    ]
    return arrivals


def run_isolation(policy: str, enable_preemption: bool) -> dict:
    session = connect("pooled-rack", seed=53, max_concurrent=4,
                      policy=policy, enable_preemption=enable_preemption)
    session.register_tenant("web", weight=2.0, priority="interactive",
                            slo_target_ns=SLO_TARGET_NS, slo_objective=0.95)
    session.register_tenant("antag", priority="best_effort")
    stats = session.run_trace(isolation_trace())
    web_latencies = sorted(
        j.e2e_latency for j in stats.by_tenant("web")
        if j.e2e_latency is not None
    )
    p95 = web_latencies[max(0, int(len(web_latencies) * 0.95) - 1)]
    return {
        "completed": stats.completed,
        "web_p95": p95,
        "web_worst": web_latencies[-1],
        "preemptions": stats.preemptions,
        "leaks": len(session.rts.memory.live_regions()),
    }


def test_claim_tenancy_isolation(benchmark, report):
    results = {}

    def experiment():
        results["fifo"] = run_isolation("fifo", enable_preemption=False)
        results["wfq"] = run_isolation("wfq", enable_preemption=True)
        return results

    once(benchmark, experiment)

    table = Table(
        ["policy", "jobs done", "web p95", "web worst", "SLO target",
         "preemptions", "leaked regions"],
        title="Tenancy claim: antagonist flood vs interactive SLO",
    )
    for policy, r in results.items():
        table.add_row(policy, r["completed"], format_ns(r["web_p95"]),
                      format_ns(r["web_worst"]), format_ns(SLO_TARGET_NS),
                      r["preemptions"], r["leaks"])
    report("claim_tenancy", table.render())

    for policy, r in results.items():
        assert r["completed"] == 20, policy
        assert r["leaks"] == 0, policy
    # The claim: same trace, same rack — FIFO lets the antagonist
    # break the interactive SLO; WFQ + preemption keeps it.
    assert results["fifo"]["web_p95"] > SLO_TARGET_NS
    assert results["wfq"]["web_p95"] <= SLO_TARGET_NS
    assert results["wfq"]["preemptions"] > 0
    assert results["fifo"]["preemptions"] == 0


def test_claim_tenancy_fair_shares(benchmark, report):
    """Saturated 3:1-weighted tenants split slots 3:1 (within 10%)."""
    outcome = {}

    def experiment():
        session = connect("pooled-rack", seed=59, max_concurrent=1)
        session.register_tenant("gold", weight=3.0)
        session.register_tenant("bronze", weight=1.0)
        arrivals = [
            (0.0, f"g{i}", lambda i=i: pipeline(f"g{i}"), "gold")
            for i in range(20)
        ] + [
            (0.0, f"b{i}", lambda i=i: pipeline(f"b{i}"), "bronze")
            for i in range(20)
        ]
        stats = session.run_trace(arrivals)
        first16 = sorted(stats.jobs, key=lambda j: j.admission_index)[:16]
        outcome["gold_slots"] = sum(1 for j in first16 if j.tenant == "gold")
        outcome["completed"] = stats.completed
        outcome["report"] = session.tenant_report()
        return outcome

    once(benchmark, experiment)

    table = Table(
        ["tenant", "weight", "admitted", "completed", "share",
         "mean queue wait"],
        title="Tenancy claim: saturated weighted-fair shares (3:1)",
    )
    for name in ("gold", "bronze"):
        row = outcome["report"][name]
        table.add_row(name, f"{row['weight']:g}", row["admitted"],
                      row["completed"], f"{row['share']:.0%}",
                      format_ns(row["mean_queue_wait"]))
    report("claim_tenancy_shares", table.render())

    assert outcome["completed"] == 40
    # 3:1 weights over a 16-slot saturated window => 12 gold slots;
    # allow 10% relative slack on the integer grid.
    assert outcome["gold_slots"] == pytest.approx(12, rel=0.10)


def test_claim_tenancy_preemption_under_faults(report):
    """Chaos smoke: preemption composes with in-flight recovery."""
    session = connect(
        "pooled-rack", seed=61, max_concurrent=2,
        recovery=RecoveryPolicy(backoff_base_ns=5_000.0,
                                max_task_attempts=4),
    )
    HealthMonitor(session.cluster, detection_delay_ns=5_000.0)
    session.register_tenant("web", priority="interactive")
    session.register_tenant("bulk", priority="best_effort")
    horizon = 3e6
    session.cluster.faults.schedule_poisson(
        FaultKind.NODE_CRASH, ["blade-cpu1", "blade-gpu1"],
        rate_per_ns=2.0 / horizon, horizon=horizon)
    session.cluster.faults.schedule_poisson(
        FaultKind.NODE_RESTART, ["blade-cpu1", "blade-gpu1"],
        rate_per_ns=2.0 / horizon, horizon=horizon)
    arrivals = [
        (0.0, f"bulk{i}", lambda i=i: pipeline(f"bulk{i}", ops=2e6), "bulk")
        for i in range(4)
    ] + [
        (100_000.0 * (i + 1), f"web{i}", lambda i=i: pipeline(f"web{i}"),
         "web")
        for i in range(6)
    ]
    stats = session.run_trace(arrivals)

    accounted = sum(
        1 for j in stats.jobs
        if j.shed or j.stats is not None or j.execution is not None
    )
    lines = [
        f"jobs: {len(stats.jobs)} accounted: {accounted} "
        f"completed: {stats.completed} shed: {stats.shed}",
        f"preemptions: {stats.preemptions}",
        f"leaked regions: {len(session.rts.memory.live_regions())}",
    ]
    report("claim_tenancy_chaos", "\n".join(lines))

    # Under a fault storm jobs may fail, but every submission must be
    # accounted for, nothing may leak, and the drain must terminate
    # (reaching this line at all is the liveness half of the claim).
    assert accounted == len(stats.jobs) == 10
    assert len(session.rts.memory.live_regions()) == 0
