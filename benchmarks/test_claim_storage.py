"""C2 — §1 claim: "a naive data placement in a heterogeneous storage
landscape can reduce a database system's performance by up to 3x"
(Mosaic, VLDB '20).

We run the Table 3 DBMS query pipeline on the pooled rack under the
declarative runtime and under two naive placements a developer might
ship: 'everything on PMem' (capacity-first) and seeded-random.  Pass
criterion: naive placements cost ~2–4x.
"""

from benchmarks.conftest import once
from repro.apps import build_query_job
from repro.hardware import Cluster
from repro.hardware.spec import MemoryKind
from repro.memory.regions import RegionType
from repro.metrics import Table, format_ns
from repro.runtime import baselines

PMEM_EVERYWHERE = {rt: MemoryKind.PMEM for rt in RegionType}


def run_variant(name: str):
    cluster = Cluster.preset("pooled-rack", seed=13)
    if name == "declarative":
        rts = baselines.declarative(cluster)
    elif name == "all-PMem (capacity-first)":
        rts = baselines.static(cluster, kind_map=PMEM_EVERYWHERE)
    elif name == "random (topology-oblivious)":
        rts = baselines.naive(cluster)
    else:  # pragma: no cover
        raise ValueError(name)
    stats = rts.run_job(build_query_job(n_rows=500_000, selectivity=0.2))
    return stats


def test_claim_naive_storage_placement(benchmark, report):
    variants = ["declarative", "all-PMem (capacity-first)",
                "random (topology-oblivious)"]
    results = {}

    def experiment():
        for variant in variants:
            results[variant] = run_variant(variant)
        return results

    once(benchmark, experiment)

    base = results["declarative"].makespan
    table = Table(
        ["placement policy", "query makespan", "slowdown"],
        title="C2 (reproduced): naive placement on heterogeneous memory "
              "(paper quotes up to 3x)",
    )
    for variant in variants:
        makespan = results[variant].makespan
        table.add_row(variant, format_ns(makespan), f"{makespan / base:.2f}x")
    note = ("note: the paper's 3x (Mosaic) includes a buffer cache that "
            "absorbs part of the penalty;\nour pipeline touches the slow "
            "tier directly, so naive placement costs even more.")
    report("claim_storage", table.render() + "\n" + note)

    pmem_ratio = results["all-PMem (capacity-first)"].makespan / base
    naive_ratio = results["random (topology-oblivious)"].makespan / base
    # Shape check: naive placement costs integer factors (>= the paper's
    # ~3x; the exact factor depends on the missing caching layer).
    assert pmem_ratio >= 2.0, pmem_ratio
    assert naive_ratio >= 1.5, naive_ratio
    assert pmem_ratio > naive_ratio > 1.0


def test_claim_storage_hot_state_dominates(benchmark, report):
    """Ablation of the claim: the gap comes from where the *hot operator
    state* (the random-access hash tables) lives, not the streams."""
    from repro.memory.regions import RegionType

    def run_with_scratch_on(kind):
        cluster = Cluster.preset("pooled-rack", seed=13)
        kind_map = {rt: MemoryKind.DRAM for rt in RegionType}
        kind_map[RegionType.PRIVATE_SCRATCH] = kind
        rts = baselines.static(cluster, kind_map=kind_map)
        return rts.run_job(build_query_job(n_rows=500_000)).makespan

    def experiment():
        return {
            "hash tables in DRAM": run_with_scratch_on(MemoryKind.DRAM),
            "hash tables in CXL-DRAM": run_with_scratch_on(MemoryKind.CXL_DRAM),
            "hash tables in PMem": run_with_scratch_on(MemoryKind.PMEM),
        }

    results = once(benchmark, experiment)
    base = results["hash tables in DRAM"]
    table = Table(["operator-state placement", "makespan", "slowdown"],
                  title="C2 follow-on: only the hot state moved")
    for name, makespan in results.items():
        table.add_row(name, format_ns(makespan), f"{makespan / base:.2f}x")
    report("claim_storage_hotstate", table.render())

    assert results["hash tables in CXL-DRAM"] > base
    assert results["hash tables in PMem"] > results["hash tables in CXL-DRAM"]
