"""F4 — reproduce Figure 4: ownership transfer vs. physical copy.

Figure 4's mechanism: when producer and consumer can both address a
region, "the out becomes the new in" by transferring ownership — a
metadata update — instead of copying bytes.  We run a two-task pipeline
over a payload sweep twice: once with the handover decision enabled
(pooled rack: always addressable → zero-copy) and once with a runtime
whose handover is forced to copy, and report the speedup as the payload
grows.
"""

import pytest

from benchmarks.conftest import once
from repro.dataflow import Job, RegionUsage, Task, WorkSpec
from repro.hardware import Cluster
from repro.metrics import Table, format_bytes, format_ns
from repro.runtime import RuntimeSystem
from repro.runtime.transfer import HandoverManager

MiB = 1024 * 1024
PAYLOADS = [1 * MiB, 8 * MiB, 64 * MiB, 256 * MiB]


class CopyAlwaysHandover(HandoverManager):
    """The traditional data plane: every edge is a physical copy."""

    def can_hand_over(self, region, to_compute):
        return False


def pipeline(payload: int, tag: str) -> Job:
    job = Job(f"handover-{tag}-{payload}")
    producer = job.add_task(Task("produce", work=WorkSpec(
        ops=1e4, output=RegionUsage(payload))))
    consumer = job.add_task(Task("consume", work=WorkSpec(
        ops=1e4, input_usage=RegionUsage(0, touches=0.1))))
    job.connect(producer, consumer)
    return job


def run_once(payload: int, force_copy: bool) -> tuple:
    cluster = Cluster.preset("pooled-rack", seed=3)
    rts = RuntimeSystem(cluster)
    if force_copy:
        rts.handover = CopyAlwaysHandover(
            cluster, rts.memory, rts.costmodel, rts.placement
        )
    stats = rts.run_job(pipeline(payload, "copy" if force_copy else "move"))
    return stats.makespan, stats.zero_copy_handover, stats.bytes_copied


def test_fig4_ownership_transfer_vs_copy(benchmark, report):
    results = {}

    def experiment():
        for payload in PAYLOADS:
            move = run_once(payload, force_copy=False)
            copy = run_once(payload, force_copy=True)
            results[payload] = (move, copy)
        return results

    once(benchmark, experiment)

    table = Table(
        ["payload", "ownership transfer", "physical copy", "speedup",
         "bytes copied (move)", "bytes copied (copy)"],
        title="Figure 4 (reproduced): handover = ownership transfer, not copy",
    )
    speedups = []
    for payload in PAYLOADS:
        (move_time, move_zc, move_bytes), (copy_time, _zc, copy_bytes) = results[payload]
        speedup = copy_time / move_time
        speedups.append(speedup)
        table.add_row(
            format_bytes(payload), format_ns(move_time), format_ns(copy_time),
            f"{speedup:.2f}x", format_bytes(move_bytes), format_bytes(copy_bytes),
        )
    report("fig4_ownership", table.render())

    for payload in PAYLOADS:
        (move_time, move_zc, move_bytes), (copy_time, _, copy_bytes) = results[payload]
        assert move_zc >= 1  # the edge really was an ownership transfer
        assert move_bytes == 0
        assert copy_bytes == pytest.approx(payload)
        assert move_time < copy_time
    # The gap grows with payload: copies scale with bytes, metadata doesn't.
    assert speedups[-1] > speedups[0]
    assert speedups[-1] > 2.0


def test_fig4_fanout_shares_instead_of_copying(benchmark, report):
    """One producer, four consumers: shared ownership means the payload
    is never duplicated, where the copy-based runtime materializes four
    replicas."""

    def build(tag):
        job = Job(f"fanout-{tag}")
        src = job.add_task(Task("src", work=WorkSpec(
            ops=1e4, output=RegionUsage(64 * MiB))))
        for i in range(4):
            sink = job.add_task(Task(f"sink{i}", work=WorkSpec(
                ops=1e4, input_usage=RegionUsage(0, touches=0.05))))
            job.connect(src, sink)
        return job

    def experiment():
        outcomes = {}
        for force_copy in (False, True):
            cluster = Cluster.preset("pooled-rack", seed=5)
            rts = RuntimeSystem(cluster)
            if force_copy:
                rts.handover = CopyAlwaysHandover(
                    cluster, rts.memory, rts.costmodel, rts.placement
                )
            stats = rts.run_job(build("copy" if force_copy else "share"))
            outcomes["copy" if force_copy else "share"] = (
                stats.makespan, stats.bytes_copied,
            )
        return outcomes

    outcomes = once(benchmark, experiment)
    table = Table(["data plane", "makespan", "bytes duplicated"],
                  title="Figure 4 follow-on: fan-out via shared ownership")
    for name, (makespan, copied) in outcomes.items():
        table.add_row(name, format_ns(makespan), format_bytes(copied))
    report("fig4_fanout", table.render())

    assert outcomes["share"][1] == 0
    assert outcomes["copy"][1] == pytest.approx(4 * 64 * MiB)
    assert outcomes["share"][0] < outcomes["copy"][0]
