"""Federation claim — §4: one runtime spanning N disaggregated racks.

The paper's runtime is "fully disaggregated" down to the rack: compute
and memory pools are composed per job, and the programming model must
hide *which* rack serves a request.  This bench makes the federation
layer's claim concrete and falsifiable:

* **Affinity beats round-robin** — three tenants' hot datasets are
  pinned one-per-rack.  On the *same arrival trace*, affinity routing
  sends each session to the rack already holding its data (zero
  cross-rack fetches); round-robin ping-pongs sessions across racks
  and pays for every remote landing in fetch bytes *and* makespan.
* **Drain under load** — the chaos smoke: a rack is elastically
  drained mid-trace.  Routing stops immediately, in-flight work
  finishes, every node goes through the graceful DRAINING machinery,
  and not a single job — including those already on the drained rack —
  fails.
"""

from benchmarks.conftest import once
from repro.api import connect
from repro.dataflow import Job, RegionUsage, Task, WorkSpec
from repro.metrics import Table, format_bytes, format_ns

KiB = 1024
MiB = 1024 * KiB

#: Hot dataset pinned per rack; at 1 byte/ns inter-rack bandwidth each
#: remote fetch costs ~34ms of sim time, dwarfing the ~0.5ms jobs.
DATASET_BYTES = 32 * MiB

SESSIONS = ("sessA", "sessB", "sessC")


def pipeline(name: str, ops: float = 3e5, payload: int = 2 * MiB) -> Job:
    job = Job(name)
    a = job.add_task(Task("a", work=WorkSpec(
        ops=ops, output=RegionUsage(payload))))
    b = job.add_task(Task("b", work=WorkSpec(
        ops=ops, input_usage=RegionUsage(0))))
    job.connect(a, b)
    return job


def federation_trace():
    """18 jobs, six per session in bursts, one arrival every 10us.

    Sessions arrive in blocks (the common case: a tenant's requests
    cluster in time) so a rack-cycling router necessarily sprays each
    block across racks that do not hold its data.
    """
    arrivals = []
    for s_idx, session in enumerate(SESSIONS):
        for j in range(6):
            i = 6 * s_idx + j
            arrivals.append((
                10_000.0 * i, f"{session}-j{j}",
                lambda s=session, j=j: pipeline(f"{s}-j{j}"),
                "web", None, session,
            ))
    return arrivals


def run_federation(routing: str) -> dict:
    fed = connect(
        "pooled-rack", racks=3, seed=71, routing=routing,
        max_concurrent=4, interrack_bandwidth=1.0,
        interrack_latency_ns=2_000.0,
    )
    fed.register_tenant("web", weight=2.0)
    for session, rack in zip(SESSIONS, ("rack0", "rack1", "rack2")):
        fed.pin_dataset(session, rack, DATASET_BYTES)
    handles = fed.run_trace(federation_trace())
    makespan = max(
        h.admitted.finished_at for h in handles if h.admitted is not None
    )
    return {
        "handles": handles,
        "failures": len(fed.job_failures()),
        "makespan": makespan,
        "fetches": fed.router.stats.cross_rack_fetches,
        "bytes": fed.router.stats.cross_rack_bytes,
        "spills": fed.router.stats.spills,
        "sheds": fed.router.stats.sheds,
    }


def test_claim_federation_affinity_beats_round_robin(benchmark, report):
    results = {}

    def experiment():
        results["round_robin"] = run_federation("round_robin")
        results["affinity"] = run_federation("affinity")
        return results

    once(benchmark, experiment)

    table = Table(
        ["routing", "makespan", "cross-rack fetches", "cross-rack bytes",
         "spills", "sheds", "failures"],
        title="Federation claim: affinity vs round-robin, pinned datasets",
    )
    for routing, r in results.items():
        table.add_row(routing, format_ns(r["makespan"]), r["fetches"],
                      format_bytes(r["bytes"]), r["spills"], r["sheds"],
                      r["failures"])
    report("claim_federation", table.render())

    for routing, r in results.items():
        assert len(r["handles"]) == 18, routing
        assert all(h.accounted for h in r["handles"]), routing
        assert r["failures"] == 0, routing
    affinity, rr = results["affinity"], results["round_robin"]
    # The claim: same trace, same racks — affinity lands every session
    # on the rack that already holds its data, so it moves no bytes
    # between racks and finishes sooner.
    assert affinity["fetches"] == 0
    assert rr["fetches"] > 0
    assert affinity["bytes"] < rr["bytes"]
    assert affinity["makespan"] < rr["makespan"]


def test_claim_federation_drain_under_load(report):
    """Chaos smoke: elastic rack removal with zero job-level failures."""
    fed = connect("pooled-rack", racks=2, seed=73, max_concurrent=2,
                  routing="round_robin")
    fed.register_tenant("web")
    drained = {}

    def chaos():
        yield fed.engine.timeout(25_000.0)
        done = fed.drain_rack("rack0")
        drained["at_time"] = fed.engine.now
        drained["rack"] = yield done
        drained["done_time"] = fed.engine.now

    fed.engine.process(chaos(), name="chaos")
    arrivals = [
        (8_000.0 * i, f"j{i}", (lambda i=i: pipeline(f"j{i}")), "web")
        for i in range(12)
    ]
    handles = fed.run_trace(arrivals)

    failures = fed.job_failures()
    lines = [
        f"jobs: {len(handles)} "
        f"accounted: {sum(1 for h in handles if h.accounted)} "
        f"failures: {len(failures)}",
        f"drain: {drained['rack']} requested at "
        f"{format_ns(drained['at_time'])}, completed at "
        f"{format_ns(drained['done_time'])}",
        f"drains completed: {fed.registry.stats.drains_completed}",
    ]
    report("claim_federation_drain", "\n".join(lines))

    # The claim: the drain terminates, the rack leaves the registry,
    # and not one job fails — work already routed to the drained rack
    # runs to completion before its nodes power down.
    assert drained["rack"] == "rack0"
    assert "rack0" not in fed.registry
    assert all(h.accounted for h in handles)
    assert not failures
    assert fed.registry.stats.drains_completed == 1
