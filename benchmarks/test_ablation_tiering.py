"""C7 — ablation: hotness-driven tiering on skewed access streams.

The paper (§3, Challenges 1–3) points to pointer tagging / hotness
tracking (TPP, LeanStore, AIFM) as the mechanism for continuous
placement optimization.  We fill far memory with regions, replay a
zipfian access trace, and compare total access time with the tiering
daemon on vs. off.  Pass criteria: hot regions migrate up, the skewed
trace speeds up by an integer factor, and a uniform trace (no skew)
gains little — the ablation's control.
"""

import numpy as np
import pytest

from benchmarks.conftest import once, run_sim
from repro.hardware import Cluster
from repro.memory.interfaces import AccessPattern, Accessor
from repro.memory.manager import MemoryManager
from repro.memory.pointers import HotnessTracker
from repro.memory.properties import MemoryProperties
from repro.memory.tiering import TieringDaemon, TieringPolicy
from repro.workloads import zipfian_trace, uniform_trace

from repro.metrics import Table, format_ns

KiB = 1024
MiB = 1024 * KiB

N_REGIONS = 32
REGION_BYTES = 2 * MiB


def build_environment(seed=29):
    cluster = Cluster.preset("table1-host", seed=seed)
    manager = MemoryManager(cluster)
    # Constrain the fast tiers so tiering has real capacity pressure:
    # DRAM fits only ~8 of the 32 regions.
    manager.allocators["dram0"] = type(manager.allocators["dram0"])(
        16 * MiB + 64 * KiB, cluster.memory["dram0"].spec.granularity
    )
    regions = [
        manager.allocate_on("far0", REGION_BYTES, MemoryProperties(),
                            owner="workload", name=f"obj{i}")
        for i in range(N_REGIONS)
    ]
    return cluster, manager, regions


def replay(cluster, manager, regions, trace, tracker, tiering: bool):
    daemon = None
    if tiering:
        policy = TieringPolicy(
            cluster, manager, tracker, observer="cpu0",
            hot_bytes_threshold=256.0 * KiB, watermark=0.95,
        )
        daemon = TieringDaemon(policy, interval_ns=200_000.0,
                               max_moves_per_round=2)
        cluster.engine.process(daemon.run())

    def workload():
        total = 0.0
        for event in trace:
            region = regions[event.key]
            if not region.alive:
                continue
            tracker.record(region.id, 64 * KiB, cluster.engine.now)
            owner = next(iter(region.ownership.owners))
            accessor = Accessor(cluster, region.handle(owner), "cpu0")
            duration = yield from accessor.read(
                64 * KiB, pattern=AccessPattern.RANDOM, access_size=256,
            )
            total += duration
        return total

    total = run_sim(cluster, workload())
    if daemon is not None:
        daemon.stop()
    return total, daemon


def test_ablation_tiering(benchmark, report):
    rng = np.random.default_rng(5)
    skewed = zipfian_trace(rng, 600, N_REGIONS, skew=1.2,
                           interarrival_ns=2000.0)
    uniform = uniform_trace(np.random.default_rng(5), 600, N_REGIONS,
                            interarrival_ns=2000.0)
    results = {}

    def experiment():
        for trace_name, trace in (("zipfian (skew=1.2)", skewed),
                                  ("uniform", uniform)):
            for tiering in (False, True):
                cluster, manager, regions = build_environment()
                total, daemon = replay(
                    cluster, manager, regions, trace,
                    HotnessTracker(half_life_ns=5e6), tiering,
                )
                promoted = daemon.promotions if daemon else 0
                results[(trace_name, tiering)] = (total, promoted)
        return results

    once(benchmark, experiment)

    table = Table(
        ["trace", "static (all far)", "with tiering daemon", "speedup",
         "promotions"],
        title="C7 (ablation): TPP-style tiering under skew",
    )
    for trace_name in ("zipfian (skew=1.2)", "uniform"):
        static_total, _ = results[(trace_name, False)]
        tiered_total, promotions = results[(trace_name, True)]
        table.add_row(
            trace_name, format_ns(static_total), format_ns(tiered_total),
            f"{static_total / tiered_total:.2f}x", promotions,
        )
    report("ablation_tiering", table.render())

    zipf_speedup = results[("zipfian (skew=1.2)", False)][0] / \
        results[("zipfian (skew=1.2)", True)][0]
    uniform_speedup = results[("uniform", False)][0] / \
        results[("uniform", True)][0]
    assert results[("zipfian (skew=1.2)", True)][1] >= 4  # hot set promoted
    assert zipf_speedup > 1.5, zipf_speedup
    assert zipf_speedup > uniform_speedup  # skew is where tiering pays


def test_ablation_tiering_respects_capacity(benchmark, report):
    """Promotions never overflow a tier: the daemon observes allocator
    headroom, so capacity accounting stays exact during migration."""

    def experiment():
        rng = np.random.default_rng(11)
        trace = zipfian_trace(rng, 300, N_REGIONS, skew=1.2,
                              interarrival_ns=2000.0)
        cluster, manager, regions = build_environment(seed=31)
        replay(cluster, manager, regions, trace,
               HotnessTracker(half_life_ns=5e6), tiering=True)
        return cluster, manager

    cluster, manager = once(benchmark, experiment)
    table = Table(["device", "used", "capacity"],
                  title="C7 follow-on: capacity accounting after migrations")
    rows = []
    for name in ("cache0", "dram0", "cxl0", "far0"):
        device = cluster.memory[name]
        cap = manager.allocators[name].capacity
        table.add_row(name, device.used, cap)
        rows.append((manager.allocators[name].allocated_bytes, device))
    report("ablation_tiering_capacity", table.render())

    for allocated, device in rows:
        manager.allocators[device.name].check_invariants()
        assert allocated <= manager.allocators[device.name].capacity
