"""C1 — §1 claim: "non-uniform memory accesses (NUMA) can slow down
algorithms by up to 3x" (Li et al., CIDR '13).

On a two-socket box we run the same random-access-heavy task with its
working set on socket-local DRAM vs. on the remote socket's DRAM
(crossing the coherent inter-socket link), sweeping access sizes.  Pass
criterion: the remote/local slowdown lands in the 2–4x band for
latency-bound access patterns.
"""

from benchmarks.conftest import once, run_sim
from repro.hardware import Cluster
from repro.memory.interfaces import AccessMode, AccessPattern, Accessor
from repro.memory.manager import MemoryManager
from repro.memory.properties import MemoryProperties
from repro.metrics import Table, format_bytes, format_ns

MiB = 1024 * 1024


def measure(cluster, manager, memory_name, pattern, nbytes, access_size):
    region = manager.allocate_on(
        memory_name, nbytes, MemoryProperties(), owner="bench"
    )
    accessor = Accessor(cluster, region.handle("bench"), "cpu0")
    t0 = cluster.engine.now
    run_sim(cluster, accessor.read(
        nbytes, pattern=pattern, access_size=access_size, mode=AccessMode.SYNC,
    ))
    duration = cluster.engine.now - t0
    manager.free(region)
    return duration


def test_claim_numa_slowdown(benchmark, report):
    cluster = Cluster.preset("two-socket-numa")
    manager = MemoryManager(cluster)

    cases = [
        ("random 64B (shuffle)", AccessPattern.RANDOM, 4 * MiB, 64),
        ("random 256B", AccessPattern.RANDOM, 4 * MiB, 256),
        ("sequential scan", AccessPattern.SEQUENTIAL, 64 * MiB, 64),
    ]
    results = {}

    def experiment():
        for name, pattern, nbytes, access_size in cases:
            local = measure(cluster, manager, "dram0", pattern, nbytes, access_size)
            remote = measure(cluster, manager, "dram1", pattern, nbytes, access_size)
            results[name] = (local, remote)
        return results

    once(benchmark, experiment)

    table = Table(
        ["workload", "local socket", "remote socket", "NUMA slowdown"],
        title="C1 (reproduced): NUMA remote-socket slowdown "
              "(paper quotes up to 3x)",
    )
    for name, (local, remote) in results.items():
        table.add_row(name, format_ns(local), format_ns(remote),
                      f"{remote / local:.2f}x")
    report("claim_numa", table.render())

    shuffle_local, shuffle_remote = results["random 64B (shuffle)"]
    ratio = shuffle_remote / shuffle_local
    assert 2.0 <= ratio <= 4.0, ratio
    # Sequential scans are bandwidth-bound and hurt less — the reason
    # NUMA-aware *shuffling* was the paper's example.
    seq_local, seq_remote = results["sequential scan"]
    assert seq_remote / seq_local < ratio


def test_claim_numa_aware_placement_avoids_it(benchmark, report):
    """The runtime's fix: the declarative policy simply never places a
    CPU task's scratch on the remote socket while the local one has room."""
    from repro.memory.regions import RegionType, region_properties
    from repro.runtime import CostModel, DeclarativePlacement, PlacementRequest

    cluster = Cluster.preset("two-socket-numa")
    manager = MemoryManager(cluster)
    policy = DeclarativePlacement(cluster, manager, CostModel(cluster))

    def experiment():
        placements = {}
        for observer in ("cpu0", "cpu1"):
            region = policy.place(PlacementRequest(
                size=4 * MiB,
                properties=region_properties(RegionType.PRIVATE_SCRATCH),
                owner=f"t@{observer}", observers=(observer,),
                region_type=RegionType.PRIVATE_SCRATCH,
            ))
            placements[observer] = region.device.name
        return placements

    placements = once(benchmark, experiment)
    table = Table(["task socket", "scratch placed on"],
                  title="C1 follow-on: declarative placement is NUMA-aware")
    for observer, device in placements.items():
        table.add_row(observer, device)
    report("claim_numa_placement", table.render())

    assert placements["cpu0"] == "dram0"
    assert placements["cpu1"] == "dram1"
