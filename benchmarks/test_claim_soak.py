"""C13 — availability soak: stochastic faults against protected memory.

The paper: "planned and unplanned node faults ... are common in data
centers having thousands of interconnected compute and memory devices."
We subject an erasure-coded far-memory store to a Poisson crash/restart
process for a long horizon, with the recovery orchestrator repairing in
the background, and audit every object at the end.  Pass criteria: all
data byte-exact as long as concurrent-failure count stays within the
code's tolerance; repair traffic proportional to crashes; the same soak
against an *unprotected* store loses data.
"""

import numpy as np

from benchmarks.conftest import once, run_sim
from repro.ft import ErasureCodedStore, RecoveryOrchestrator
from repro.hardware import Cluster
from repro.memory.manager import MemoryManager
from repro.memory.properties import MemoryProperties
from repro.memory.region import RegionState
from repro.metrics import Table, format_bytes, format_ns
from repro.sim.faults import FaultKind

KiB = 1024
N_NODES = 10
N_OBJECTS = 12
HORIZON = 50_000_000.0  # 50 ms of simulated rack time
FARS = [f"far{i}" for i in range(N_NODES)]


def crash_restart_schedule(cluster, rate, horizon, restart_after):
    """Poisson crashes, each followed by a restart after a fixed delay."""
    rng = cluster.streams.stream("soak")
    t = 0.0
    crashes = []
    while True:
        t += float(rng.exponential(1.0 / rate))
        if t >= horizon:
            break
        node = f"memnode{int(rng.integers(0, N_NODES))}"
        crashes.append((t, node))
        cluster.faults.inject_at(t, FaultKind.NODE_CRASH, node)
        cluster.faults.inject_at(t + restart_after, FaultKind.NODE_RESTART, node)
    return crashes


def test_claim_soak_erasure_store_survives(benchmark, report):
    results = {}

    def experiment():
        cluster = Cluster.preset("far-memory-rack", n_nodes=N_NODES, seed=101)
        # Soak runs must not grow trace memory without bound: cap every
        # category's ring tightly and let the wrap-around drop counters
        # prove the log stayed bounded under sustained event pressure.
        TRACE_CAP = 256
        cluster.trace.set_capacity(TRACE_CAP)
        manager = MemoryManager(cluster)
        store = ErasureCodedStore(
            cluster, manager, FARS, home="dram0", k=4, m=2,
            shard_size=16 * KiB,
        )
        orchestrator = RecoveryOrchestrator(cluster, [store],
                                            detection_delay_ns=20_000.0)
        rng = np.random.default_rng(7)
        objects = {}
        for i in range(N_OBJECTS):
            data = rng.integers(0, 256, 64 * KiB).astype(np.uint8)
            run_sim(cluster, store.put(f"obj{i}", data))
            objects[f"obj{i}"] = data

        crashes = crash_restart_schedule(
            cluster, rate=1.0 / 4_000_000.0, horizon=HORIZON,
            restart_after=1_000_000.0,
        )
        cluster.engine.run(until=HORIZON)
        cluster.engine.run()  # drain outstanding repairs

        intact = sum(
            1 for name, data in objects.items()
            if np.array_equal(run_sim(cluster, store.get(name)), data)
        )
        results["protected"] = {
            "crashes": len(crashes),
            "repairs": orchestrator.stats.repairs_completed,
            "rebuilt": orchestrator.stats.shards_rebuilt,
            "repair_traffic": store.repair_bytes,
            "mean_repair": orchestrator.stats.mean_repair_time_ns,
            "intact": intact,
        }
        results["trace"] = {
            "cap": TRACE_CAP,
            "retained": len(cluster.trace),
            "categories": len(cluster.trace.categories()),
            "dropped": cluster.trace.dropped,
            "max_ring": max(
                cluster.trace.retained(c) for c in cluster.trace.categories()
            ),
        }

        # Control: the same crash schedule against raw (unprotected)
        # far-memory regions.
        cluster2 = Cluster.preset("far-memory-rack", n_nodes=N_NODES, seed=101)
        manager2 = MemoryManager(cluster2)
        survivors = []
        for i in range(N_OBJECTS):
            region = manager2.allocate_on(
                FARS[i % N_NODES], 64 * KiB, MemoryProperties(),
                owner="raw", name=f"raw{i}",
            )
            survivors.append(region)
        crash_restart_schedule(
            cluster2, rate=1.0 / 4_000_000.0, horizon=HORIZON,
            restart_after=1_000_000.0,
        )
        cluster2.engine.run(until=HORIZON)
        results["unprotected"] = {
            "lost": sum(1 for r in survivors if r.state is RegionState.LOST),
        }
        return results

    once(benchmark, experiment)

    protected = results["protected"]
    table = Table(["metric", "value"],
                  title=f"C13 (soak): {format_ns(HORIZON)} of Poisson node "
                        "crashes vs RS(4+2) far memory")
    table.add_row("node crashes injected", protected["crashes"])
    table.add_row("repairs completed", protected["repairs"])
    table.add_row("shards rebuilt", protected["rebuilt"])
    table.add_row("repair traffic", format_bytes(protected["repair_traffic"]))
    table.add_row("mean repair time", format_ns(protected["mean_repair"]))
    table.add_row("objects intact (of 12)", protected["intact"])
    table.add_row("unprotected store: regions lost",
                  results["unprotected"]["lost"])
    trace = results["trace"]
    table.add_row("trace events retained (bounded)",
                  f"{trace['retained']} (cap {trace['cap']}/category)")
    table.add_row("trace events dropped by ring wrap", trace["dropped"])
    report("claim_soak", table.render())

    assert protected["crashes"] >= 5
    assert protected["intact"] == N_OBJECTS
    assert protected["repairs"] == protected["crashes"]
    assert protected["rebuilt"] > 0
    assert results["unprotected"]["lost"] > 0
    # The trace log stayed bounded: no ring holds more than its cap, and
    # the soak generated enough traffic that wrap-around actually fired.
    assert trace["max_ring"] <= trace["cap"]
    assert trace["retained"] <= trace["cap"] * trace["categories"]
    assert trace["dropped"] > 0
