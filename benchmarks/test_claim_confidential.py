"""C14 — confidential data on shared memory: isolation vs encryption.

The paper attaches ``confidential: true`` to tasks (Figure 2c) and
separately motivates the built-in crypto accelerators of modern parts
(§1, Sapphire Rapids).  This bench connects the two: when isolated
memory runs out, the strict policy rejects confidential requests, while
the encrypting policy spills them to shared far memory and pays crypto
cycles per access — cheaply on devices with crypto engines (FPGA, DPU),
expensively in software on a GPU.
"""

from benchmarks.conftest import once, run_sim
from repro.hardware import Cluster
from repro.memory.interfaces import AccessPattern, Accessor, encryption_time
from repro.memory.manager import MemoryManager, PlacementError
from repro.memory.properties import BandwidthClass, MemoryProperties
from repro.metrics import Table, format_ns
from repro.runtime import CostModel, DeclarativePlacement, PlacementRequest
from repro.runtime.placement import EncryptingPlacement

KiB = 1024
MiB = 1024 * KiB


def exhausted_host():
    """table1-host with every isolated byte-addressable tier hogged."""
    cluster = Cluster.preset("table1-host")
    mm = MemoryManager(cluster)
    for name in ("cache0", "hbm0", "dram0", "pmem0", "cxl0"):
        mm.allocate_on(name, cluster.memory[name].capacity,
                       MemoryProperties(), owner="hog")
    return cluster, mm, CostModel(cluster)


def confidential(size):
    return PlacementRequest(
        size=size,
        properties=MemoryProperties(confidential=True,
                                    bandwidth=BandwidthClass.MEDIUM),
        owner="t", observers=("cpu0",),
    )


def test_claim_confidential_spill(benchmark, report):
    results = {}

    def experiment():
        cluster, mm, cm = exhausted_host()
        strict = DeclarativePlacement(cluster, mm, cm)
        try:
            strict.place(confidential(1 * MiB))
            results["strict"] = "placed (bug)"
        except PlacementError:
            results["strict"] = "rejected: no isolated memory left"

        encrypting = EncryptingPlacement(cluster, mm, cm)
        region = encrypting.place(confidential(1 * MiB))
        results["encrypting"] = (
            f"placed on {region.device.name} (encrypted={region.encrypted})"
        )

        accessor = Accessor(cluster, region.handle("t"), "cpu0")
        t0 = cluster.engine.now
        run_sim(cluster, accessor.read(pattern=AccessPattern.RANDOM,
                                       access_size=4096))
        results["access_time"] = cluster.engine.now - t0
        results["crypto_share"] = encryption_time(cluster, "cpu0", 1 * MiB)
        return results

    once(benchmark, experiment)

    table = Table(["policy under memory pressure", "outcome"],
                  title="C14 (reproduced): confidential request, isolated "
                        "tiers full")
    table.add_row("strict isolation", results["strict"])
    table.add_row("isolation-or-encryption", results["encrypting"])
    table.add_row("encrypted random read of 1 MiB",
                  format_ns(results["access_time"]))
    table.add_row("  of which crypto (CPU AES units)",
                  format_ns(results["crypto_share"]))
    report("claim_confidential", table.render())

    assert "rejected" in results["strict"]
    assert "encrypted=True" in results["encrypting"]


def test_claim_confidential_crypto_accelerators(benchmark, report):
    """The accelerator angle: who should touch encrypted memory?"""
    cluster = Cluster.preset("pooled-rack")

    def experiment():
        rates = {}
        for observer in ("cpu1", "gpu1", "fpga1"):
            rates[observer] = encryption_time(cluster, observer, 64 * MiB)
        return rates

    rates = once(benchmark, experiment)
    table = Table(["compute device", "time to en/decrypt 64 MiB"],
                  title="C14 follow-on: crypto engines change the economics")
    for observer, duration in sorted(rates.items(), key=lambda kv: kv[1]):
        table.add_row(observer, format_ns(duration))
    report("claim_confidential_crypto", table.render())

    assert rates["fpga1"] < rates["gpu1"]
    assert rates["fpga1"] < rates["cpu1"] / 10
