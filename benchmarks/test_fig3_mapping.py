"""F3 — reproduce Figure 3: logical→physical mapping depends on the
compute device.

Figure 3's point: the *same* logical Memory Region ("fast local
scratch") maps to DRAM when the task runs on a CPU but to GDDR when it
runs on a GPU.  We submit the identical request from every compute
device on the pooled rack and report the chosen device, plus the same
for the other two Table 2 regions.
"""

from benchmarks.conftest import once
from repro.hardware import Cluster
from repro.hardware.spec import MemoryKind
from repro.memory.manager import MemoryManager
from repro.memory.regions import RegionType, region_properties
from repro.metrics import Table, format_ns
from repro.runtime import CostModel, DeclarativePlacement, PlacementRequest

MiB = 1024 * 1024

OBSERVERS = ["cpu1", "cpu2", "gpu1", "gpu2", "tpu1", "fpga1"]


def test_fig3_observer_dependent_mapping(benchmark, report):
    cluster = Cluster.preset("pooled-rack")
    manager = MemoryManager(cluster)
    costmodel = CostModel(cluster)
    policy = DeclarativePlacement(cluster, manager, costmodel)

    chosen = {}

    def experiment():
        for observer in OBSERVERS:
            region = policy.place(PlacementRequest(
                size=4 * MiB,
                properties=region_properties(RegionType.PRIVATE_SCRATCH),
                owner=f"task@{observer}",
                observers=(observer,),
                region_type=RegionType.PRIVATE_SCRATCH,
            ))
            chosen[observer] = region
            manager.free(region)  # keep capacity identical per observer
        return chosen

    once(benchmark, experiment)

    table = Table(
        ["task runs on", "same logical request", "mapped to", "RTT from task"],
        title="Figure 3 (reproduced): one logical region, per-device mapping",
    )
    spec_text = region_properties(RegionType.PRIVATE_SCRATCH).describe()
    for observer in OBSERVERS:
        region = chosen[observer]
        rtt = costmodel.offered(observer, region.device).rtt_ns
        table.add_row(observer, spec_text, region.device.name, format_ns(rtt))
    report("fig3_mapping", table.render())

    # The figure's exact claim: CPU scratch -> DRAM, GPU scratch -> GDDR.
    assert chosen["cpu1"].device.kind is MemoryKind.DRAM
    assert chosen["cpu2"].device.kind is MemoryKind.DRAM
    assert chosen["gpu1"].device.name == "gddr1"
    assert chosen["gpu2"].device.name == "gddr2"
    assert chosen["tpu1"].device.kind is MemoryKind.HBM
    # All placements satisfy the declared properties from their observer.
    for observer in OBSERVERS:
        offer = costmodel.offered(observer, chosen[observer].device)
        assert offer.satisfies(region_properties(RegionType.PRIVATE_SCRATCH))


def test_fig3_capacity_forces_next_best_tier(benchmark, report):
    """When a GPU's GDDR fills up, the same request spills to the next
    device that still satisfies the properties — the runtime, not the
    developer, re-plans."""
    cluster = Cluster.preset("pooled-rack")
    manager = MemoryManager(cluster)
    policy = DeclarativePlacement(cluster, manager, CostModel(cluster))

    def experiment():
        steps = []
        gddr = cluster.memory["gddr1"]
        request_props = region_properties(RegionType.PRIVATE_SCRATCH)
        filler = manager.allocate_on(
            "gddr1", gddr.capacity - 2 * MiB, request_props, owner="hog"
        )
        region = policy.place(PlacementRequest(
            size=16 * MiB, properties=request_props, owner="t",
            observers=("gpu1",), region_type=RegionType.PRIVATE_SCRATCH,
        ))
        steps.append(("gddr1 nearly full", region.device.name))
        manager.free(region)
        manager.free(filler)
        region = policy.place(PlacementRequest(
            size=16 * MiB, properties=request_props, owner="t",
            observers=("gpu1",), region_type=RegionType.PRIVATE_SCRATCH,
        ))
        steps.append(("gddr1 freed again", region.device.name))
        return steps

    steps = once(benchmark, experiment)
    table = Table(["cluster state", "16 MiB GPU scratch mapped to"],
                  title="Figure 3 follow-on: mapping adapts to capacity")
    for state, device in steps:
        table.add_row(state, device)
    report("fig3_capacity", table.render())

    assert steps[0][1] != "gddr1"
    assert steps[1][1] == "gddr1"
