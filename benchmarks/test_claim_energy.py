"""C11 — §1's sustainability motivation, quantified.

The paper opens with two energy-relevant facts: *moving data is the
dominating cost factor in data centers*, and overprovisioned per-node
memory burns resources around the clock (the carbon/cost talk it cites).
Two measurements on our substrate:

1. **Provisioning energy** — the standing DRAM power of per-node
   overprovisioning vs. a pool sized for the pooled peak (re-using the
   Figure 1 demand series).
2. **Movement energy** — the same workload run with the paper's
   zero-copy ownership handover vs. the traditional copy plane: copies
   are pure data movement, and the meter prices exactly how much energy
   the programming model saves.
"""

import numpy as np

from benchmarks.conftest import once
from repro.dataflow import Job, RegionUsage, Task, WorkSpec
from repro.hardware import Cluster
from repro.metrics import Table, format_bytes
from repro.metrics.costs import required_provisioning
from repro.metrics.energy import STATIC_W_PER_GIB, EnergyMeter
from repro.hardware.spec import MemoryKind
from repro.runtime import RuntimeSystem
from repro.runtime.transfer import HandoverManager

MiB = 1024 * 1024
GiB = 1024 * MiB


def test_claim_energy_provisioning(benchmark, report):
    from benchmarks.test_fig1_pooling import make_demand_series

    def experiment():
        rng = np.random.default_rng(1234)
        series = make_demand_series(rng)
        comparison = required_provisioning(series, headroom=0.1)
        w_per_b = STATIC_W_PER_GIB[MemoryKind.DRAM] / GiB
        return {
            "static_w": comparison.static_bytes * w_per_b,
            "pooled_w": comparison.pooled_bytes * w_per_b,
            "savings": comparison.savings_fraction,
        }

    result = once(benchmark, experiment)
    table = Table(["provisioning", "standing DRAM power"],
                  title="C11 (reproduced): standing power of provisioned DRAM")
    table.add_row("per-node peaks (Fig. 1a)", f"{result['static_w']:.1f} W")
    table.add_row("pooled peak (Fig. 1b)", f"{result['pooled_w']:.1f} W")
    table.add_row("saved", f"{result['savings']:.1%}")
    report("claim_energy_provisioning", table.render())
    assert 0.15 <= result["savings"] <= 0.55


class _CopyAlways(HandoverManager):
    def can_hand_over(self, region, to_compute):
        return False


def test_claim_energy_zero_copy(benchmark, report):
    """Ownership handover avoids the movement energy of copies."""

    def run(force_copy: bool):
        cluster = Cluster.preset("pooled-rack", seed=71)
        rts = RuntimeSystem(cluster)
        if force_copy:
            rts.handover = _CopyAlways(
                cluster, rts.memory, rts.costmodel, rts.placement
            )
        meter = EnergyMeter(cluster)
        job = Job("energy")
        previous = None
        for stage in range(5):
            task = job.add_task(Task(f"s{stage}", work=WorkSpec(
                ops=1e4,
                input_usage=RegionUsage(0, touches=0.1) if previous else None,
                output=RegionUsage(64 * MiB) if stage < 4 else None,
            )))
            if previous is not None:
                job.connect(previous, task)
            previous = task
        stats = rts.run_job(job)
        breakdown = meter.read()
        return {
            "moved": stats.bytes_copied,
            "memory_dynamic": breakdown.memory_dynamic,
            "fabric_dynamic": breakdown.fabric_dynamic,
        }

    def experiment():
        return {"zero-copy handover": run(False),
                "copy data plane": run(True)}

    results = once(benchmark, experiment)
    table = Table(
        ["data plane", "bytes copied", "memory energy", "fabric energy"],
        title="C11 follow-on: movement energy of a 5-stage pipeline",
    )
    for name, r in results.items():
        table.add_row(name, format_bytes(r["moved"]),
                      f"{r['memory_dynamic'] * 1e3:.3f} mJ",
                      f"{r['fabric_dynamic'] * 1e3:.3f} mJ")
    report("claim_energy_movement", table.render())

    move = results["zero-copy handover"]
    copy = results["copy data plane"]
    assert move["moved"] == 0
    assert copy["moved"] > 0
    assert copy["memory_dynamic"] > 1.5 * move["memory_dynamic"]
    assert copy["fabric_dynamic"] >= move["fabric_dynamic"]
