"""T2 — reproduce Table 2: the predefined Memory Regions.

For each predefined region type (Private Scratch, Global State, Global
Scratch) request a region through the declarative placement policy on
the pooled rack and report where it landed and what the offer
guarantees.  Pass criteria:

* Global State lands somewhere coherent + synchronously addressable
  from *every* compute device (it synchronizes tasks);
* Private Scratch lands on the fastest sync-addressable device for its
  observer, and is *not* required to be coherent;
* Global Scratch may land far away (capacity over speed) and is
  reachable asynchronously by everyone;
* the properties are *enforced*: a region typed coherent can never be
  accessed over a non-coherent path, sync access to async-only devices
  is rejected.
"""

import pytest

from benchmarks.conftest import once
from repro.hardware import Cluster
from repro.memory.manager import MemoryManager
from repro.memory.regions import RegionType, region_properties
from repro.metrics import Table, format_ns
from repro.runtime import CostModel, DeclarativePlacement, PlacementRequest

MiB = 1024 * 1024

OBSERVER_SETS = {
    RegionType.PRIVATE_SCRATCH: ("cpu1",),  # thread-local: one observer
    RegionType.GLOBAL_STATE: ("cpu1", "cpu2", "gpu1", "gpu2", "tpu1", "fpga1"),
    RegionType.GLOBAL_SCRATCH: ("cpu1", "cpu2", "gpu1", "gpu2", "tpu1", "fpga1"),
}

PAPER_PURPOSE = {
    RegionType.PRIVATE_SCRATCH: ("{noncoherent, sync}", "Thread-local data"),
    RegionType.GLOBAL_STATE: ("{coherent, sync}", "Syncing tasks"),
    RegionType.GLOBAL_SCRATCH: ("{coherent, async}", "Data exchange"),
}


def test_table2_region_placement(benchmark, report):
    cluster = Cluster.preset("pooled-rack")
    manager = MemoryManager(cluster)
    costmodel = CostModel(cluster)
    policy = DeclarativePlacement(cluster, manager, costmodel)

    placements = {}

    def experiment():
        for region_type, observers in OBSERVER_SETS.items():
            region = policy.place(PlacementRequest(
                size=8 * MiB,
                properties=region_properties(region_type),
                owner="bench",
                observers=observers,
                region_type=region_type,
            ))
            placements[region_type] = region
        return placements

    once(benchmark, experiment)

    table = Table(
        ["Name", "Properties (paper)", "Purpose (paper)", "Placed on",
         "worst-observer RTT"],
        title="Table 2 (reproduced): common Memory Regions on the pooled rack",
    )
    for region_type, observers in OBSERVER_SETS.items():
        region = placements[region_type]
        worst_rtt = max(
            costmodel.offered(o, region.device).rtt_ns for o in observers
        )
        props, purpose = PAPER_PURPOSE[region_type]
        table.add_row(region_type.value, props, purpose,
                      region.device.name, format_ns(worst_rtt))
    report("table2_regions", table.render())

    # Global State: coherent + sync from every compute device.
    state = placements[RegionType.GLOBAL_STATE]
    for observer in OBSERVER_SETS[RegionType.GLOBAL_STATE]:
        offer = costmodel.offered(observer, state.device)
        assert offer.coherent and offer.sync, observer

    # Private Scratch: the lowest-RTT sync device for its single observer.
    scratch = placements[RegionType.PRIVATE_SCRATCH]
    best = costmodel.best_scratch_device("cpu1")
    assert costmodel.offered("cpu1", scratch.device).rtt_ns == pytest.approx(
        costmodel.offered("cpu1", best).rtt_ns, rel=0.5
    )

    # Global Scratch: nobody is cut off from it.
    gscratch = placements[RegionType.GLOBAL_SCRATCH]
    for observer in OBSERVER_SETS[RegionType.GLOBAL_SCRATCH]:
        assert costmodel.offered(observer, gscratch.device).bytes_per_ns > 0


def test_table2_property_enforcement(benchmark, report):
    """The region types are contracts, not hints: violations raise."""
    from repro.memory.interfaces import AccessMode, Accessor, InterfaceError
    from repro.memory.properties import MemoryProperties

    cluster = Cluster.preset("table1-host")
    manager = MemoryManager(cluster)

    checks = []

    def experiment():
        # 1. sync access to an async-only device (Table 1 far memory).
        far = manager.allocate_on("far0", 4096, MemoryProperties(), owner="b")
        accessor = Accessor(cluster, far.handle("b"), "cpu0")
        try:
            list(accessor.read(mode=AccessMode.SYNC))
            checks.append(("sync ld/st on far memory", "ALLOWED (bug)"))
        except InterfaceError:
            checks.append(("sync ld/st on far memory", "rejected"))

        # 2. coherent-typed region behind a non-coherent path.
        ssd = manager.allocate_on(
            "ssd0", 4096, MemoryProperties(coherent=True), owner="b"
        )
        try:
            Accessor(cluster, ssd.handle("b"), "cpu0")
            checks.append(("coherent region on PCIe-storage path", "ALLOWED (bug)"))
        except InterfaceError:
            checks.append(("coherent region on PCIe-storage path", "rejected"))

        # 3. persistent-typed region on volatile media.
        from repro.memory.manager import PlacementError

        try:
            manager.allocate_on(
                "dram0", 4096, MemoryProperties(persistent=True), owner="b"
            )
            checks.append(("persistent region on DRAM", "ALLOWED (bug)"))
        except PlacementError:
            checks.append(("persistent region on DRAM", "rejected"))
        return checks

    once(benchmark, experiment)
    table = Table(["violation attempted", "outcome"],
                  title="Table 2 follow-on: property enforcement")
    for name, outcome in checks:
        table.add_row(name, outcome)
    report("table2_enforcement", table.render())
    assert all(outcome == "rejected" for _n, outcome in checks)
