"""Continuous-telemetry claim — burn alerts track gray failures.

The paper's argument for continuous signals is operational: a runtime
that only reports SLO state at the end of the run cannot react to a
fail-slow episode while it is happening.  This bench stages exactly
that scenario and checks the telemetry layer end to end:

* **Burn-rate alerting** — the same tenant trace runs twice on a
  pooled rack: once clean, once with a deterministic gray-failure
  storm (``DEVICE_SLOW`` on the busy compute/memory devices,
  PR 7's injector).  The per-tenant multi-window burn alert must stay
  silent on the clean run, open within a bounded detection delay of
  the storm's onset, and close after restore once the backlog drains
  and the slow window ages the misses out — all from SLO observations
  alone, with no handler on any fault kind.
* **Sampled hotness** — a 1/64-sampled space-saving sketch replays a
  Zipf-skewed access stream next to the full-counting
  :class:`repro.memory.pointers.HotnessTracker` and must agree on at
  least 90% of the top-k hottest regions (the set the tiering layer
  would promote), at a fraction of the bookkeeping.
* **Self-metering** — the hub prices itself: bounded series/sketch
  memory and its own wall-clock are asserted from the hub's own
  ``obs.telemetry.*`` accounting.  (The tight 1.10x wall-clock
  overhead gate lives in ``scripts/perf_report.py --check``, where
  paired same-machine runs make the ratio meaningful.)
"""

import random

from benchmarks.conftest import once
from repro import api
from repro.dataflow import Job, RegionUsage, Task, WorkSpec
from repro.memory.pointers import HotnessTracker
from repro.metrics import Table, format_bytes, format_ns
from repro.obs.telemetry import SampledHotness
from repro.sim.faults import FaultKind

KiB = 1024
MiB = 1024 * KiB

#: The devices the pipeline leans on (same victims as the gray-failure
#: claim): the blades running its stages plus the node-local memories
#: hosting its stage outputs.
SLOW_TARGETS = ["cpu1", "gpu1", "dram-local1", "gddr1"]
#: Speed multiplier while degraded: 5x slower — a throttled DIMM, not
#: a dead one.  Mild enough that the rack drains its backlog within
#: the trace, harsh enough that every in-storm job misses its SLO.
SLOW_FACTOR = 0.2

#: Arrivals are spaced one telemetry window apart; the storm spans
#: windows [20, 30) of a 90-window trace, leaving three full slow
#: windows of clean traffic after restore for the alert to close in.
N_JOBS = 90
STORM_START_W = 20
STORM_END_W = 30

HOTNESS_SEEDS = range(3)
HOTNESS_REGIONS = 1000
HOTNESS_ACCESSES = 400_000
HOTNESS_RATE = 64
HOTNESS_TOPK = 20
ZIPF_S = 1.3


def build_job(tag) -> Job:
    job = Job(f"telem-{tag}")
    previous = None
    for i in range(4):
        task = job.add_task(Task(f"s{i}", work=WorkSpec(
            ops=2e5,
            input_usage=RegionUsage(0, touches=2.0) if previous else None,
            output=RegionUsage(8 * MiB) if i < 3 else None,
        )))
        if previous is not None:
            job.connect(previous, task)
        previous = task
    return job


def probe_clean_latency() -> float:
    """One clean job's makespan — sizes the SLO target and spacing."""
    session = api.connect("pooled-rack", seed=0)
    return session.run(build_job("probe")).makespan


def run_mode(mode: str, spacing: float, target: float) -> dict:
    """One 90-arrival tenant trace; ``storm`` mode degrades the hot
    devices over windows [20, 30) and restores them, clean runs as-is.

    The telemetry window is sized to the arrival spacing *before* the
    tenant registers, so the default burn rule lands at fast = 5
    arrivals, slow = 30 arrivals.
    """
    session = api.connect("pooled-rack", seed=0)
    hub = session.obs.telemetry.configure(window_ns=spacing)
    session.register_tenant("web", slo_target_ns=target, slo_objective=0.9)
    rule = hub.alerts.rules["tenant:web"]
    storm_start = STORM_START_W * spacing
    storm_end = STORM_END_W * spacing
    if mode == "storm":
        for device in SLOW_TARGETS:
            session.cluster.faults.inject_at(
                storm_start, FaultKind.DEVICE_SLOW, device,
                factor=SLOW_FACTOR,
            )
            session.cluster.faults.inject_at(
                storm_end, FaultKind.DEVICE_RESTORED, device,
            )
    arrivals = [
        (i * spacing, f"j{i}", build_job(i), "web") for i in range(N_JOBS)
    ]
    session.run_trace(arrivals)
    end = session.cluster.engine.now
    hub.finalize(end)
    alerts = list(hub.alerts.log) + list(hub.alerts.active.values())
    slo = session.obs.slo["tenant:web"]
    return {
        "opened": hub.alerts.opened,
        "closed": hub.alerts.closed,
        "alerts": sorted(alerts, key=lambda a: a.opened_at),
        "rule": rule,
        "storm_start": storm_start,
        "storm_end": storm_end,
        "missed": slo.missed,
        "total": slo.total,
        "memory_bytes": hub.memory_bytes(),
        "self_wall_s": hub.self_wall_s,
        "end": end,
    }


def run_hotness(seed: int) -> dict:
    """Replay one Zipf-skewed access stream through the 1/64 sketch and
    the full counter; returns the top-k agreement."""
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** ZIPF_S for rank in range(HOTNESS_REGIONS)]
    # Equal (huge) half-lives: the claim compares ranking fidelity, not
    # decay curves, so decay is effectively off for both trackers.
    full = HotnessTracker(half_life_ns=1e15)
    sketch = SampledHotness(rate=HOTNESS_RATE, k=32, half_life_ns=1e15)
    stream = rng.choices(
        range(HOTNESS_REGIONS), weights=weights, k=HOTNESS_ACCESSES,
    )
    t = 0.0
    for region in stream:
        t += 10.0
        full.record(region, 4096.0, t)
        sketch.record(region, 4096.0, t)
    full_top = {r for r, _ in full.ranked(t)[:HOTNESS_TOPK]}
    sketch_top = {r for r, _ in sketch.ranked(t)[:HOTNESS_TOPK]}
    return {
        "overlap": len(full_top & sketch_top) / HOTNESS_TOPK,
        "sampled": sketch.sampled,
        "seen": sketch.seen,
        "sketch_bytes": sketch.memory_bytes(),
        "full_entries": len(full.ranked(t)),
    }


def test_claim_telemetry(benchmark, report):
    results = {}

    def experiment():
        latency = probe_clean_latency()
        spacing = 2.0 * latency  # clean jobs never queue
        target = 2.0 * latency   # clean jobs never miss
        results["clean"] = run_mode("clean", spacing, target)
        results["storm"] = run_mode("storm", spacing, target)
        results["hotness"] = [run_hotness(seed) for seed in HOTNESS_SEEDS]
        results["latency"] = latency
        return results

    once(benchmark, experiment)

    clean, storm = results["clean"], results["storm"]
    rule = storm["rule"]
    table = Table(
        ["run", "alerts", "opened at", "closed at", "peak burn",
         "SLO misses", "telemetry mem"],
        title=f"Burn-rate alerting over {N_JOBS} arrivals "
              f"(storm windows [{STORM_START_W}, {STORM_END_W}))",
    )
    for mode in ("clean", "storm"):
        r = results[mode]
        first = r["alerts"][0] if r["alerts"] else None
        table.add_row(
            mode, r["opened"],
            format_ns(first.opened_at) if first else "-",
            format_ns(first.closed_at) if first and first.closed_at else "-",
            f"{first.peak_burn:.1f}x" if first else "-",
            f"{r['missed']}/{r['total']}",
            format_bytes(r["memory_bytes"]),
        )
    overlaps = [h["overlap"] for h in results["hotness"]]
    lines = [table.render(), ""]
    lines.append(
        "hotness top-{k} overlap at 1/{n} sampling: {o} (mean {m:.2f}); "
        "sketch {b} vs {f} fully-counted regions".format(
            k=HOTNESS_TOPK, n=HOTNESS_RATE,
            o=", ".join(f"{o:.2f}" for o in overlaps),
            m=sum(overlaps) / len(overlaps),
            b=format_bytes(results["hotness"][0]["sketch_bytes"]),
            f=results["hotness"][0]["full_entries"],
        )
    )
    report("claim_telemetry", "\n".join(lines))

    # -- burn-rate alerting ------------------------------------------------
    # Clean run: every job lands under target, nothing opens.
    assert clean["opened"] == 0
    assert clean["missed"] == 0
    # Storm run: exactly one episode — opened once, closed once.
    assert storm["opened"] == 1
    assert storm["closed"] == 1
    alert = storm["alerts"][0]
    # Detection is bounded: the alert opens after the storm starts (no
    # precognition) and within the fast window of its end — the rule
    # needs min_samples misses in the fast window, each a job finish.
    assert alert.opened_at > storm["storm_start"]
    assert alert.opened_at <= storm["storm_end"] + rule.fast_ns
    # The alert closes only after restore, once the backlog drains and
    # the slow window no longer sees the storm's misses.
    assert alert.closed_at is not None
    assert alert.closed_at > storm["storm_end"]
    assert alert.closed_at <= storm["storm_end"] + 2 * rule.slow_ns
    # The storm genuinely breached: misses concentrated in the storm,
    # and the burn peaked well over the open threshold.
    assert storm["missed"] > 0
    assert alert.peak_burn > rule.open_above

    # -- sampled hotness ---------------------------------------------------
    assert sum(overlaps) / len(overlaps) >= 0.9
    for h in results["hotness"]:
        # The stride sampler kept 1-in-64 and the sketch stayed tiny
        # next to the 1000-region full table.
        assert h["sampled"] == h["seen"] // HOTNESS_RATE
        assert h["sketch_bytes"] < 16 * KiB

    # -- self-metering -----------------------------------------------------
    # Bounded memory: windowed series + sketch for a 90-job trace stay
    # far below even one raw per-event trace ring.
    assert storm["memory_bytes"] < 1 * MiB
    # The hub measured its own wall-clock (the 1.10x gate in
    # scripts/perf_report.py prices it against the uninstrumented run).
    assert storm["self_wall_s"] >= 0.0
