"""Simulator-core microbenchmarks (wall-clock, not simulated time).

Unlike the claim benches, the artifact here is the *harness's own*
speed: events/s through the engine, flow-rebalance throughput, HEFT
scheduling throughput, placement probe throughput.  These are the hot
paths that decide how large a scenario the reproduction can run, so
they are tracked as a first-class regression surface.

Run them via ``python scripts/perf_report.py`` which emits
``BENCH_sim_hotpaths.json`` (see EXPERIMENTS.md), or individually::

    PYTHONPATH=src python -m benchmarks.perf.hotpaths flows_2k
"""
