"""Microbenchmarks for the simulator/runtime hot paths.

Each ``bench_*`` function is deterministic (fixed seeds), builds its own
fixture, runs the measured section once, and returns a flat dict::

    {"name": ..., "wall_s": ..., "ops": ..., "ops_per_s": ...,
     "events": ..., "events_per_s": ..., ...extras}

``ops`` is the bench's natural unit of work (flows completed, tasks
scheduled, placements performed, ...); ``events`` is the number of
discrete-event engine steps the scenario consumed (0 for benches that
never touch an engine).  ``scripts/perf_report.py`` aggregates these
into ``BENCH_sim_hotpaths.json`` and enforces the regression gate.
"""

from __future__ import annotations

import random
import time
import typing

from repro.dataflow import Job, RegionUsage, Task, WorkSpec
from repro.hardware import Cluster
from repro.hardware.spec import OpClass
from repro.memory.interfaces import AccessPattern
from repro.memory.manager import MemoryManager
from repro.memory.properties import (
    BandwidthClass,
    LatencyClass,
    MemoryProperties,
)
from repro.runtime.costmodel import CostModel
from repro.runtime.placement import DeclarativePlacement, PlacementRequest
from repro.runtime.scheduler import HeftScheduler
from repro.sim import Engine, FlowNetwork, Link
from repro.sim.events import Event
from repro.sim.faults import FaultKind

KiB = 1024
MiB = 1024 * 1024


def _result(name: str, wall_s: float, ops: int, events: int, **extras) -> dict:
    wall_s = max(wall_s, 1e-9)
    out = {
        "name": name,
        "wall_s": round(wall_s, 4),
        "ops": ops,
        "ops_per_s": round(ops / wall_s, 1),
        "events": events,
        "events_per_s": round(events / wall_s, 1),
    }
    out.update(extras)
    return out


# -- 1. flow network churn ------------------------------------------------


def bench_flows_2k(n_flows: int = 2000, segments: int = 64, seed: int = 7) -> dict:
    """Start/complete ``n_flows`` concurrent flows over a segmented fabric.

    The fabric is ``segments`` independent 3-link segments (leaf, spine,
    leaf) — the sharded-traffic shape of a real rack, where most flows
    never share links with most other flows.  Every arrival and
    completion triggers a rate rebalance; the quadratic-era solver paid
    O(all flows x all links) for each, the incremental one only touches
    the affected segment.
    """
    engine = Engine()
    net = FlowNetwork(engine)
    rng = random.Random(seed)
    segs = [
        (
            Link(f"seg{s}-a", bandwidth=2.0, latency=50.0),
            Link(f"seg{s}-spine", bandwidth=4.0, latency=100.0),
            Link(f"seg{s}-b", bandwidth=2.0, latency=50.0),
        )
        for s in range(segments)
    ]
    events: typing.List = []

    def workload():
        for i in range(n_flows):
            seg = segs[i % segments]
            route = seg if rng.random() < 0.7 else seg[:2]
            nbytes = float(rng.randrange(256 * KiB, 2 * MiB))
            events.append(net.transfer(route, nbytes))
            if i % 100 == 99:
                # Stagger arrivals so concurrency ramps instead of
                # arriving at one timestamp.
                yield engine.timeout(5_000.0)
        yield engine.all_of(events)

    start = time.perf_counter()
    engine.run(until=engine.process(workload()))
    wall = time.perf_counter() - start
    assert net.completed_transfers == n_flows
    return _result(
        "flows_2k", wall, ops=n_flows, events=engine.events_processed,
        peak_active_flows=net.peak_active_flows,
    )


def bench_flows_2k_causal(
    n_flows: int = 2000, segments: int = 64, seed: int = 7
) -> dict:
    """``bench_flows_2k`` with causal tracing on: the overhead probe.

    Identical workload, but the flow network carries a trace log with
    the ``causal`` category enabled, so every waterfill freeze also
    records the bottleneck link id and every completion pins it onto
    the delivery event.  Only ``causal`` is enabled — the ``flow``
    event ring is a pre-existing feature with its own cost, and this
    bench isolates what the causal subsystem *adds*.
    ``scripts/perf_report.py --check`` gates the wall-clock ratio
    against plain ``flows_2k`` (<10% overhead is the acceptance bar).
    """
    from repro.sim.trace import TraceLog

    engine = Engine()
    net = FlowNetwork(engine, trace=TraceLog(enabled={"causal"}))
    rng = random.Random(seed)
    segs = [
        (
            Link(f"cseg{s}-a", bandwidth=2.0, latency=50.0),
            Link(f"cseg{s}-spine", bandwidth=4.0, latency=100.0),
            Link(f"cseg{s}-b", bandwidth=2.0, latency=50.0),
        )
        for s in range(segments)
    ]
    events: typing.List = []

    def workload():
        for i in range(n_flows):
            seg = segs[i % segments]
            route = seg if rng.random() < 0.7 else seg[:2]
            nbytes = float(rng.randrange(256 * KiB, 2 * MiB))
            events.append(net.transfer(route, nbytes))
            if i % 100 == 99:
                yield engine.timeout(5_000.0)
        yield engine.all_of(events)

    start = time.perf_counter()
    engine.run(until=engine.process(workload()))
    wall = time.perf_counter() - start
    assert net.completed_transfers == n_flows
    bottlenecked = sum(
        1 for e in events if getattr(e, "_bottleneck", None) is not None
    )
    return _result(
        "flows_2k_causal", wall, ops=n_flows, events=engine.events_processed,
        peak_active_flows=net.peak_active_flows,
        bottlenecks_recorded=bottlenecked,
    )


def bench_flows_2k_telemetry(
    n_flows: int = 2000, segments: int = 64, seed: int = 7
) -> dict:
    """``bench_flows_2k`` with continuous telemetry on: the overhead probe.

    Identical workload, but an :class:`~repro.obs.Observability` hub
    rides along doing everything the telemetry layer does in a real
    run: watchers over the engine/flow counters folded by a ``pump``
    process once per 50µs window (~430 windows over the run), a
    per-flow pushed sample, and 1/64-sampled hotness on every
    transfer.  ``scripts/perf_report.py --check``
    gates the wall-clock ratio against plain ``flows_2k`` (<10%
    overhead is the acceptance bar, same as the causal gate).
    """
    from repro.obs import Observability

    engine = Engine()
    net = FlowNetwork(engine)
    obs = Observability(engine=engine)
    hub = obs.telemetry.configure(window_ns=50_000.0)
    hub.watch("engine.events", lambda: float(engine.events_processed),
              kind="rate")
    hub.watch("engine.queue_depth", lambda: float(engine.queue_depth),
              kind="level")
    hub.watch("flow.bytes", lambda: net.bytes_completed, kind="rate")
    hub.watch("flow.transfers", lambda: float(net.completed_transfers),
              kind="rate")
    engine.process(hub.pump(engine))  # one poll per window
    # Hot-path push idiom: hold the series handle, skip the name lookup.
    requested = hub.series("flow.requested_bytes", "sample")
    hotness = hub.hotness
    rng = random.Random(seed)
    segs = [
        (
            Link(f"tseg{s}-a", bandwidth=2.0, latency=50.0),
            Link(f"tseg{s}-spine", bandwidth=4.0, latency=100.0),
            Link(f"tseg{s}-b", bandwidth=2.0, latency=50.0),
        )
        for s in range(segments)
    ]
    events: typing.List = []

    def workload():
        for i in range(n_flows):
            seg = segs[i % segments]
            route = seg if rng.random() < 0.7 else seg[:2]
            nbytes = float(rng.randrange(256 * KiB, 2 * MiB))
            requested.observe(engine.now, nbytes)
            hotness.record_access(
                f"region{i % 256}", seg[0].name, nbytes, engine.now
            )
            events.append(net.transfer(route, nbytes))
            if i % 100 == 99:
                yield engine.timeout(5_000.0)
        yield engine.all_of(events)

    start = time.perf_counter()
    done = engine.process(workload())
    engine.run(until=done)
    hub.finalize(engine.now)
    wall = time.perf_counter() - start
    assert net.completed_transfers == n_flows
    assert hub.polls > 10
    assert requested.windows() and hotness.sampled > 0
    return _result(
        "flows_2k_telemetry", wall, ops=n_flows,
        events=engine.events_processed,
        peak_active_flows=net.peak_active_flows,
        telemetry_polls=hub.polls,
        telemetry_samples=hub.samples,
        telemetry_memory_bytes=hub.memory_bytes(),
    )


def bench_flows_shared_link(n_flows: int = 600, seed: int = 11) -> dict:
    """Worst case for incremental solving: every flow shares one core link.

    All flows form a single connected component, so each rebalance still
    has to re-solve everything; the win here comes only from the lazy
    advance and the completion heap.  Kept as an honesty check so the
    sharded bench can't hide a regression in the contended path.
    """
    engine = Engine()
    net = FlowNetwork(engine)
    rng = random.Random(seed)
    core = Link("core", bandwidth=8.0, latency=100.0)
    leaves = [Link(f"leaf{i}", bandwidth=2.0, latency=20.0) for i in range(16)]
    events: typing.List = []

    def workload():
        for i in range(n_flows):
            route = (leaves[i % len(leaves)], core)
            events.append(net.transfer(route, float(rng.randrange(64 * KiB, 512 * KiB))))
            if i % 50 == 49:
                yield engine.timeout(2_000.0)
        yield engine.all_of(events)

    start = time.perf_counter()
    engine.run(until=engine.process(workload()))
    wall = time.perf_counter() - start
    assert net.completed_transfers == n_flows
    return _result(
        "flows_shared_link", wall, ops=n_flows, events=engine.events_processed,
        peak_active_flows=net.peak_active_flows,
    )


def bench_flows_20k(
    n_flows: int = 20000, groups: int = 16, leaves_per_group: int = 8,
    seed: int = 17,
) -> dict:
    """Dense shared-link contention at 10x ``flows_shared_link`` scale.

    ``groups`` independent contention domains, each a fat-tree slice of
    ``leaves_per_group`` leaves funneling into one core link; flows are
    dealt round-robin so every group carries ~``n_flows/groups`` flows
    that all share its core.  Components stay large (≈1250 flows) for
    the whole run — the regime where a per-event Python-loop waterfill
    is quadratic in aggregate and the vectorized solver has to carry
    the load.
    """
    engine = Engine()
    net = FlowNetwork(engine)
    rng = random.Random(seed)
    cores = [Link(f"g{g}-core", bandwidth=16.0, latency=100.0)
             for g in range(groups)]
    leaves = [
        [Link(f"g{g}-leaf{i}", bandwidth=4.0, latency=20.0)
         for i in range(leaves_per_group)]
        for g in range(groups)
    ]
    events: typing.List = []

    def workload():
        for i in range(n_flows):
            g = i % groups
            route = (leaves[g][rng.randrange(leaves_per_group)], cores[g])
            events.append(net.transfer(route, float(rng.randrange(64 * KiB, 512 * KiB))))
            if i % 200 == 199:
                yield engine.timeout(4_000.0)
        yield engine.all_of(events)

    start = time.perf_counter()
    engine.run(until=engine.process(workload()))
    wall = time.perf_counter() - start
    assert net.completed_transfers == n_flows
    return _result(
        "flows_20k", wall, ops=n_flows, events=engine.events_processed,
        peak_active_flows=net.peak_active_flows,
    )


# -- 2. HEFT scheduling over large DAGs -----------------------------------


def _layered_job(n_tasks: int, rng: random.Random, name: str = "perf-dag") -> Job:
    """A layered DAG with mixed op classes and fan-in up to 3."""
    job = Job(name)
    width = 20
    ops_menu = [
        (OpClass.SCALAR, 2e6),
        (OpClass.VECTOR, 1e7),
        (OpClass.MATMUL, 4e7),
        (OpClass.COMPRESS, 8e6),
    ]
    layers: typing.List[typing.List[Task]] = []
    made = 0
    while made < n_tasks:
        layer_size = min(width, n_tasks - made)
        layer: typing.List[Task] = []
        for i in range(layer_size):
            op, ops = ops_menu[rng.randrange(len(ops_menu))]
            task = job.add_task(Task(
                f"t{made + i}",
                work=WorkSpec(
                    op_class=op, ops=ops,
                    # Only non-root layers read an upstream input.
                    input_usage=RegionUsage(0, touches=1.0) if layers else None,
                    output=RegionUsage(rng.choice([1, 2, 4]) * MiB),
                    scratch=RegionUsage(2 * MiB, touches=2.0),
                ),
            ))
            layer.append(task)
        if layers:
            prev = layers[-1]
            for task in layer:
                for pred in rng.sample(prev, k=min(len(prev), rng.randrange(1, 4))):
                    job.connect(pred, task)
        layers.append(layer)
        made += layer_size
    return job


def bench_heft_500(n_tasks: int = 500, repeats: int = 3, seed: int = 3) -> dict:
    """HEFT assignment over a 500-task DAG on the pooled rack, repeated."""
    rng = random.Random(seed)
    cluster = Cluster.preset("pooled-rack", seed=seed)
    costmodel = CostModel(cluster)
    scheduler = HeftScheduler()
    jobs = [_layered_job(n_tasks, rng, name=f"perf-dag{r}") for r in range(repeats)]

    start = time.perf_counter()
    assignments = [scheduler.assign(job, cluster, costmodel) for job in jobs]
    wall = time.perf_counter() - start
    assert all(len(a) == n_tasks for a in assignments)
    return _result(
        "heft_500", wall, ops=n_tasks * repeats, events=0,
        devices_used=len(set(assignments[0].values())),
    )


# -- 3. placement under fragmentation -------------------------------------


def bench_placement_fragmentation(
    n_warm: int = 2000, n_probes: int = 1200, seed: int = 5
) -> dict:
    """Declarative placement against heavily fragmented free lists.

    Warm-up allocates ``n_warm`` regions and frees a random two-thirds
    so the per-device free lists fragment into many scattered extents;
    the timed phase then runs place/free cycles, each of which probes
    ``largest_free_extent`` and the offer-satisfaction filter across
    the whole device inventory.
    """
    rng = random.Random(seed)
    cluster = Cluster.preset("pooled-rack", seed=seed)
    manager = MemoryManager(cluster)
    costmodel = CostModel(cluster)
    policy = DeclarativePlacement(cluster, manager, costmodel)
    observers = ["cpu1", "cpu2", "gpu1", "gpu2"]
    props_menu = [
        MemoryProperties(),
        MemoryProperties(latency=LatencyClass.HIGH, bandwidth=BandwidthClass.LOW),
        MemoryProperties(latency=LatencyClass.MEDIUM, bandwidth=BandwidthClass.MEDIUM),
    ]

    def request(i: int) -> PlacementRequest:
        return PlacementRequest(
            size=rng.choice([64 * KiB, 256 * KiB, 1 * MiB, 4 * MiB]),
            properties=props_menu[i % len(props_menu)],
            owner=f"owner{i}",
            observers=(observers[i % 2], observers[2 + i % 2]),
            name=f"r{i}",
            usage=RegionUsage(64 * KiB, touches=1.5, pattern=AccessPattern.RANDOM),
        )

    warm = [policy.place(request(i)) for i in range(n_warm)]
    for region in rng.sample(warm, (2 * n_warm) // 3):
        manager.free(region)

    start = time.perf_counter()
    for i in range(n_probes):
        region = policy.place(request(n_warm + i))
        if i % 3 != 0:  # keep some live so fragmentation persists
            manager.free(region)
    wall = time.perf_counter() - start
    extents = sum(len(a._free) for a in manager.allocators.values())
    return _result(
        "placement_fragmentation", wall, ops=n_probes, events=0,
        free_extents=extents,
    )


# -- 4. soak wall-clock ----------------------------------------------------


def bench_soak_transfers(
    n_workers: int = 150, transfers_each: int = 12, seed: int = 13
) -> dict:
    """A mini soak: contended transfers plus fault churn on the pooled rack.

    Every worker streams transfers between random pool devices (all
    crossing the CXL switch, so the flow network stays one big
    component), while a link flap and a node crash/reboot land
    mid-flight.  This is the wall-clock shape of test_claim_soak /
    test_claim_multitenant without their FT/RTS layers on top.
    """
    cluster = Cluster.preset("pooled-rack", seed=seed)
    rng = random.Random(seed)
    pool = ["dram-pool0", "dram-pool1", "cxl-exp0", "pmem-pool0",
            "dram-local1", "dram-local2", "gddr1", "gddr2"]
    done_workers = []

    def worker(wid: int):
        for t in range(transfers_each):
            src, dst = rng.sample(pool, 2)
            nbytes = float(rng.randrange(128 * KiB, 1 * MiB))
            try:
                yield from cluster.reliable_transfer(src, dst, nbytes, retries=3)
            except Exception:
                pass  # soak: survival matters, not every byte
            yield cluster.engine.timeout(float(rng.randrange(1_000, 20_000)))
        done_workers.append(wid)

    cluster.faults.inject_at(2_000_000.0, FaultKind.LINK_DOWN, "cxl-switch--tor")
    cluster.faults.inject_at(4_000_000.0, FaultKind.LINK_UP, "cxl-switch--tor")
    cluster.faults.inject_at(6_000_000.0, FaultKind.NODE_CRASH, "blade-gpu1")
    cluster.faults.inject_at(8_000_000.0, FaultKind.NODE_RESTART, "blade-gpu1")

    processes = [cluster.engine.process(worker(w)) for w in range(n_workers)]
    start = time.perf_counter()
    cluster.engine.run(until=cluster.engine.all_of(processes))
    wall = time.perf_counter() - start
    assert len(done_workers) == n_workers
    return _result(
        "soak_transfers", wall,
        ops=cluster.flownet.completed_transfers,
        events=cluster.engine.events_processed,
        peak_active_flows=cluster.flownet.peak_active_flows,
    )


def bench_soak_1m_events(
    n_procs: int = 20000, rounds: int = 50, seed: int = 23,
) -> dict:
    """Million-event engine soak: raw scheduler throughput at depth.

    ``n_procs`` concurrent processes each sleep ``rounds`` times with
    delays spanning three orders of magnitude (1k–1M ns), so the event
    queue holds ~20k timers at all times — the high-rate-arrival regime
    where a binary heap pays O(log n) per event and a calendar queue
    amortizes to O(1).  A sprinkle of zero-delay yields and URGENT
    interrupts keeps the same-timestamp and priority paths honest.
    ``events_per_s`` is the headline number (the CI gate demands
    >=100k events/s sustained over the >1M-event run).
    """
    engine = Engine()
    rng = random.Random(seed)
    done = []
    # Pre-draw per-process delay schedules so the RNG cost sits outside
    # the measured loop's inner ticks (draws happen during setup).
    schedules = [
        [float(rng.randrange(1_000, 1_000_000)) for _ in range(rounds)]
        for _ in range(n_procs)
    ]

    def ticker(pid: int):
        for r, delay in enumerate(schedules[pid]):
            yield engine.timeout(delay)
            if r % 16 == 15:
                # Zero-delay self-reschedule: same-timestamp ordering path.
                yield engine.timeout(0.0)
        done.append(pid)

    def pinger():
        # URGENT-priority traffic interleaved with the timer churn.
        while len(done) < n_procs:
            event = Event(engine)
            event._ok = True
            event._value = None
            engine.schedule(event, delay=50_000.0, priority=-1)
            yield event

    processes = [engine.process(ticker(p)) for p in range(n_procs)]
    engine.process(pinger())
    start = time.perf_counter()
    engine.run(until=engine.all_of(processes))
    wall = time.perf_counter() - start
    assert len(done) == n_procs
    assert engine.events_processed >= 1_000_000
    return _result(
        "soak_1m_events", wall, ops=n_procs * rounds,
        events=engine.events_processed,
    )


#: name -> zero-arg callable, the registry perf_report.py iterates.
ALL_BENCHES: typing.Dict[str, typing.Callable[[], dict]] = {
    "flows_2k": bench_flows_2k,
    "flows_2k_causal": bench_flows_2k_causal,
    "flows_2k_telemetry": bench_flows_2k_telemetry,
    "flows_shared_link": bench_flows_shared_link,
    "flows_20k": bench_flows_20k,
    "heft_500": bench_heft_500,
    "placement_fragmentation": bench_placement_fragmentation,
    "soak_transfers": bench_soak_transfers,
    "soak_1m_events": bench_soak_1m_events,
}


def main(argv: typing.Optional[typing.List[str]] = None) -> int:
    import sys

    names = (argv if argv is not None else sys.argv[1:]) or list(ALL_BENCHES)
    for name in names:
        result = ALL_BENCHES[name]()
        print(result)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
