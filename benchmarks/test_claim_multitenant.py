"""C9 — §2.1/§3: one runtime serving many jobs on the shared pool.

The paper's setting is a runtime "deploying dataflow systems that serve
thousands of jobs in parallel".  This bench drives a Poisson arrival
trace of mixed jobs through the RackDriver at several concurrency caps
and reports the throughput/latency/utilization trade-off, plus the
isolation sanity check (everything completes, nothing leaks).
"""

import numpy as np

from benchmarks.conftest import once
from repro.apps import build_hospital_job, build_query_job
from repro.hardware import Cluster
from repro.metrics import Table, format_ns
from repro.runtime import RackDriver, RuntimeSystem
from repro.workloads import poisson_arrivals

KiB = 1024


def make_trace(seed: int, n_jobs: int = 24):
    rng = np.random.default_rng(seed)
    times = poisson_arrivals(rng, rate_per_ns=1.0 / 120_000.0,
                             horizon_ns=n_jobs * 120_000.0)[:n_jobs]
    while len(times) < n_jobs:
        times.append((times[-1] if times else 0.0) + 120_000.0)

    arrivals = []
    for i, time in enumerate(times):
        if i % 3 == 0:
            arrivals.append((
                time, f"cctv{i}",
                lambda i=i: _named(build_hospital_job(n_frames=8), f"cctv{i}"),
            ))
        else:
            arrivals.append((
                time, f"query{i}",
                lambda i=i: _named(build_query_job(n_rows=50_000), f"query{i}"),
            ))
    return arrivals


def _named(job, name):
    job.name = name
    return job


def test_claim_multitenant_rack(benchmark, report):
    results = {}

    def experiment():
        for cap in (1, 4, 16):
            cluster = Cluster.preset("pooled-rack", seed=47)
            rts = RuntimeSystem(cluster)
            driver = RackDriver(rts, max_concurrent=cap,
                                sample_interval_ns=50_000.0)
            stats = driver.run_trace(make_trace(seed=47))
            horizon = cluster.engine.now
            results[cap] = {
                "completed": stats.completed,
                "wait": stats.mean_queue_wait,
                "makespan": stats.mean_makespan,
                "horizon": horizon,
                "peak": stats.peak_concurrency,
                "leaks": len(rts.memory.live_regions()),
            }
        return results

    once(benchmark, experiment)

    table = Table(
        ["concurrency cap", "jobs done", "mean queue wait", "mean makespan",
         "total horizon", "peak running", "leaked regions"],
        title="C9 (reproduced): 24 mixed jobs, Poisson arrivals, one rack",
    )
    for cap, r in results.items():
        table.add_row(cap, r["completed"], format_ns(r["wait"]),
                      format_ns(r["makespan"]), format_ns(r["horizon"]),
                      r["peak"], r["leaks"])
    report("claim_multitenant", table.render())

    for cap, r in results.items():
        assert r["completed"] == 24, cap
        assert r["leaks"] == 0, cap
        assert r["peak"] <= cap
    # More parallelism shortens the horizon and the queueing...
    assert results[16]["horizon"] < results[1]["horizon"]
    assert results[16]["wait"] < results[1]["wait"] / 4
    # ...at the price of per-job contention (slower individual makespan).
    assert results[16]["makespan"] >= results[1]["makespan"]
