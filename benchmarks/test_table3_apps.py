"""T3 — reproduce Table 3: application classes on the Memory Regions.

Run one representative job per application class (DBMS, ML/AI, HPC,
Streaming) on the pooled rack and census which region types each class
actually allocated.  Pass criterion: every class populates the columns
Table 3 says it uses — private scratch for per-task state, global state
for coordination, global scratch where the class exchanges/caches data.
"""

from benchmarks.conftest import once
from repro.apps import (
    build_hospital_job,
    build_query_job,
    build_stencil_job,
    build_training_job,
    region_census,
)
from repro.hardware import Cluster
from repro.memory.regions import RegionType
from repro.metrics import Table, format_ns
from repro.runtime import RuntimeSystem

KiB = 1024
MiB = 1024 * KiB

APPS = {
    "DBMS": lambda: build_query_job(n_rows=200_000),
    "ML/AI": lambda: build_training_job(
        n_samples=20_000, model_bytes=8 * MiB, epochs=2),
    "HPC": lambda: build_stencil_job(
        n_workers=4, grid_bytes=16 * MiB, iterations=2),
    "Streaming": lambda: build_hospital_job(n_frames=32),
}

#: Table 3: which region columns each class is described as using.
PAPER_EXPECTATION = {
    "DBMS": {RegionType.PRIVATE_SCRATCH, RegionType.GLOBAL_STATE,
             RegionType.GLOBAL_SCRATCH},
    "ML/AI": {RegionType.PRIVATE_SCRATCH, RegionType.GLOBAL_STATE,
              RegionType.GLOBAL_SCRATCH},
    "HPC": {RegionType.PRIVATE_SCRATCH, RegionType.GLOBAL_STATE,
            RegionType.GLOBAL_SCRATCH},
    "Streaming": {RegionType.PRIVATE_SCRATCH, RegionType.GLOBAL_STATE},
}


def test_table3_application_mapping(benchmark, report):
    results = {}

    def experiment():
        for app_name, builder in APPS.items():
            cluster = Cluster.preset("pooled-rack",
                                     trace_categories={"memory"})
            rts = RuntimeSystem(cluster)
            stats = rts.run_job(builder())
            assert stats.ok, app_name
            results[app_name] = (region_census(cluster.trace), stats)
        return results

    once(benchmark, experiment)

    table = Table(
        ["", "Priv. Scratch", "Glob. State", "Glob. Scratch",
         "in/out edges", "makespan"],
        title="Table 3 (reproduced): region allocations per application class",
    )
    for app_name, (census, stats) in results.items():
        edges = census.get(RegionType.OUTPUT, 0) + census.get(RegionType.INPUT, 0)
        table.add_row(
            app_name,
            census.get(RegionType.PRIVATE_SCRATCH, 0),
            census.get(RegionType.GLOBAL_STATE, 0),
            census.get(RegionType.GLOBAL_SCRATCH, 0),
            edges,
            format_ns(stats.makespan),
        )
    report("table3_apps", table.render())

    for app_name, expected_types in PAPER_EXPECTATION.items():
        census, _stats = results[app_name]
        for region_type in expected_types:
            assert census.get(region_type, 0) >= 1, (app_name, region_type)

    # Every job ran leak-free (RTS duty 3: dealloc after last owner).
    for app_name, (_census, stats) in results.items():
        assert stats.regions_allocated > 0
